"""Lowering an allocated datapath and schedule into a structural RTL design.

This is the backend that closes the loop the estimate-only flow left open:
the :class:`~repro.hls.datapath.Datapath` produced by allocation and binding
-- functional-unit instances, the register file, the interconnect mux lists
and the controller -- becomes a real sequential design
(:class:`~repro.rtl.design.RtlDesign`) that can be rendered as synthesizable
Verilog (:mod:`repro.rtl.verilog`) and simulated cycle-accurately with the
existing :mod:`repro.rtl.simulator`.

Lowering model
--------------
* **Functional units.**  Every allocated FU instance becomes one gate-level
  kernel from the :mod:`repro.techlib` families: a ripple add/sub/negate
  core for the ``adder`` category, a borrow-ripple comparator, a
  compare-and-select ``maxmin`` core, and an array ``multiplier``.  The
  kernel runs at the widest shape any hosted operation needs; operand
  preparation (sign/zero extension, the value semantics of the behavioural
  interpreter) is pure wiring performed in the mux legs.
* **Multiplexer trees.**  Each FU input port gets one AND-OR mux whose legs
  are the *distinct wire bundles* the port's hosted operations read --
  exactly the source accounting behind the allocation's
  :class:`~repro.hls.allocation.interconnect.InterconnectEstimate`.  Leg
  selects are decoded from the FSM state.
* **Registers.**  The allocation's register file is instantiated as-is: one
  clocked element per :class:`~repro.hls.allocation.registers.RegisterInstance`,
  loaded at the birth cycle of each value group it stores and holding
  otherwise.  Values consumed in their birth cycle chain combinationally
  from the producing unit's output bus, as the paper's datapaths do.
* **Glue logic.**  Zero-delay glue (wiring kinds, bitwise gates, selects) is
  replicated next to each consuming cycle, reading registers for
  cycle-crossing values and unit output buses for same-cycle chains --
  mirroring the storage-source analysis of the register allocator, so the
  emitted storage is exactly the allocated storage.
* **Controller.**  A binary-counter FSM (one state per schedule cycle, see
  :func:`repro.hls.controller.synthesize_controller`) is synthesized into
  the core: state decode, next-state increment, and every mux select and
  register load enable as decoded control nets.
* **Output capture.**  Output ports are latched into dedicated capture
  registers at the cycle their value is produced (the I/O registers the
  paper's Table I excludes from the accounting), so the ports hold the
  final results after the last cycle.

Sharing an FU across cycles can, in rare schedules, make the *static* mux
network cyclic (unit A feeds unit B in one cycle and B feeds A in another).
Such false combinational loops are unsynthesizable and unsimulatable, so the
emitter splits the offending shared instances into dedicated per-operation
units until the unit dependence graph is acyclic; the emitted netlist is then
acyclic *by construction* (units are built in topological order and every
gate reads already-built nets).  The split count is reported in
:class:`EmissionStats`.

Correctness is pinned by :func:`verify_emission`: the emitted design is
batch-simulated against the :class:`~repro.simulation.batch.BatchInterpreter`
oracle on the corner + random stimulus set and must agree bit for bit on
every output port.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..hls.allocation.registers import lifetime_skeleton, storage_sources
from ..hls.controller import ControllerSynthesis, synthesize_controller
from ..hls.datapath import Datapath, build_datapath
from ..hls.schedule import Schedule
from ..ir.dfg import BitDependencyGraph
from ..ir.operations import Operation, OpKind
from ..ir.spec import Specification
from ..techlib.library import TechnologyLibrary, default_library
from .design import RtlDesign, StateElement
from .netlist import GateKind, Net, Netlist

#: a canonical value bit: (variable uid, bit index)
CanonicalBit = Tuple[int, int]

#: Glue kinds that are pure wiring (no gates).
_WIRING_KINDS = frozenset({OpKind.MOVE, OpKind.CONCAT, OpKind.SHL, OpKind.SHR})

#: Comparison kinds and the comparator base function / inversion they select.
_CMP_PLAN: Dict[OpKind, Tuple[str, bool]] = {
    OpKind.LT: ("lt", False),
    OpKind.GE: ("lt", True),
    OpKind.LE: ("le", False),
    OpKind.GT: ("le", True),
    OpKind.EQ: ("eq", False),
    OpKind.NE: ("eq", True),
}


class EmissionError(RuntimeError):
    """Raised when a schedule/datapath pair cannot be lowered."""


@dataclass
class EmissionStats:
    """Structural statistics of one emitted design.

    ``mux_*`` count the emitted AND-OR trees (ports with more than one
    distinct wire bundle); the allocation's own estimate sits next to them
    in ``estimated_*`` so divergence is visible in reports.
    """

    gate_count: int = 0
    gate_counts: Dict[str, int] = field(default_factory=dict)
    fsm_states: int = 0
    fsm_state_bits: int = 0
    fu_units: int = 0
    split_fu_instances: int = 0
    mux_count: int = 0
    mux_max_fan_in: int = 0
    mux_legs: int = 0
    register_count: int = 0
    register_bits: int = 0
    capture_bits: int = 0
    shadow_bits: int = 0
    control_signals: int = 0
    estimated_mux_count: int = 0
    estimated_control_signals: int = 0

    def to_report(self) -> Dict[str, int]:
        """The flat ``emit_*`` keys carried into pipeline reports."""
        return {
            "emit_gate_count": self.gate_count,
            "emit_fsm_states": self.fsm_states,
            "emit_state_bits": self.fsm_state_bits,
            "emit_fu_units": self.fu_units,
            "emit_split_fu_instances": self.split_fu_instances,
            "emit_mux_count": self.mux_count,
            "emit_mux_max_fan_in": self.mux_max_fan_in,
            "emit_register_bits": self.register_bits,
            "emit_capture_bits": self.capture_bits,
            "emit_control_signals": self.control_signals,
        }


@dataclass
class EmissionCheck:
    """Outcome of co-simulating an emitted design against the oracle."""

    design_name: str
    vectors_checked: int
    #: (output port, lane index, expected raw bits, actual raw bits)
    mismatches: List[Tuple[str, int, int, int]] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        status = "BIT-IDENTICAL" if self.equivalent else "MISMATCH"
        lines = [
            f"{self.design_name} vs batch oracle: {status} "
            f"({self.vectors_checked} vectors)"
        ]
        for name, lane, expected, actual in self.mismatches[:10]:
            lines.append(
                f"  {name} lane {lane}: expected {expected:#x}, got {actual:#x}"
            )
        if len(self.mismatches) > 10:
            lines.append(f"  ... {len(self.mismatches) - 10} further mismatches")
        return "\n".join(lines)


@dataclass
class RtlEmission:
    """Everything produced by one lowering run."""

    design: RtlDesign
    stats: EmissionStats
    controller: ControllerSynthesis
    check: Optional[EmissionCheck] = None


class _EmitUnit:
    """One emission-level functional unit (an allocation instance, possibly split)."""

    __slots__ = ("ident", "category", "ops", "kernel_width", "bus_width", "out_width")

    def __init__(self, ident: str, category: str, ops: List[Operation]) -> None:
        self.ident = ident
        self.category = category
        self.ops = ops
        self.kernel_width = max(
            max(op.width, op.max_operand_width()) for op in ops
        )
        # Comparator/maxmin kernels compare at width + 1, where any mix of
        # signed and unsigned operands is exactly representable.
        if category in ("comparator", "maxmin"):
            self.bus_width = self.kernel_width + 1
        else:
            self.bus_width = self.kernel_width
        self.out_width = max(op.width for op in ops)


class _Emitter:
    """Builds one :class:`RtlDesign` from a scheduled, allocated specification."""

    def __init__(
        self,
        schedule: Schedule,
        datapath: Datapath,
        library: TechnologyLibrary,
        name: Optional[str] = None,
    ) -> None:
        self.schedule = schedule
        self.spec: Specification = schedule.specification
        self.cycle_of = schedule.cycle_of
        self.datapath = datapath
        self.library = library
        self.name = name or f"{self.spec.name}_impl"
        self.netlist = Netlist(self.name)
        self.controller = synthesize_controller(schedule.latency)
        self.stats = EmissionStats(
            fsm_states=self.controller.states,
            fsm_state_bits=self.controller.state_bits,
        )
        self._bit_defs = self.spec.bit_def_map
        self._variables = {v.uid: v for v in self.spec.variables}
        # shared structural state -------------------------------------------------
        self._const_nets: Dict[int, Net] = {}
        self._gate_memo: Dict[Tuple, Net] = {}
        self._not_source: Dict[Net, Net] = {}
        self._port_nets: Dict[CanonicalBit, Net] = {}
        self._bit_memo: Dict[Tuple, Net] = {}
        self._op_out: Dict[Operation, List[Net]] = {}
        self._st: Dict[int, Net] = {}
        self._reg_q: List[List[Net]] = []
        self._group_position: Dict[CanonicalBit, Tuple[int, int]] = {}
        self._captures: Dict[CanonicalBit, Net] = {}
        self._elements: List[StateElement] = []
        #: deferred capture/shadow D wiring: (element, producer op, result bits)
        self._pending_captures: List[Tuple[StateElement, Operation, List[int]]] = []

    # ------------------------------------------------------------------
    # Primitive helpers (constant folding + structural sharing)
    # ------------------------------------------------------------------
    def _const(self, value: int) -> Net:
        net = self._const_nets.get(value)
        if net is None:
            net = self.netlist.constant(value)
            self._const_nets[value] = net
        return net

    def _is_const(self, net: Net, value: int) -> bool:
        return self._const_nets.get(value) is net

    def _mk_not(self, a: Net) -> Net:
        if self._is_const(a, 0):
            return self._const(1)
        if self._is_const(a, 1):
            return self._const(0)
        inverted = self._not_source.get(a)
        if inverted is not None:
            return inverted
        key = (GateKind.NOT, a.uid)
        net = self._gate_memo.get(key)
        if net is None:
            net = self.netlist.add_gate(GateKind.NOT, (a,))
            self._gate_memo[key] = net
            # double negation folds back to the source
            self._not_source[net] = a
        return net

    def _mk(self, kind: GateKind, a: Net, b: Net) -> Net:
        if kind is GateKind.AND:
            if self._is_const(a, 0) or self._is_const(b, 0):
                return self._const(0)
            if self._is_const(a, 1):
                return b
            if self._is_const(b, 1):
                return a
            if a is b:
                return a
        elif kind is GateKind.OR:
            if self._is_const(a, 1) or self._is_const(b, 1):
                return self._const(1)
            if self._is_const(a, 0):
                return b
            if self._is_const(b, 0):
                return a
            if a is b:
                return a
        elif kind is GateKind.XOR:
            if self._is_const(a, 0):
                return b
            if self._is_const(b, 0):
                return a
            if self._is_const(a, 1):
                return self._mk_not(b)
            if self._is_const(b, 1):
                return self._mk_not(a)
            if a is b:
                return self._const(0)
        first, second = (a, b) if a.uid <= b.uid else (b, a)
        key = (kind, first.uid, second.uid)
        net = self._gate_memo.get(key)
        if net is None:
            net = self.netlist.add_gate(kind, (first, second))
            self._gate_memo[key] = net
        return net

    def _or_tree(self, nets: Sequence[Net]) -> Net:
        result = self._const(0)
        for net in nets:
            result = self._mk(GateKind.OR, result, net)
        return result

    def _and_tree(self, nets: Sequence[Net]) -> Net:
        result = self._const(1)
        for net in nets:
            result = self._mk(GateKind.AND, result, net)
        return result

    def _full_adder(self, a: Net, b: Net, carry: Net) -> Tuple[Net, Net]:
        partial = self._mk(GateKind.XOR, a, b)
        total = self._mk(GateKind.XOR, partial, carry)
        generate = self._mk(GateKind.AND, a, b)
        propagate = self._mk(GateKind.AND, partial, carry)
        return total, self._mk(GateKind.OR, generate, propagate)

    # ------------------------------------------------------------------
    # Build phases
    # ------------------------------------------------------------------
    def build(self) -> RtlEmission:
        self._build_ports()
        self._build_fsm_inputs()
        self._build_registers_inputs()
        units, order = self._plan_units()
        self._plan_output_captures()
        for ident in order:
            self._build_unit(units[ident])
        # Resolve the combinational output-port nets before the clocked
        # next-value logic: the resolution may allocate defensive shadow
        # captures, which must exist before the capture writes are wired.
        self._output_nets = {
            port.name: [
                self._bit_net(port.uid, bit, None) for bit in range(port.width)
            ]
            for port in self.spec.outputs()
        }
        self._build_register_writes()
        self._build_capture_writes()
        self._build_fsm_next()
        design = self._finish()
        return RtlEmission(design=design, stats=self.stats, controller=self.controller)

    def _build_ports(self) -> None:
        self._input_ports: Dict[str, List[Net]] = {}
        for port in self.spec.inputs():
            nets = self.netlist.add_input_bus(port.name, port.width)
            self._input_ports[port.name] = nets
            for bit, net in enumerate(nets):
                self._port_nets[(port.uid, bit)] = net

    def _build_fsm_inputs(self) -> None:
        bits = self.controller.state_bits
        element = StateElement(name="fsm", width=bits, role="fsm", init=0)
        for bit in range(bits):
            element.q_nets.append(self.netlist.add_input(f"fsm_q[{bit}]"))
        self._elements.append(element)
        self._fsm = element
        # Per-cycle decode: state ``c`` is encoded as ``c - 1``.
        for cycle in range(1, self.schedule.latency + 1):
            code = self.controller.code_of(cycle)
            terms = []
            for bit, q in enumerate(element.q_nets):
                terms.append(q if (code >> bit) & 1 else self._mk_not(q))
            self._st[cycle] = self._and_tree(terms)

    def _build_registers_inputs(self) -> None:
        registers = self.datapath.registers
        self.stats.register_count = registers.register_count
        self.stats.register_bits = sum(r.width for r in registers.registers)
        for index, register in enumerate(registers.registers):
            element = StateElement(
                name=f"r{index}", width=register.width, role="register", init=0
            )
            for bit in range(register.width):
                element.q_nets.append(self.netlist.add_input(f"r{index}_q[{bit}]"))
            self._elements.append(element)
            self._reg_q.append(element.q_nets)
            for group in register.groups:
                for offset in range(group.width):
                    self._group_position[
                        (group.variable.uid, group.low_bit + offset)
                    ] = (index, offset)

    # ------------------------------------------------------------------
    # Unit planning: instance splitting until the dependence graph is acyclic
    # ------------------------------------------------------------------
    def _same_cycle_unit_edges(
        self, unit_of_op: Dict[Operation, str]
    ) -> Dict[str, Set[str]]:
        edges: Dict[str, Set[str]] = {ident: set() for ident in unit_of_op.values()}
        for op, sources in self._sources_of.items():
            consumer_unit = unit_of_op.get(op)
            if consumer_unit is None:
                continue
            cycle = self.cycle_of[op]
            for canonical in sources:
                definition = self._bit_defs.get(canonical)
                if definition is None:
                    continue
                producer = definition.operation
                if self.cycle_of.get(producer) != cycle:
                    continue
                producer_unit = unit_of_op.get(producer)
                if producer_unit is not None and producer_unit != consumer_unit:
                    edges[producer_unit].add(consumer_unit)
        return edges

    @staticmethod
    def _topological(order_hint: List[str], edges: Dict[str, Set[str]]) -> List[str]:
        indegree = {ident: 0 for ident in order_hint}
        for targets in edges.values():
            for target in targets:
                indegree[target] += 1
        order: List[str] = []
        pending = list(order_hint)
        while pending:
            ready = [ident for ident in pending if indegree[ident] == 0]
            if not ready:
                return order  # remainder is cyclic
            for ident in ready:
                order.append(ident)
                pending.remove(ident)
                for target in edges.get(ident, ()):
                    indegree[target] -= 1
        return order

    def _plan_units(self) -> Tuple[Dict[str, _EmitUnit], List[str]]:
        skeleton = lifetime_skeleton(self.spec)
        self._sources_of: Dict[Operation, Tuple[CanonicalBit, ...]] = dict(
            skeleton.read_sources
        )
        binding = self.datapath.functional_units.binding
        category_of: Dict[str, str] = {
            instance.identifier: instance.category
            for instance in self.datapath.functional_units.instances
        }
        unit_of_op: Dict[Operation, str] = {}
        for op in self.spec.operations:
            instance = binding.get(op)
            if instance is not None:
                unit_of_op[op] = instance.identifier
        hint: List[str] = [i.identifier for i in self.datapath.functional_units.instances]

        while True:
            edges = self._same_cycle_unit_edges(unit_of_op)
            order = self._topological(hint, edges)
            if len(order) == len(set(unit_of_op.values())):
                break
            cyclic = set(unit_of_op.values()) - set(order)
            changed = False
            for ident in sorted(cyclic):
                members = [op for op in self.spec.operations if unit_of_op.get(op) == ident]
                if len(members) <= 1:
                    continue
                position = hint.index(ident)
                hint.remove(ident)
                for index, op in enumerate(members):
                    split_ident = f"{ident}_s{index}"
                    unit_of_op[op] = split_ident
                    category_of[split_ident] = category_of[ident]
                    hint.insert(position + index, split_ident)
                self.stats.split_fu_instances += len(members) - 1
                changed = True
            if not changed:  # pragma: no cover - op-level reads form a DAG
                raise EmissionError(
                    f"unbreakable combinational loop among units {sorted(cyclic)}"
                )

        members_of: Dict[str, List[Operation]] = {}
        for op in self.spec.operations:
            ident = unit_of_op.get(op)
            if ident is not None:
                members_of.setdefault(ident, []).append(op)
        units = {
            ident: _EmitUnit(ident, category_of[ident], ops)
            for ident, ops in members_of.items()
        }
        self.stats.fu_units = len(units)
        order = [ident for ident in order if ident in units]
        return units, order

    # ------------------------------------------------------------------
    # Output capture planning (dedicated I/O registers)
    # ------------------------------------------------------------------
    def _plan_output_captures(self) -> None:
        needed: Dict[CanonicalBit, None] = {}
        for port in self.spec.outputs():
            for bit in range(port.width):
                if (port.uid, bit) not in self._bit_defs:
                    continue
                for canonical in storage_sources(self.spec, port, bit):
                    needed.setdefault(canonical, None)
        by_op: Dict[Operation, List[int]] = {}
        for canonical in needed:
            definition = self._bit_defs[canonical]
            by_op.setdefault(definition.operation, []).append(definition.result_bit)
        for op in self.spec.operations:
            result_bits = by_op.get(op)
            if not result_bits:
                continue
            result_bits.sort()
            run: List[int] = []
            for result_bit in result_bits:
                if run and result_bit != run[-1] + 1:
                    self._allocate_capture(op, run, role="capture")
                    run = []
                run.append(result_bit)
            if run:
                self._allocate_capture(op, run, role="capture")

    def _allocate_capture(
        self, op: Operation, result_bits: List[int], role: str
    ) -> StateElement:
        index = len([e for e in self._elements if e.role in ("capture", "shadow")])
        element = StateElement(
            name=f"cap{index}", width=len(result_bits), role=role, init=0
        )
        destination = op.destination
        for position, result_bit in enumerate(result_bits):
            q = self.netlist.add_input(f"cap{index}_q[{position}]")
            element.q_nets.append(q)
            canonical = (destination.variable.uid, destination.range.lo + result_bit)
            self._captures[canonical] = q
        self._elements.append(element)
        self._pending_captures.append((element, op, list(result_bits)))
        if role == "capture":
            self.stats.capture_bits += len(result_bits)
        else:
            self.stats.shadow_bits += len(result_bits)
        return element

    def _capture_net(self, canonical: CanonicalBit) -> Net:
        net = self._captures.get(canonical)
        if net is not None:
            return net
        definition = self._bit_defs.get(canonical)
        if definition is None or not definition.operation.is_additive:
            raise EmissionError(
                f"no capture available for non-additive bit {canonical}"
            )
        # Defensive shadow storage: the estimate classified this value as a
        # stable wire, but a later cycle reads it, so it needs a flop.
        self._allocate_capture(
            definition.operation, [definition.result_bit], role="shadow"
        )
        return self._captures[canonical]

    # ------------------------------------------------------------------
    # Bit resolution at a given cycle (``cycle=None`` = final output context)
    # ------------------------------------------------------------------
    def _bit_net(self, uid: int, bit: int, cycle: Optional[int]) -> Net:
        key = (uid, bit, cycle)
        net = self._bit_memo.get(key)
        if net is None:
            net = self._resolve_bit(uid, bit, cycle)
            self._bit_memo[key] = net
        return net

    def _resolve_bit(self, uid: int, bit: int, cycle: Optional[int]) -> Net:
        definition = self._bit_defs.get((uid, bit))
        if definition is None:
            port = self._port_nets.get((uid, bit))
            if port is not None:
                return port
            return self._const(0)
        op = definition.operation
        if op.is_additive:
            if cycle is None:
                return self._capture_net((uid, bit))
            producer_cycle = self.cycle_of[op]
            if producer_cycle == cycle:
                return self._op_out[op][definition.result_bit]
            if producer_cycle > cycle:
                raise EmissionError(
                    f"bit {self._variables[uid].name}[{bit}] is consumed in cycle "
                    f"{cycle} but produced in cycle {producer_cycle}"
                )
            placement = self._group_position.get((uid, bit))
            if placement is None:
                return self._capture_net((uid, bit))
            register_index, position = placement
            return self._reg_q[register_index][position]
        return self._glue_bit(op, definition.result_bit, cycle)

    def _operand_bit(self, operand, position: int, cycle: Optional[int]) -> Net:
        if position >= operand.width:
            return self._const(0)
        if operand.is_constant:
            return self._const((operand.constant.bits >> (operand.range.lo + position)) & 1)
        return self._bit_net(operand.variable.uid, operand.range.lo + position, cycle)

    def _glue_bit(self, op: Operation, result_bit: int, cycle: Optional[int]) -> Net:
        kind = op.kind
        if kind in _WIRING_KINDS:
            sources = BitDependencyGraph.glue_source_bits(op, result_bit)
            if not sources:
                return self._const(0)
            operand, position = sources[0]
            return self._operand_bit(operand, position, cycle)
        if kind is OpKind.NOT:
            return self._mk_not(self._operand_bit(op.operands[0], result_bit, cycle))
        if kind in (OpKind.AND, OpKind.OR, OpKind.XOR):
            gate = {
                OpKind.AND: GateKind.AND,
                OpKind.OR: GateKind.OR,
                OpKind.XOR: GateKind.XOR,
            }[kind]
            a = self._operand_bit(op.operands[0], result_bit, cycle)
            b = self._operand_bit(op.operands[1], result_bit, cycle)
            return self._mk(gate, a, b)
        if kind is OpKind.SELECT:
            condition = self._operand_bit(op.operands[0], 0, cycle)
            when_true = self._operand_bit(op.operands[1], result_bit, cycle)
            when_false = self._operand_bit(op.operands[2], result_bit, cycle)
            chosen_true = self._mk(GateKind.AND, when_true, condition)
            chosen_false = self._mk(
                GateKind.AND, when_false, self._mk_not(condition)
            )
            return self._mk(GateKind.OR, chosen_true, chosen_false)
        raise EmissionError(
            f"cannot lower glue kind {kind} (operation {op.name})"
        )  # pragma: no cover - every glue kind is handled

    def _operand_value_nets(self, operand, width: int, cycle: int) -> List[Net]:
        """Operand nets under value semantics, extended to *width* bits.

        Mirrors the batch interpreter's ``_value_planes``: the operand is
        sign-extended only when it covers the whole of a signed source,
        zero-extended otherwise; extension is pure wiring.
        """
        rng = operand.range
        signed = operand.source.signed and operand.covers_whole_source()
        nets: List[Net] = []
        for position in range(min(rng.width, width)):
            nets.append(self._operand_bit(operand, position, cycle))
        if len(nets) < width:
            fill = nets[-1] if (signed and nets) else self._const(0)
            nets.extend([fill] * (width - len(nets)))
        return nets

    # ------------------------------------------------------------------
    # Functional units
    # ------------------------------------------------------------------
    def _control_net(
        self, unit: _EmitUnit, name: str, pairs: List[Tuple[int, Net]]
    ) -> Net:
        """A control signal: OR of per-state legs, folded for dedicated units.

        *pairs* holds ``(cycle, net)`` legs; a unit hosting a single
        operation needs no state gating (the signal is only observed in the
        operation's cycle).
        """
        if not pairs:
            return self._const(0)
        if len(unit.ops) == 1:
            net = pairs[0][1]
        else:
            net = self._or_tree(
                [self._mk(GateKind.AND, self._st[cycle], leg) for cycle, leg in pairs]
            )
        if not self._is_const(net, 0) and not self._is_const(net, 1):
            self.controller.register_control(name)
        return net

    def _mux_bus(
        self,
        unit: _EmitUnit,
        location: str,
        legs: "Dict[Tuple[int, ...], Tuple[List[Net], List[int]]]",
        width: int,
    ) -> List[Net]:
        """An AND-OR input mux over the distinct wire bundles of one port."""
        if not legs:
            return [self._const(0)] * width
        all_cycles = {self.cycle_of[op] for op in unit.ops}
        entries = list(legs.values())
        if len(entries) == 1 and set(entries[0][1]) == all_cycles:
            return entries[0][0]
        self.stats.mux_count += 1
        self.stats.mux_legs += len(entries)
        self.stats.mux_max_fan_in = max(self.stats.mux_max_fan_in, len(entries))
        selects: List[Net] = []
        for index, (_nets, cycles) in enumerate(entries):
            select = self._or_tree([self._st[c] for c in sorted(set(cycles))])
            self.controller.register_control(f"{location}.sel{index}")
            selects.append(select)
        bus: List[Net] = []
        for bit in range(width):
            terms = [
                self._mk(GateKind.AND, select, nets[bit])
                for (nets, _cycles), select in zip(entries, selects)
            ]
            bus.append(self._or_tree(terms))
        return bus

    def _collect_port_legs(
        self, unit: _EmitUnit, slot: int, width: int
    ) -> "Dict[Tuple[int, ...], Tuple[List[Net], List[int]]]":
        legs: Dict[Tuple[int, ...], Tuple[List[Net], List[int]]] = {}
        for op in unit.ops:
            if slot >= len(op.operands):
                continue
            cycle = self.cycle_of[op]
            nets = self._operand_value_nets(op.operands[slot], width, cycle)
            key = tuple(net.uid for net in nets)
            entry = legs.get(key)
            if entry is None:
                legs[key] = (nets, [cycle])
            else:
                entry[1].append(cycle)
        return legs

    def _build_unit(self, unit: _EmitUnit) -> None:
        unit.ops.sort(key=lambda op: (self.cycle_of[op], op.uid))
        width = unit.bus_width
        slots = max(len(op.operands) for op in unit.ops)
        buses = [
            self._mux_bus(
                unit,
                f"{unit.ident}.in{slot}",
                self._collect_port_legs(unit, slot, width),
                width,
            )
            for slot in range(slots)
        ]
        category = unit.category
        if category == "adder":
            result = self._build_adder_kernel(unit, buses)
        elif category == "comparator":
            result = self._build_comparator_kernel(unit, buses)
        elif category == "maxmin":
            result = self._build_maxmin_kernel(unit, buses)
        elif category == "multiplier":
            result = self._build_multiplier_kernel(unit, buses)
        else:  # pragma: no cover - no other categories exist in the library
            raise EmissionError(f"unknown functional-unit category {category!r}")
        for op in unit.ops:
            self._op_out[op] = result

    def _abs_sign_net(self, op: Operation) -> Optional[Net]:
        operand = op.operands[0]
        if not (operand.source.signed and operand.covers_whole_source()):
            return None
        return self._operand_bit(operand, operand.width - 1, self.cycle_of[op])

    def _build_adder_kernel(self, unit: _EmitUnit, buses: List[List[Net]]) -> List[Net]:
        width = unit.kernel_width
        a_bus = buses[0] if buses else [self._const(0)] * width
        b_bus = buses[1] if len(buses) > 1 else [self._const(0)] * width
        invert_a: List[Tuple[int, Net]] = []
        invert_b: List[Tuple[int, Net]] = []
        carry_in: List[Tuple[int, Net]] = []
        increment: List[Tuple[int, Net]] = []
        for op in unit.ops:
            cycle = self.cycle_of[op]
            carry_net: Optional[Net] = None
            if op.carry_in is not None:
                carry_net = self._operand_bit(op.carry_in, 0, cycle)
            if op.kind is OpKind.ADD:
                if carry_net is not None:
                    carry_in.append((cycle, carry_net))
            elif op.kind is OpKind.SUB:
                invert_b.append((cycle, self._const(1)))
                carry_in.append((cycle, self._const(1)))
                if carry_net is not None:
                    increment.append((cycle, carry_net))
            elif op.kind is OpKind.NEG:
                invert_a.append((cycle, self._const(1)))
                carry_in.append((cycle, self._const(1)))
            elif op.kind is OpKind.ABS:
                sign = self._abs_sign_net(op)
                if sign is not None:
                    invert_a.append((cycle, sign))
                    carry_in.append((cycle, sign))
            else:  # pragma: no cover - binder routes only these kinds here
                raise EmissionError(f"adder unit cannot host {op.kind}")
        inv_a = self._control_net(unit, f"{unit.ident}.inv_a", invert_a)
        inv_b = self._control_net(unit, f"{unit.ident}.inv_b", invert_b)
        cin = self._control_net(unit, f"{unit.ident}.cin", carry_in)
        inc = self._control_net(unit, f"{unit.ident}.inc", increment)
        carry = cin
        sums: List[Net] = []
        for a_net, b_net in zip(a_bus, b_bus):
            a_eff = self._mk(GateKind.XOR, a_net, inv_a)
            b_eff = self._mk(GateKind.XOR, b_net, inv_b)
            total, carry = self._full_adder(a_eff, b_eff, carry)
            sums.append(total)
        if not self._is_const(inc, 0):
            carry = inc
            incremented: List[Net] = []
            for net in sums:
                incremented.append(self._mk(GateKind.XOR, net, carry))
                carry = self._mk(GateKind.AND, carry, net)
            sums = incremented
        return sums

    def _compare(self, a_bus: List[Net], b_bus: List[Net]) -> Tuple[Net, Net]:
        """(lt, eq) of two equally wide buses whose MSBs are already flipped."""
        lt = self._const(0)
        differences: List[Net] = []
        for a_net, b_net in zip(a_bus, b_bus):
            axb = self._mk(GateKind.XOR, a_net, b_net)
            differences.append(axb)
            below = self._mk(GateKind.AND, self._mk_not(a_net), b_net)
            keep = self._mk(GateKind.AND, self._mk_not(axb), lt)
            lt = self._mk(GateKind.OR, below, keep)
        eq = self._mk_not(self._or_tree(differences))
        return lt, eq

    def _signed_buses(
        self, buses: List[List[Net]]
    ) -> Tuple[List[Net], List[Net]]:
        """Flip the MSBs so the unsigned borrow ripple compares signed values."""
        a_bus, b_bus = buses[0], buses[1]
        a_cmp = a_bus[:-1] + [self._mk_not(a_bus[-1])]
        b_cmp = b_bus[:-1] + [self._mk_not(b_bus[-1])]
        return a_cmp, b_cmp

    def _build_comparator_kernel(
        self, unit: _EmitUnit, buses: List[List[Net]]
    ) -> List[Net]:
        a_cmp, b_cmp = self._signed_buses(buses)
        lt, eq = self._compare(a_cmp, b_cmp)
        le = self._mk(GateKind.OR, lt, eq)
        base_legs: Dict[str, List[int]] = {"lt": [], "le": [], "eq": []}
        invert: List[Tuple[int, Net]] = []
        for op in unit.ops:
            function, inverted = _CMP_PLAN[op.kind]
            base_legs[function].append(self.cycle_of[op])
            if inverted:
                invert.append((self.cycle_of[op], self._const(1)))
        function_nets = {"lt": lt, "le": le, "eq": eq}
        active = [name for name in ("lt", "le", "eq") if base_legs[name]]
        if len(active) == 1:
            base = function_nets[active[0]]
        else:
            terms = []
            for index, name in enumerate(active):
                select = self._or_tree([self._st[c] for c in sorted(base_legs[name])])
                self.controller.register_control(f"{unit.ident}.fn{index}")
                terms.append(self._mk(GateKind.AND, select, function_nets[name]))
            base = self._or_tree(terms)
        inv = self._control_net(unit, f"{unit.ident}.inv", invert)
        out = self._mk(GateKind.XOR, base, inv)
        return [out] + [self._const(0)] * (unit.out_width - 1)

    def _build_maxmin_kernel(
        self, unit: _EmitUnit, buses: List[List[Net]]
    ) -> List[Net]:
        a_cmp, b_cmp = self._signed_buses(buses)
        lt, _eq = self._compare(a_cmp, b_cmp)
        is_min = self._control_net(
            unit,
            f"{unit.ident}.min",
            [
                (self.cycle_of[op], self._const(1))
                for op in unit.ops
                if op.kind is OpKind.MIN
            ],
        )
        choose_b = self._mk(GateKind.XOR, lt, is_min)
        choose_a = self._mk_not(choose_b)
        a_bus, b_bus = buses[0], buses[1]
        return [
            self._mk(
                GateKind.OR,
                self._mk(GateKind.AND, b_bus[bit], choose_b),
                self._mk(GateKind.AND, a_bus[bit], choose_a),
            )
            for bit in range(unit.out_width)
        ]

    def _build_multiplier_kernel(
        self, unit: _EmitUnit, buses: List[List[Net]]
    ) -> List[Net]:
        width = unit.kernel_width
        a_bus = buses[0]
        b_bus = buses[1] if len(buses) > 1 else [self._const(0)] * width
        accumulator = [self._mk(GateKind.AND, a_bus[bit], b_bus[0]) for bit in range(width)]
        for shift in range(1, width):
            multiplier_bit = b_bus[shift]
            if self._is_const(multiplier_bit, 0):
                continue
            carry = self._const(0)
            for position in range(shift, width):
                addend = self._mk(
                    GateKind.AND, a_bus[position - shift], multiplier_bit
                )
                accumulator[position], carry = self._full_adder(
                    accumulator[position], addend, carry
                )
        return accumulator

    # ------------------------------------------------------------------
    # Clocked element next-value logic
    # ------------------------------------------------------------------
    def _build_register_writes(self) -> None:
        registers = self.datapath.registers.registers
        for index, register in enumerate(registers):
            element = self._elements[1 + index]  # fsm is element 0
            q_nets = element.q_nets
            loads: List[Tuple[Net, List[Net]]] = []
            for group in register.groups:
                producer = group.producer
                if producer is None:  # pragma: no cover - stored groups have one
                    continue
                birth_state = self._st[group.birth_cycle]
                destination = producer.destination
                low_result_bit = group.low_bit - destination.range.lo
                source_bus = self._op_out[producer]
                nets = [
                    source_bus[low_result_bit + offset]
                    if low_result_bit + offset < len(source_bus)
                    else self._const(0)
                    for offset in range(group.width)
                ]
                while len(nets) < register.width:
                    nets.append(self._const(0))
                loads.append((birth_state, nets))
            if loads:
                # One physical load enable per register, however many value
                # groups time-share it.
                self.controller.register_control(f"r{index}.load")
            any_load = self._or_tree([state for state, _nets in loads])
            hold = self._mk_not(any_load)
            for bit in range(register.width):
                terms = [
                    self._mk(GateKind.AND, state, nets[bit]) for state, nets in loads
                ]
                terms.append(self._mk(GateKind.AND, q_nets[bit], hold))
                element.d_nets.append(self._or_tree(terms))

    def _build_capture_writes(self) -> None:
        for element, op, result_bits in self._pending_captures:
            state = self._st[self.cycle_of[op]]
            hold = self._mk_not(state)
            source_bus = self._op_out[op]
            self.controller.register_control(f"{element.name}.load")
            for position, result_bit in enumerate(result_bits):
                captured = self._mk(GateKind.AND, source_bus[result_bit], state)
                kept = self._mk(GateKind.AND, element.q_nets[position], hold)
                element.d_nets.append(self._mk(GateKind.OR, captured, kept))

    def _build_fsm_next(self) -> None:
        element = self._fsm
        last = self._st[self.schedule.latency]
        advance = self._mk_not(last)
        carry = self._const(1)
        for q in element.q_nets:
            incremented = self._mk(GateKind.XOR, q, carry)
            carry = self._mk(GateKind.AND, carry, q)
            # Wrap back to state 0 after the last cycle: the design streams
            # one computation every ``latency`` clocks.
            element.d_nets.append(self._mk(GateKind.AND, incremented, advance))

    # ------------------------------------------------------------------
    def _finish(self) -> RtlDesign:
        design = RtlDesign(
            name=self.name,
            netlist=self.netlist,
            latency=self.schedule.latency,
            input_ports=self._input_ports,
            state_elements=self._elements,
        )
        for element in self._elements:
            if len(element.d_nets) != element.width:  # pragma: no cover
                raise EmissionError(
                    f"state element {element.name}: {len(element.d_nets)} next-value "
                    f"nets for {element.width} bits"
                )
            for net in element.d_nets:
                self.netlist.mark_output(net)
        for port in self.spec.outputs():
            nets = self._output_nets[port.name]
            design.output_ports[port.name] = nets
            design.output_signed[port.name] = port.signed
            for net in nets:
                self.netlist.mark_output(net)
        # Drop speculatively built helpers (folded-away constants, unused
        # decode inverters) that no output or state element depends on.
        self.netlist.prune_dead_gates()
        self.stats.gate_count = self.netlist.gate_count()
        counts: Dict[str, int] = {}
        for gate in self.netlist.gates:
            counts[gate.kind.value] = counts.get(gate.kind.value, 0) + 1
        self.stats.gate_counts = counts
        self.stats.control_signals = len(self.controller.control_signals)
        interconnect = self.datapath.interconnect
        self.stats.estimated_mux_count = sum(
            1 for mux in interconnect.multiplexers if mux.fan_in > 1
        )
        self.stats.estimated_control_signals = (
            self.datapath.controller.control_signals
        )
        return design


def emit_design(
    schedule: Schedule,
    library: Optional[TechnologyLibrary] = None,
    datapath: Optional[Datapath] = None,
    name: Optional[str] = None,
) -> RtlEmission:
    """Lower a scheduled (and optionally pre-allocated) specification to RTL.

    When *datapath* is omitted, allocation and binding run first (through the
    memoized :func:`~repro.hls.datapath.build_datapath`), so the emitted
    structure is exactly the structure the area reports account for.
    """
    library = library or default_library()
    if datapath is None:
        datapath = build_datapath(schedule, library)
    emitter = _Emitter(schedule, datapath, library, name=name)
    return emitter.build()


def verify_emission(
    design: RtlDesign,
    specification: Specification,
    random_count: int = 50,
    seed: int = 2005,
    corner_limit: int = 64,
    backend: Optional[str] = None,
) -> EmissionCheck:
    """Batch co-simulation of an emitted design against the behavioural oracle.

    Drives the corner + random stimulus set through both the lane-packed
    :class:`~repro.simulation.batch.BatchInterpreter` and the design's
    cycle-accurate batch simulation, and compares every output port's raw
    bit pattern lane by lane.  ``backend`` selects the bit-plane core on
    both sides (``None``/``"auto"``, ``"bigint"``, ``"numpy"``,
    ``"legacy"``); every choice is bit-identical.
    """
    from ..simulation.batch import BatchInterpreter
    from ..simulation.vectors import stimulus

    vectors = stimulus(
        specification,
        random_count=random_count,
        seed=seed,
        corner_limit=corner_limit,
    )
    oracle = BatchInterpreter(specification, engine=backend).run_batch(vectors)
    actual = design.simulate_batch(vectors, engine=backend)
    check = EmissionCheck(design_name=design.name, vectors_checked=len(vectors))
    for name in sorted(actual):
        expected_lanes = oracle.final_state_lanes(name)
        actual_lanes = actual[name]
        for lane, (expected, got) in enumerate(zip(expected_lanes, actual_lanes)):
            if expected != got:
                check.mismatches.append((name, lane, expected, got))
    return check
