"""Sequential RTL designs: a combinational core plus clocked state elements.

The emitter (:mod:`repro.rtl.emit`) lowers an allocated datapath into an
:class:`RtlDesign`: one combinational :class:`~repro.rtl.netlist.Netlist`
(functional units, multiplexer trees, FSM decode and next-state logic) whose
primary inputs are the design's input ports plus the *current* value of every
state element, and whose outputs include the *next* value of every state
element.  This is the standard sequential-synthesis decomposition -- the
netlist is the cloud between the flip-flops -- so the existing levelised
:class:`~repro.rtl.simulator.NetlistSimulator` simulates the design
cycle-accurately by evaluating the cloud once per clock and latching the
``d`` outputs back into the ``q`` inputs, in both scalar and lane-packed
batch modes.

Output ports are combinational functions of dedicated capture registers (the
paper's "dedicated registers that stabilise input and output ports", which
Table I excludes from the area accounting), so they hold the final values
after the last schedule cycle has executed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from .netlist import Net, Netlist, NetlistError
from .simulator import NetlistSimulator


class RtlDesignError(NetlistError):
    """Raised for malformed sequential designs or bad simulation inputs."""


@dataclass
class StateElement:
    """One clocked register of the design (datapath, FSM or output capture).

    ``q_nets`` are primary inputs of the combinational core (the register's
    current value, LSB first); ``d_nets`` are core nets carrying the value
    latched at the next clock edge.  ``role`` tags the element for reports:
    ``"fsm"``, ``"register"`` (datapath storage from the allocation),
    ``"capture"`` (dedicated output-port capture, outside the paper's area
    accounting) or ``"shadow"`` (defensive storage for values the estimate
    classified as stable wires).
    """

    name: str
    width: int
    role: str
    q_nets: List[Net] = field(default_factory=list)
    d_nets: List[Net] = field(default_factory=list)
    init: int = 0

    def __post_init__(self) -> None:
        if self.width < 1:
            raise RtlDesignError(f"state element {self.name} must be >= 1 bit wide")


@dataclass
class RtlDesign:
    """A structural sequential design produced by the emitter.

    ``input_ports`` / ``output_ports`` map port names to LSB-first net lists:
    inputs are primary inputs of the core, outputs are combinational nets
    (functions of the capture registers) that settle to the final values once
    ``latency`` cycles have executed.
    """

    name: str
    netlist: Netlist
    latency: int
    input_ports: Dict[str, List[Net]] = field(default_factory=dict)
    output_ports: Dict[str, List[Net]] = field(default_factory=dict)
    state_elements: List[StateElement] = field(default_factory=list)
    #: signedness of each output port, for decoded views
    output_signed: Dict[str, bool] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def state_bits(self) -> int:
        return sum(element.width for element in self.state_elements)

    def elements_of(self, role: str) -> List[StateElement]:
        return [element for element in self.state_elements if element.role == role]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RtlDesign({self.name!r}, {self.netlist.gate_count()} gates, "
            f"{len(self.state_elements)} state elements, "
            f"{self.latency} cycles)"
        )

    # ------------------------------------------------------------------
    # Cycle-accurate simulation
    # ------------------------------------------------------------------
    def _simulator(self, engine: Optional[str] = None) -> NetlistSimulator:
        # NetlistSimulator memoizes the levelisation per netlist, so a fresh
        # wrapper per call costs one cache lookup.
        return NetlistSimulator(self.netlist, engine=engine)

    def _check_inputs(self, inputs: Mapping[str, int]) -> None:
        unknown = set(inputs) - set(self.input_ports)
        if unknown:
            raise RtlDesignError(
                f"unknown input port(s) {sorted(unknown)} for design {self.name}"
            )
        missing = set(self.input_ports) - set(inputs)
        if missing:
            raise RtlDesignError(f"missing value(s) for input port(s) {sorted(missing)}")

    def simulate(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        """Run the design for ``latency`` clock cycles on one input vector.

        Input values are raw (unsigned) bit patterns of the port width;
        returns the raw bit pattern of every output port after the last
        cycle, exactly comparable to the behavioural oracle's final state.
        """
        self._check_inputs(inputs)
        simulator = self._simulator()
        assignment: Dict[Net, int] = {}
        for name, nets in self.input_ports.items():
            value = inputs[name]
            for bit, net in enumerate(nets):
                assignment[net] = (value >> bit) & 1
        state: Dict[int, List[int]] = {
            index: [(element.init >> bit) & 1 for bit in range(element.width)]
            for index, element in enumerate(self.state_elements)
        }
        result = None
        # One evaluation per schedule cycle, plus a final settle pass so the
        # combinational output-port nets reflect the last latched captures.
        for _cycle in range(self.latency + 1):
            for index, element in enumerate(self.state_elements):
                for bit, net in enumerate(element.q_nets):
                    assignment[net] = state[index][bit]
            result = simulator.run(assignment)
            for index, element in enumerate(self.state_elements):
                state[index] = [result.values[net] for net in element.d_nets]
        assert result is not None
        return {
            name: result.value_of_bus(nets)
            for name, nets in self.output_ports.items()
        }

    def simulate_batch(
        self,
        vectors: Sequence[Mapping[str, int]],
        engine: Optional[str] = None,
    ) -> Dict[str, List[int]]:
        """Lane-packed batch run: one stimulus vector per bit lane.

        Returns the raw (unsigned) value of every output port, one integer
        per lane, after ``latency`` cycles -- bit-identical to running
        :meth:`simulate` once per vector.  ``engine`` selects the batch
        evaluation core (see :class:`~repro.rtl.simulator.NetlistSimulator`).
        """
        lanes = len(vectors)
        if lanes == 0:
            raise RtlDesignError("batch simulation needs at least one stimulus vector")
        for lane, vector in enumerate(vectors):
            unknown = set(vector) - set(self.input_ports)
            missing = set(self.input_ports) - set(vector)
            if unknown or missing:
                raise RtlDesignError(
                    f"vector {lane}: unknown ports {sorted(unknown)}, "
                    f"missing ports {sorted(missing)}"
                )
        lane_mask = (1 << lanes) - 1
        simulator = self._simulator(engine)
        assignment: Dict[Net, int] = {}
        for name, nets in self.input_ports.items():
            for bit, net in enumerate(nets):
                packed = 0
                for lane, vector in enumerate(vectors):
                    packed |= ((vector[name] >> bit) & 1) << lane
                assignment[net] = packed
        state: Dict[int, List[int]] = {}
        for index, element in enumerate(self.state_elements):
            state[index] = [
                lane_mask if (element.init >> bit) & 1 else 0
                for bit in range(element.width)
            ]
        result = None
        for _cycle in range(self.latency + 1):
            for index, element in enumerate(self.state_elements):
                planes = state[index]
                for bit, net in enumerate(element.q_nets):
                    assignment[net] = planes[bit]
            result = simulator.run_batch(assignment, lanes)
            for index, element in enumerate(self.state_elements):
                state[index] = [result.values[net] for net in element.d_nets]
        assert result is not None
        return {
            name: result.value_of_bus(nets)
            for name, nets in self.output_ports.items()
        }

    def decode_output(self, name: str, raw: int) -> int:
        """Apply two's complement decoding to one raw output value."""
        nets = self.output_ports.get(name)
        if nets is None:
            raise RtlDesignError(f"no output port named {name!r}")
        if not self.output_signed.get(name):
            return raw
        width = len(nets)
        half = 1 << (width - 1)
        return raw - (1 << width) if raw >= half else raw
