"""Analysis and reporting: flow comparisons, latency sweeps, table formatting.

Everything here drives the :mod:`repro.api` pipeline: comparisons run
through a (cacheable) :class:`~repro.api.Pipeline`, latency sweeps fan out
through the :class:`~repro.api.SweepEngine`.
"""

from .comparison import FlowComparison, compare_flows
from .sweeps import (
    LatencySweep,
    SweepPoint,
    change_pct,
    latency_sweep,
    paired_reports,
    sweep_configs,
)
from .tables import (
    REPORT_COLUMNS,
    format_records,
    format_reports,
    format_table,
    percentage,
)

__all__ = [
    "FlowComparison",
    "LatencySweep",
    "REPORT_COLUMNS",
    "SweepPoint",
    "change_pct",
    "compare_flows",
    "format_records",
    "format_reports",
    "format_table",
    "latency_sweep",
    "paired_reports",
    "percentage",
    "sweep_configs",
]
