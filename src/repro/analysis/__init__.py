"""Analysis and reporting: flow comparisons, latency sweeps, table formatting."""

from .comparison import FlowComparison, compare_flows
from .sweeps import LatencySweep, SweepPoint, latency_sweep
from .tables import format_records, format_table, percentage

__all__ = [
    "FlowComparison",
    "LatencySweep",
    "SweepPoint",
    "compare_flows",
    "format_records",
    "format_table",
    "latency_sweep",
    "percentage",
]
