"""Parameter sweeps: the latency sweep behind Fig. 4 and general DSE helpers.

Fig. 4 of the paper plots the cycle length of the schedules obtained from the
original and the optimized specification as the circuit latency grows from 3
to 15 cycles, showing the two curves diverging: the conventional schedule's
cycle length saturates at the delay of the slowest operation, while the
optimized specification keeps trading latency for a shorter clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..core.transform import TransformOptions, transform
from ..hls.flow import FlowMode, synthesize
from ..ir.spec import Specification
from ..techlib.library import TechnologyLibrary, default_library


@dataclass(frozen=True)
class SweepPoint:
    """One latency point of the Fig. 4 sweep."""

    latency: int
    original_cycle_ns: float
    optimized_cycle_ns: float
    original_execution_ns: float
    optimized_execution_ns: float

    @property
    def cycle_saving(self) -> float:
        if self.original_cycle_ns == 0:
            return 0.0
        return 1.0 - self.optimized_cycle_ns / self.original_cycle_ns


@dataclass
class LatencySweep:
    """The full cycle-length-versus-latency sweep for one specification."""

    specification_name: str
    points: List[SweepPoint] = field(default_factory=list)

    def latencies(self) -> List[int]:
        return [point.latency for point in self.points]

    def original_series(self) -> List[float]:
        return [point.original_cycle_ns for point in self.points]

    def optimized_series(self) -> List[float]:
        return [point.optimized_cycle_ns for point in self.points]

    def savings_series(self) -> List[float]:
        return [point.cycle_saving for point in self.points]

    def divergence(self) -> float:
        """Gap growth between the curves: (last gap) - (first gap), in ns.

        Positive divergence is the qualitative claim of Fig. 4: the curves
        separate as the latency becomes bigger.
        """
        if len(self.points) < 2:
            return 0.0
        first = self.points[0]
        last = self.points[-1]
        first_gap = first.original_cycle_ns - first.optimized_cycle_ns
        last_gap = last.original_cycle_ns - last.optimized_cycle_ns
        return last_gap - first_gap

    def as_rows(self) -> List[Dict[str, float]]:
        return [
            {
                "latency": point.latency,
                "original_cycle_ns": point.original_cycle_ns,
                "optimized_cycle_ns": point.optimized_cycle_ns,
                "cycle_saving_pct": 100.0 * point.cycle_saving,
            }
            for point in self.points
        ]

    def render_ascii(self, width: int = 60) -> str:
        """A terminal rendering of the two curves (original = 'o', optimized = '+')."""
        if not self.points:
            return "(empty sweep)"
        peak = max(point.original_cycle_ns for point in self.points) or 1.0
        lines = [f"cycle length vs latency for {self.specification_name}"]
        for point in self.points:
            original_bar = int(round(width * point.original_cycle_ns / peak))
            optimized_bar = int(round(width * point.optimized_cycle_ns / peak))
            lines.append(
                f"  lambda={point.latency:2d} "
                f"|{'o' * original_bar:<{width}}| {point.original_cycle_ns:6.2f} ns"
            )
            lines.append(
                f"            "
                f"|{'+' * optimized_bar:<{width}}| {point.optimized_cycle_ns:6.2f} ns"
            )
        return "\n".join(lines)


def latency_sweep(
    specification_factory,
    latencies: Iterable[int],
    library: Optional[TechnologyLibrary] = None,
    transform_options: Optional[TransformOptions] = None,
) -> LatencySweep:
    """Run the Fig. 4 experiment: sweep the latency, synthesize both flows.

    ``specification_factory`` is called once per latency so that every point
    works on a fresh specification object (operation identities are not shared
    across points).
    """
    library = library or default_library()
    options = transform_options or TransformOptions(check_equivalence=False)
    sweep: Optional[LatencySweep] = None
    for latency in latencies:
        specification: Specification = specification_factory()
        if sweep is None:
            sweep = LatencySweep(specification.name)
        result = transform(specification, latency, options)
        original = synthesize(specification, latency, library, FlowMode.CONVENTIONAL)
        optimized = synthesize(
            result.transformed,
            latency,
            library,
            FlowMode.FRAGMENTED,
            chained_bits_per_cycle=result.chained_bits_per_cycle,
        )
        sweep.points.append(
            SweepPoint(
                latency=latency,
                original_cycle_ns=original.cycle_length_ns,
                optimized_cycle_ns=optimized.cycle_length_ns,
                original_execution_ns=original.execution_time_ns,
                optimized_execution_ns=optimized.execution_time_ns,
            )
        )
    assert sweep is not None
    return sweep
