"""Parameter sweeps: the latency sweep behind Fig. 4 and general DSE helpers.

Fig. 4 of the paper plots the cycle length of the schedules obtained from the
original and the optimized specification as the circuit latency grows from 3
to 15 cycles, showing the two curves diverging: the conventional schedule's
cycle length saturates at the delay of the slowest operation, while the
optimized specification keeps trading latency for a shorter clock.

The sweep is powered by :class:`repro.api.SweepEngine`: every latency point
becomes a pair of :class:`repro.api.FlowConfig` objects (conventional +
fragmented) that fan out across workers.  Pass ``max_workers`` to
parallelize; results are deterministic regardless of worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from ..api.config import FlowConfig
from ..api.pipeline import Pipeline
from ..api.sweep import DEFAULT_SWEEP_CHUNK, SweepEngine
from ..core.transform import TransformOptions
from ..ir.spec import Specification
from ..techlib.library import TechnologyLibrary

#: A latency-sweep subject: a workload name (serializable, usable with the
#: process executor) or a factory returning a fresh specification per call.
SweepSource = Union[str, Callable[[], Specification]]


@dataclass(frozen=True)
class SweepPoint:
    """One latency point of the Fig. 4 sweep."""

    latency: int
    original_cycle_ns: float
    optimized_cycle_ns: float
    original_execution_ns: float
    optimized_execution_ns: float

    @property
    def cycle_saving(self) -> float:
        if self.original_cycle_ns == 0:
            return 0.0
        return 1.0 - self.optimized_cycle_ns / self.original_cycle_ns


@dataclass
class LatencySweep:
    """The full cycle-length-versus-latency sweep for one specification."""

    specification_name: str
    points: List[SweepPoint] = field(default_factory=list)

    def latencies(self) -> List[int]:
        return [point.latency for point in self.points]

    def original_series(self) -> List[float]:
        return [point.original_cycle_ns for point in self.points]

    def optimized_series(self) -> List[float]:
        return [point.optimized_cycle_ns for point in self.points]

    def savings_series(self) -> List[float]:
        return [point.cycle_saving for point in self.points]

    def divergence(self) -> float:
        """Gap growth between the curves: (last gap) - (first gap), in ns.

        Positive divergence is the qualitative claim of Fig. 4: the curves
        separate as the latency becomes bigger.
        """
        if len(self.points) < 2:
            return 0.0
        first = self.points[0]
        last = self.points[-1]
        first_gap = first.original_cycle_ns - first.optimized_cycle_ns
        last_gap = last.original_cycle_ns - last.optimized_cycle_ns
        return last_gap - first_gap

    def as_rows(self) -> List[Dict[str, float]]:
        return [
            {
                "latency": point.latency,
                "original_cycle_ns": point.original_cycle_ns,
                "optimized_cycle_ns": point.optimized_cycle_ns,
                "cycle_saving_pct": 100.0 * point.cycle_saving,
            }
            for point in self.points
        ]

    def render_ascii(self, width: int = 60) -> str:
        """A terminal rendering of the two curves (original = 'o', optimized = '+')."""
        if not self.points:
            return "(empty sweep)"
        peak = max(point.original_cycle_ns for point in self.points) or 1.0
        lines = [f"cycle length vs latency for {self.specification_name}"]
        for point in self.points:
            original_bar = int(round(width * point.original_cycle_ns / peak))
            optimized_bar = int(round(width * point.optimized_cycle_ns / peak))
            lines.append(
                f"  lambda={point.latency:2d} "
                f"|{'o' * original_bar:<{width}}| {point.original_cycle_ns:6.2f} ns"
            )
            lines.append(
                f"            "
                f"|{'+' * optimized_bar:<{width}}| {point.optimized_cycle_ns:6.2f} ns"
            )
        return "\n".join(lines)


def sweep_configs(
    latencies: Iterable[int],
    workload: Optional[str] = None,
    transform_options: Optional[TransformOptions] = None,
) -> List[FlowConfig]:
    """The (conventional, fragmented) config pair of every latency point.

    Thin wrapper over the declarative Fig. 4 study: the config axis is the
    expansion of :func:`repro.api.study.fig4_study`, so hand-built sweeps,
    the CLI and persistent workspaces all share one declaration.  An empty
    latency axis yields an empty list, as it always has (a study proper
    rejects empty expansions).
    """
    from ..api.study import fig4_study

    latencies = list(latencies)
    if not latencies:
        return []
    return fig4_study(
        workload, latencies=latencies, transform_options=transform_options
    ).configs()


def paired_reports(reports: Sequence[Dict[str, float]]):
    """(original, optimized) pairs from the interleaved report list a
    :func:`sweep_configs`-shaped sweep produces."""
    return zip(reports[0::2], reports[1::2])


def change_pct(
    original: Dict[str, float], optimized: Dict[str, float], key: str
) -> float:
    """Percentage saving of *key*, optimized versus original (negative when
    the optimized flow costs more)."""
    if not original[key]:
        return 0.0
    return 100.0 * (1.0 - optimized[key] / original[key])


def latency_sweep(
    source: SweepSource,
    latencies: Iterable[int],
    library: Optional[TechnologyLibrary] = None,
    transform_options: Optional[TransformOptions] = None,
    max_workers: Optional[int] = None,
    executor: Optional[str] = None,
    engine: Optional[SweepEngine] = None,
) -> LatencySweep:
    """Run the Fig. 4 experiment: sweep the latency, synthesize both flows.

    Parameters
    ----------
    source:
        A workload name (e.g. ``"chain:3:16"``; serializable, required for
        the process executor) or a zero-argument factory called once per
        (latency, flow) point so every run works on a fresh specification.
    latencies:
        The latency axis.
    library:
        Technology library override (serial/thread executors only).
    transform_options:
        Transformation knobs mapped onto the fragmented-flow configs.
    max_workers / executor:
        Fan the points across a :class:`repro.api.SweepEngine` pool.  The
        default is the deterministic serial path; ``executor`` defaults to
        ``"thread"`` when ``max_workers`` exceeds 1.
    engine:
        A pre-built engine (overrides ``max_workers``/``executor``).
    """
    latencies = list(latencies)
    if not latencies:
        raise ValueError("latency_sweep needs at least one latency")
    workload = source if isinstance(source, str) else None
    configs = sweep_configs(latencies, workload, transform_options)

    specifications: Optional[List[Optional[Specification]]] = None
    name: Optional[str] = workload
    if not isinstance(source, str):
        # One fresh specification per config: runs never share mutable IR,
        # which keeps the thread executor race-free.
        specifications = [source() for _ in configs]
        name = specifications[0].name if specifications else None

    if engine is None:
        if executor is None:
            executor = "thread" if (max_workers or 1) > 1 else "serial"
        pipeline = Pipeline(library=library)
        # Fig. 4 consumes cycle lengths and execution times only, so sweep
        # points stop after the timing pass: allocation and binding -- about
        # 40% of a full point -- never run.  The timing rows carry the same
        # values a full report would for every key read below.
        # Serial sweeps run in GC-paused chunks (identical results, large
        # fixed-cost saving); pooled executors keep per-point granularity.
        engine = SweepEngine(
            pipeline,
            max_workers=max_workers,
            executor=executor,
            stop_after="time",
            chunk=DEFAULT_SWEEP_CHUNK if executor == "serial" else None,
        )
    elif library is not None:
        raise ValueError(
            "give either an engine or a library, not both "
            "(set the library on the engine's pipeline instead)"
        )
    reports = engine.reports(configs, specifications)

    sweep = LatencySweep(name or reports[0]["name"])
    for original, optimized in paired_reports(reports):
        sweep.points.append(
            SweepPoint(
                latency=original["latency"],
                original_cycle_ns=original["cycle_length_ns"],
                optimized_cycle_ns=optimized["cycle_length_ns"],
                original_execution_ns=original["execution_time_ns"],
                optimized_execution_ns=optimized["execution_time_ns"],
            )
        )
    return sweep
