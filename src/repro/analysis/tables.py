"""Plain-text table formatting for experiment reports.

The benchmark harnesses print their results in the same row/column layout as
the paper's tables, so that a reader can put the two side by side.  Only the
standard library is used (no tabulate dependency).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float]


def format_cell(value: Cell, precision: int = 2) -> str:
    """Render one table cell: floats to fixed precision, the rest verbatim."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    precision: int = 2,
    title: Optional[str] = None,
) -> str:
    """Render an aligned plain-text table."""
    rendered_rows: List[List[str]] = [
        [format_cell(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append(separator)
    for row in rendered_rows:
        padded = [cell.rjust(widths[index]) for index, cell in enumerate(row)]
        lines.append(" | ".join(padded))
    return "\n".join(lines)


def format_records(
    records: Sequence[Dict[str, Cell]],
    columns: Optional[Sequence[str]] = None,
    precision: int = 2,
    title: Optional[str] = None,
) -> str:
    """Render a list of dictionaries (e.g. ``FlowComparison.as_row()`` output)."""
    if not records:
        return title or "(no rows)"
    if columns is None:
        columns = list(records[0].keys())
    rows = [[record.get(column, "") for column in columns] for record in records]
    return format_table(columns, rows, precision=precision, title=title)


def percentage(fraction: float) -> str:
    """Render a fraction as a percentage string, paper style."""
    return f"{100.0 * fraction:.2f} %"


#: Default columns when tabulating pipeline run reports.
REPORT_COLUMNS = (
    "name",
    "mode",
    "latency",
    "cycle_length_ns",
    "execution_time_ns",
    "fu_area",
    "register_area",
    "total_area",
)


def format_reports(
    reports: Sequence[Dict[str, Cell]],
    columns: Optional[Sequence[str]] = None,
    precision: int = 2,
    title: Optional[str] = None,
) -> str:
    """Render :mod:`repro.api` run reports (or sweep outcomes) as a table.

    Accepts the flat report dictionaries produced by the pipeline's report
    pass, :class:`~repro.api.RunArtifact` objects, or
    :class:`~repro.api.SweepOutcome` objects (failed outcomes render their
    error in place of metrics).
    """
    rows: List[Dict[str, Cell]] = []
    for item in reports:
        if isinstance(item, dict):
            rows.append(item)
            continue
        report = getattr(item, "report", None)
        if report is not None:
            rows.append(report)
            continue
        error = getattr(item, "error", None)
        config = getattr(item, "config", None)
        if error is not None and config is not None:
            rows.append(
                {
                    "name": config.workload or "<inline>",
                    "mode": config.mode.value,
                    "latency": config.latency,
                    "error": error,
                }
            )
            continue
        raise TypeError(
            f"cannot tabulate {type(item).__name__}: expected a report dict, "
            "RunArtifact or SweepOutcome"
        )
    if columns is None:
        columns = [
            column
            for column in REPORT_COLUMNS
            if any(column in row for row in rows)
        ]
        if any("error" in row for row in rows):
            columns = list(columns) + ["error"]
    return format_records(rows, columns=columns, precision=precision, title=title)
