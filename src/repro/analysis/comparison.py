"""Side-by-side comparison of the original and optimized synthesis flows.

This module packages the experiment the paper runs on every benchmark: apply
the conventional flow to the original specification, apply the presynthesis
transformation and then the conventional flow to the optimized specification,
and report cycle length, execution time and the area breakdown of both --
the rows of Tables I, II and III.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..api.config import FlowConfig
from ..api.pipeline import Pipeline
from ..core.transform import TransformOptions, TransformResult
from ..hls.flow import SynthesisResult
from ..ir.spec import Specification
from ..techlib.library import TechnologyLibrary


@dataclass
class FlowComparison:
    """Original-vs-optimized synthesis results for one benchmark and latency."""

    name: str
    latency: int
    transform_result: TransformResult
    original: SynthesisResult
    optimized: SynthesisResult
    bit_level_chained: Optional[SynthesisResult] = None

    # ------------------------------------------------------------------
    @property
    def cycle_saving(self) -> float:
        """Fractional cycle-length reduction (the paper's "Saved" column)."""
        if self.original.cycle_length_ns == 0:
            return 0.0
        return 1.0 - self.optimized.cycle_length_ns / self.original.cycle_length_ns

    @property
    def execution_time_saving(self) -> float:
        if self.original.execution_time_ns == 0:
            return 0.0
        return 1.0 - self.optimized.execution_time_ns / self.original.execution_time_ns

    @property
    def area_increment(self) -> float:
        """Fractional datapath-area increase (negative means area was saved)."""
        if self.original.datapath_area == 0:
            return 0.0
        return self.optimized.datapath_area / self.original.datapath_area - 1.0

    @property
    def total_area_increment(self) -> float:
        if self.original.total_area == 0:
            return 0.0
        return self.optimized.total_area / self.original.total_area - 1.0

    @property
    def operation_growth(self) -> float:
        return self.transform_result.operation_growth()

    def as_row(self) -> Dict[str, float]:
        """A flat dictionary row, convenient for table formatting."""
        return {
            "benchmark": self.name,
            "latency": self.latency,
            "original_cycle_ns": self.original.cycle_length_ns,
            "optimized_cycle_ns": self.optimized.cycle_length_ns,
            "cycle_saving_pct": 100.0 * self.cycle_saving,
            "original_execution_ns": self.original.execution_time_ns,
            "optimized_execution_ns": self.optimized.execution_time_ns,
            "original_datapath_area": self.original.datapath_area,
            "optimized_datapath_area": self.optimized.datapath_area,
            "area_increment_pct": 100.0 * self.area_increment,
            "original_total_area": self.original.total_area,
            "optimized_total_area": self.optimized.total_area,
        }

    def summary(self) -> str:
        return (
            f"{self.name} (latency {self.latency}): cycle "
            f"{self.original.cycle_length_ns:.2f} ns -> "
            f"{self.optimized.cycle_length_ns:.2f} ns "
            f"({100 * self.cycle_saving:.1f}% saved), datapath area "
            f"{self.original.datapath_area:.0f} -> {self.optimized.datapath_area:.0f} "
            f"gates ({100 * self.area_increment:+.1f}%)"
        )


def compare_flows(
    specification: Specification,
    latency: int,
    library: Optional[TechnologyLibrary] = None,
    transform_options: Optional[TransformOptions] = None,
    include_blc: bool = False,
    balance_fragments: bool = True,
    pipeline: Optional[Pipeline] = None,
) -> FlowComparison:
    """Run the paper's original-vs-optimized experiment on one specification.

    The three flows run through :class:`repro.api.Pipeline`; pass one in to
    share its result cache across comparisons.
    """
    if pipeline is None:
        pipeline = Pipeline(library=library)
    elif library is not None:
        raise ValueError("give either a pipeline or a library, not both")
    options = transform_options or TransformOptions(check_equivalence=False)

    def run_full(config: FlowConfig):
        # The comparison needs the full synthesis objects, so report-only
        # disk-tier rehydrations are rejected and replaced in the cache.
        return pipeline.run(config, specification=specification, require_full=True)

    original_run = run_full(
        FlowConfig(
            latency=latency,
            mode="conventional",
            validate_input=options.validate_input,
        )
    )
    optimized_run = run_full(
        FlowConfig(
            latency=latency,
            mode="fragmented",
            balance_fragments=balance_fragments,
            check_equivalence=options.check_equivalence,
            equivalence_vectors=options.equivalence_vectors,
            equivalence_seed=options.equivalence_seed,
            chained_bits_per_cycle=options.chained_bits_override,
            validate_input=options.validate_input,
            validate_output=options.validate_output,
        )
    )
    blc = None
    if include_blc:
        blc = run_full(
            FlowConfig(
                latency=1, mode="blc", validate_input=options.validate_input
            )
        ).synthesis
    return FlowComparison(
        name=specification.name,
        latency=latency,
        transform_result=optimized_run.require("transform_result"),
        original=original_run.synthesis,
        optimized=optimized_run.synthesis,
        bit_level_chained=blc,
    )
