"""Structural validation of behavioural specifications.

Validation is used in two places:

* before the transformation, to reject malformed input specifications early
  (undriven outputs, reads of never-written internal bits, width mismatches);
* after the transformation, as a sanity gate -- the transformed specification
  must satisfy exactly the same structural rules as the original, plus the
  fragment-specific invariants checked by the property tests in
  ``tests/core``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .operations import COMPARISON_KINDS, OpKind
from .spec import Specification


@dataclass
class ValidationIssue:
    """A single validation finding."""

    severity: str  # "error" | "warning"
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.severity}: {self.message}"


@dataclass
class ValidationReport:
    """The collected findings for one specification."""

    specification_name: str
    issues: List[ValidationIssue] = field(default_factory=list)

    @property
    def errors(self) -> List[ValidationIssue]:
        return [issue for issue in self.issues if issue.severity == "error"]

    @property
    def warnings(self) -> List[ValidationIssue]:
        return [issue for issue in self.issues if issue.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when no errors were found (warnings allowed)."""
        return not self.errors

    def error(self, message: str) -> None:
        self.issues.append(ValidationIssue("error", message))

    def warning(self, message: str) -> None:
        self.issues.append(ValidationIssue("warning", message))

    def summary(self) -> str:
        lines = [
            f"validation of {self.specification_name}: "
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        ]
        lines.extend(str(issue) for issue in self.issues)
        return "\n".join(lines)


class ValidationError(ValueError):
    """Raised by :func:`require_valid` when a specification has errors."""

    def __init__(self, report: ValidationReport) -> None:
        super().__init__(report.summary())
        self.report = report


def validate(specification: Specification) -> ValidationReport:
    """Run every structural check and return the full report."""
    report = ValidationReport(specification.name)
    _check_interface(specification, report)
    _check_output_bits(specification, report)
    _check_read_before_write(specification, report)
    _check_operand_widths(specification, report)
    _check_fragment_provenance(specification, report)
    return report


def require_valid(specification: Specification) -> Specification:
    """Validate and raise :class:`ValidationError` on any error.

    A passing validation is remembered on the specification (keyed by its
    structure version), so sweeps that re-run the pipeline over one shared
    workload instance pay for the structural checks once.
    """
    if getattr(specification, "_valid_at_version", None) == specification.version:
        return specification
    report = validate(specification)
    if not report.ok:
        raise ValidationError(report)
    specification._valid_at_version = specification.version
    return specification


# ----------------------------------------------------------------------
# Individual checks
# ----------------------------------------------------------------------
def _check_interface(specification: Specification, report: ValidationReport) -> None:
    if not specification.inputs():
        report.warning("specification has no input ports")
    if not specification.outputs():
        report.error("specification has no output ports")
    if not specification.operations:
        report.error("specification has no operations")


def _check_output_bits(specification: Specification, report: ValidationReport) -> None:
    for missing in specification.undriven_output_bits():
        report.error(
            f"output bit {missing.variable.name}[{missing.bit}] is never written"
        )


def _check_read_before_write(
    specification: Specification, report: ValidationReport
) -> None:
    """Every read of a non-input bit must be preceded by its write."""
    written_position = {}
    for position, operation in enumerate(specification.operations):
        for operand in operation.all_read_operands():
            if not operand.is_variable:
                continue
            variable = operand.variable
            if variable.is_input():
                continue
            for bit in operand.range:
                key = (variable.uid, bit)
                if key not in written_position:
                    report.error(
                        f"operation {operation.name} reads {variable.name}[{bit}] "
                        "before any operation writes it"
                    )
                elif written_position[key] >= position:
                    report.error(
                        f"operation {operation.name} reads {variable.name}[{bit}] "
                        "before its producer in program order"
                    )
        destination = operation.destination
        for bit in destination.range:
            written_position[(destination.variable.uid, bit)] = position


def _check_operand_widths(
    specification: Specification, report: ValidationReport
) -> None:
    for operation in specification.operations:
        widths = [operand.width for operand in operation.operands]
        if operation.kind in (OpKind.ADD, OpKind.SUB):
            if operation.width < max(widths):
                report.warning(
                    f"operation {operation.name} result ({operation.width} bits) "
                    f"narrower than widest operand ({max(widths)} bits); "
                    "high-order bits are truncated"
                )
        elif operation.kind is OpKind.MUL:
            natural = sum(widths)
            if operation.width > natural:
                report.warning(
                    f"multiplication {operation.name} result ({operation.width} bits) "
                    f"wider than the product of its operands ({natural} bits); "
                    "high-order bits are zero"
                )
        elif operation.kind in COMPARISON_KINDS:
            if operation.width != 1:
                report.error(
                    f"comparison {operation.name} must produce a 1-bit result, "
                    f"found {operation.width} bits"
                )
        elif operation.kind is OpKind.SELECT:
            if len(operation.operands) != 3:
                report.error(
                    f"select {operation.name} must have exactly three operands"
                )
            elif operation.operands[0].width != 1:
                report.error(
                    f"select {operation.name} condition must be 1 bit wide"
                )
        if operation.carry_in is not None and operation.kind not in (
            OpKind.ADD,
            OpKind.SUB,
        ):
            report.error(
                f"operation {operation.name} of kind {operation.kind} cannot take a carry-in"
            )


def _check_fragment_provenance(
    specification: Specification, report: ValidationReport
) -> None:
    """Fragments of the same parent operation must carry contiguous indices.

    Fragments are grouped by the ``parent`` attribute the rewriter records
    (the kernel-extracted operation they descend from); ``origin`` alone is
    not a valid group key because one original operation (e.g. a
    multiplication) expands into several kernel additions that are fragmented
    independently.
    """
    by_parent = {}
    for operation in specification.operations:
        if operation.is_fragment:
            key = operation.attributes.get("parent", operation.origin)
            by_parent.setdefault(key, []).append(operation)
    for parent, fragments in by_parent.items():
        fragments = sorted(fragments, key=lambda op: op.fragment_index)
        indices = [fragment.fragment_index for fragment in fragments]
        if indices != list(range(len(fragments))):
            report.error(
                f"fragments of {parent} have non-contiguous indices {indices}"
            )
