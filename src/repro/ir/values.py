"""Storage objects and operand references of the behavioural IR.

A behavioural specification (paper Fig. 1 a / Fig. 2 a) manipulates three
kinds of storage:

* **ports** -- circuit inputs and outputs (``A, B, D, F: in``; ``G: inout``),
* **variables** -- process-local intermediate values (``variable C, E``),
* **constants** -- literal values appearing in expressions.

Operations read *slices* of these (``A(5 downto 0)``) and write slices of the
destination (``C(6 downto 0) := ...``).  :class:`Operand` and
:class:`Destination` capture exactly that: a reference to a storage object
plus a :class:`~repro.ir.types.BitRange`.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional, Union

from .types import BitRange, BitVectorType, IRTypeError


class PortDirection(enum.Enum):
    """Role of a storage object in the specification interface."""

    INPUT = "input"
    OUTPUT = "output"
    INTERNAL = "internal"

    def is_input(self) -> bool:
        return self is PortDirection.INPUT

    def is_output(self) -> bool:
        return self is PortDirection.OUTPUT


_variable_counter = itertools.count()


@dataclass(eq=False)
class Variable:
    """A named bit-vector storage object (port or process variable).

    Identity (not name equality) is used for hashing so two distinct variables
    with the same name in different specifications never alias.
    """

    name: str
    type: BitVectorType
    direction: PortDirection = PortDirection.INTERNAL
    uid: int = field(default_factory=lambda: next(_variable_counter))

    def __post_init__(self) -> None:
        if not self.name:
            raise IRTypeError("variable name must be non-empty")

    @property
    def width(self) -> int:
        return self.type.width

    @property
    def signed(self) -> bool:
        return self.type.signed

    def full_range(self) -> BitRange:
        return self.type.full_range()

    def is_input(self) -> bool:
        return self.direction.is_input()

    def is_output(self) -> bool:
        return self.direction.is_output()

    def __hash__(self) -> int:
        return hash(self.uid)

    def __eq__(self, other: object) -> bool:
        return self is other

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Variable({self.name!r}, {self.type}, {self.direction.value})"

    # Convenience slicing -------------------------------------------------
    def slice(self, hi: int, lo: Optional[int] = None) -> "Operand":
        """Return an operand referencing bits ``hi downto lo`` of the variable."""
        if lo is None:
            lo = hi
        rng = BitRange(lo, hi)
        if not self.full_range().contains_range(rng):
            raise IRTypeError(
                f"slice {rng} out of bounds for {self.width}-bit variable {self.name}"
            )
        return Operand(self, rng)

    def whole(self) -> "Operand":
        """Return an operand referencing all the bits of the variable."""
        return Operand(self, self.full_range())

    def bit(self, index: int) -> "Operand":
        """Return an operand referencing a single bit of the variable."""
        return self.slice(index, index)


@dataclass(frozen=True)
class Constant:
    """A literal value with an explicit width and signedness."""

    value: int
    type: BitVectorType

    def __post_init__(self) -> None:
        if not self.type.contains(self.value):
            raise IRTypeError(
                f"constant {self.value} does not fit in {self.type}"
            )

    @property
    def width(self) -> int:
        return self.type.width

    @property
    def signed(self) -> bool:
        return self.type.signed

    @property
    def bits(self) -> int:
        """The raw unsigned bit pattern of the constant."""
        return self.type.to_unsigned_bits(self.value)

    @staticmethod
    def of(value: int, width: int, signed: bool = False) -> "Constant":
        return Constant(value, BitVectorType(width, signed))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Constant({self.value}, {self.type})"


SourceObject = Union[Variable, Constant]


@dataclass(frozen=True)
class Operand:
    """A read reference: a slice of a variable or constant used as an input.

    ``Operand(C, BitRange(0, 4))`` models the VHDL expression ``C(4 downto 0)``.
    Constants may also be sliced, which is used by the operative kernel
    extraction when decomposing wide constant operands.
    """

    source: SourceObject
    range: BitRange

    def __post_init__(self) -> None:
        full = BitRange.full(self.source.width)
        if not full.contains_range(self.range):
            raise IRTypeError(
                f"operand slice {self.range} exceeds width of {self.source!r}"
            )

    @property
    def width(self) -> int:
        return self.range.width

    @property
    def is_constant(self) -> bool:
        return isinstance(self.source, Constant)

    @property
    def is_variable(self) -> bool:
        return isinstance(self.source, Variable)

    @property
    def variable(self) -> Variable:
        if not isinstance(self.source, Variable):
            raise IRTypeError("operand does not reference a variable")
        return self.source

    @property
    def constant(self) -> Constant:
        if not isinstance(self.source, Constant):
            raise IRTypeError("operand does not reference a constant")
        return self.source

    def covers_whole_source(self) -> bool:
        """True when the operand reads every bit of its source object."""
        return self.range == BitRange.full(self.source.width)

    def subrange(self, rng: BitRange) -> "Operand":
        """Return an operand for the bits *rng* (relative to this operand's LSB)."""
        absolute = rng.shifted(self.range.lo)
        if not self.range.contains_range(absolute):
            raise IRTypeError(
                f"sub-range {rng} exceeds operand of width {self.width}"
            )
        return Operand(self.source, absolute)

    def describe(self) -> str:
        """Human-readable rendering, VHDL-slice style."""
        if isinstance(self.source, Constant):
            return f"{self.source.value}{self.range}"
        if self.covers_whole_source():
            return self.source.name
        return f"{self.source.name}{self.range}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Operand({self.describe()})"


@dataclass(frozen=True)
class Destination:
    """A write reference: the slice of a variable an operation assigns to.

    In the transformed specification of the paper each fragment writes a slice
    of the original result variable (``C(6 downto 0) := ...``); in the original
    specification destinations cover the whole variable.
    """

    variable: Variable
    range: BitRange

    def __post_init__(self) -> None:
        full = self.variable.full_range()
        if not full.contains_range(self.range):
            raise IRTypeError(
                f"destination slice {self.range} exceeds width of "
                f"{self.variable.width}-bit variable {self.variable.name}"
            )

    @property
    def width(self) -> int:
        return self.range.width

    def covers_whole_variable(self) -> bool:
        return self.range == self.variable.full_range()

    def describe(self) -> str:
        if self.covers_whole_variable():
            return self.variable.name
        return f"{self.variable.name}{self.range}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Destination({self.describe()})"


def operand_of(source: SourceObject, rng: Optional[BitRange] = None) -> Operand:
    """Build an :class:`Operand`, defaulting to the full width of *source*."""
    if rng is None:
        rng = BitRange.full(source.width)
    return Operand(source, rng)


def destination_of(variable: Variable, rng: Optional[BitRange] = None) -> Destination:
    """Build a :class:`Destination`, defaulting to the full variable width."""
    if rng is None:
        rng = variable.full_range()
    return Destination(variable, rng)
