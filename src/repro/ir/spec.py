"""The behavioural specification container.

A :class:`Specification` corresponds to the straight-line body of the VHDL
process in the paper's examples (Fig. 1 a, Fig. 2 a): an ordered sequence of
operations over a set of ports and process variables.  The transformed
specification produced by the optimization method is represented with exactly
the same class -- only the operations are narrower and write *slices* of the
original variables.

The class also provides the bit-level definition/use analysis the rest of the
library relies on:

* :meth:`Specification.bit_writer` -- which operation produces a given bit of
  a variable (``None`` for input-port bits),
* :meth:`Specification.bit_readers` -- which operations consume it,
* single-assignment validation at the bit level (each variable bit written at
  most once), which is the structural property the fragmentation phase
  preserves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .operations import Operation
from .types import IRTypeError
from .values import PortDirection, Variable


class SpecificationError(IRTypeError):
    """Raised for structurally invalid specifications."""


@dataclass(frozen=True)
class BitRef:
    """A reference to one bit of a variable."""

    variable: Variable
    bit: int

    def __post_init__(self) -> None:
        if not (0 <= self.bit < self.variable.width):
            raise SpecificationError(
                f"bit {self.bit} out of range for {self.variable.width}-bit "
                f"variable {self.variable.name}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.variable.name}[{self.bit}]"


class BitDef:
    """The producing operation of a variable bit.

    ``result_bit`` is the index of the bit within the operation's result
    (0 = least significant result bit).  One instance is created per written
    bit of every specification, so the class is a bare ``__slots__`` record
    rather than a dataclass.
    """

    __slots__ = ("operation", "result_bit")

    def __init__(self, operation: Operation, result_bit: int) -> None:
        self.operation = operation
        self.result_bit = result_bit

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BitDef({self.operation.name}, {self.result_bit})"


class Specification:
    """An ordered behavioural specification (straight-line dataflow).

    Parameters
    ----------
    name:
        Entity name, used in reports.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise SpecificationError("specification name must be non-empty")
        self.name = name
        self._variables: Dict[str, Variable] = {}
        self._operations: List[Operation] = []
        # Bit-level def-use index, maintained incrementally by add_operation.
        self._bit_defs: Dict[Tuple[int, int], BitDef] = {}
        # Monotonic structure version; bumped on every mutation so the cached
        # graph views below know when they are stale.
        self._version = 0
        self._frozen = False
        self._dataflow_graph = None
        self._dataflow_version = -1
        self._bit_graph = None
        self._bit_graph_version = -1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_variable(self, variable: Variable) -> Variable:
        """Register a port or process variable.  Names must be unique."""
        self._require_mutable()
        if variable.name in self._variables:
            raise SpecificationError(
                f"duplicate variable name {variable.name!r} in specification {self.name}"
            )
        self._variables[variable.name] = variable
        # A fresh variable has no written bits, so the def-use index stays
        # valid; only the cached graph views need to notice the change.
        self._version += 1
        return variable

    def add_operation(self, operation: Operation) -> Operation:
        """Append an operation to the specification body.

        All variables referenced by the operation must already be registered,
        and no bit of the destination slice may have been written before
        (bit-level single assignment).
        """
        self._require_mutable()
        for operand in operation.all_read_operands():
            if operand.is_variable and operand.variable.name not in self._variables:
                raise SpecificationError(
                    f"operation {operation.name} reads unregistered variable "
                    f"{operand.variable.name!r}"
                )
        dest = operation.destination
        if dest.variable.name not in self._variables:
            raise SpecificationError(
                f"operation {operation.name} writes unregistered variable "
                f"{dest.variable.name!r}"
            )
        if dest.variable.is_input():
            raise SpecificationError(
                f"operation {operation.name} writes input port {dest.variable.name!r}"
            )
        for bit in dest.range:
            key = (dest.variable.uid, bit)
            if key in self._bit_defs:
                previous = self._bit_defs[key].operation
                raise SpecificationError(
                    f"bit {bit} of variable {dest.variable.name!r} written by both "
                    f"{previous.name} and {operation.name}"
                )
        self._operations.append(operation)
        for result_bit, bit in enumerate(dest.range):
            self._bit_defs[(dest.variable.uid, bit)] = BitDef(operation, result_bit)
        self._version += 1
        return operation

    # ------------------------------------------------------------------
    # Freezing and cached graph views
    # ------------------------------------------------------------------
    def _require_mutable(self) -> None:
        if self._frozen:
            raise SpecificationError(
                f"specification {self.name} is frozen (it is shared through a "
                "cache); build a fresh instance to create a variant"
            )

    def freeze(self) -> "Specification":
        """Make the specification immutable (mutation raises from now on).

        Memoization layers (e.g. workload resolution) freeze the instances
        they share so an accidental mutation fails loudly instead of silently
        poisoning every later consumer of the cache.
        """
        self._frozen = True
        return self

    @property
    def frozen(self) -> bool:
        return self._frozen

    @property
    def version(self) -> int:
        """Structure version, bumped on every mutation (cache invalidation)."""
        return self._version

    def dataflow_graph(self):
        """The operation-level :class:`~repro.ir.dfg.DataFlowGraph`, cached.

        The graph is rebuilt lazily whenever the specification has been
        mutated since the last call; callers must treat it as read-only (all
        the in-tree consumers do).
        """
        if self._dataflow_graph is None or self._dataflow_version != self._version:
            from .dfg import DataFlowGraph

            self._dataflow_graph = DataFlowGraph(self)
            self._dataflow_version = self._version
        return self._dataflow_graph

    def bit_dependency_graph(self):
        """The bit-level :class:`~repro.ir.dfg.BitDependencyGraph`, cached."""
        if self._bit_graph is None or self._bit_graph_version != self._version:
            from .dfg import BitDependencyGraph

            self._bit_graph = BitDependencyGraph(self)
            self._bit_graph_version = self._version
        return self._bit_graph

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def operations(self) -> Sequence[Operation]:
        return tuple(self._operations)

    @property
    def variables(self) -> Sequence[Variable]:
        return tuple(self._variables.values())

    def variable(self, name: str) -> Variable:
        try:
            return self._variables[name]
        except KeyError:
            raise SpecificationError(
                f"no variable named {name!r} in specification {self.name}"
            ) from None

    def has_variable(self, name: str) -> bool:
        return name in self._variables

    def inputs(self) -> List[Variable]:
        """Input ports, in declaration order."""
        return [v for v in self._variables.values() if v.is_input()]

    def outputs(self) -> List[Variable]:
        """Output ports, in declaration order."""
        return [v for v in self._variables.values() if v.is_output()]

    def internals(self) -> List[Variable]:
        """Process variables that are neither inputs nor outputs."""
        return [
            v
            for v in self._variables.values()
            if v.direction is PortDirection.INTERNAL
        ]

    def operation_named(self, name: str) -> Operation:
        for operation in self._operations:
            if operation.name == name:
                return operation
        raise SpecificationError(
            f"no operation named {name!r} in specification {self.name}"
        )

    def operations_of_origin(self, origin: str) -> List[Operation]:
        """All operations descending from the original operation *origin*."""
        return [op for op in self._operations if op.origin == origin]

    def __len__(self) -> int:
        return len(self._operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._operations)

    # ------------------------------------------------------------------
    # Bit-level definition / use analysis
    # ------------------------------------------------------------------
    def bit_writer(self, variable: Variable, bit: int) -> Optional[BitDef]:
        """Return the :class:`BitDef` producing ``variable[bit]``.

        ``None`` means the bit is a primary input of the specification (an
        input-port bit, or an undriven bit that validation will flag).

        This is the innermost lookup of every graph build and allocation
        analysis (tens of thousands of calls per synthesis run), so the
        def-use index is maintained incrementally by :meth:`add_operation`
        and the bounds check is inlined rather than routed through a
        :class:`BitRef` construction.
        """
        if bit < 0 or bit >= variable.width:
            raise SpecificationError(
                f"bit {bit} out of range for {variable.width}-bit "
                f"variable {variable.name}"
            )
        return self._bit_defs.get((variable.uid, bit))

    @property
    def bit_def_map(self) -> Dict[Tuple[int, int], BitDef]:
        """The raw ``(variable uid, bit) -> BitDef`` def-use index.

        Read-only view for the graph builders and allocation resolvers, whose
        inner loops perform tens of thousands of lookups and have already
        bounds-checked their bit indices; everyone else should go through
        :meth:`bit_writer`.
        """
        return self._bit_defs

    def bit_readers(self, variable: Variable, bit: int) -> List[Tuple[Operation, int]]:
        """Operations reading ``variable[bit]``, with the operand bit position.

        The returned position is the bit index *within the reading operand*
        (position 0 = the operand's least significant bit), which for additive
        operations is also the result-bit position the read feeds.
        """
        BitRef(variable, bit)
        readers: List[Tuple[Operation, int]] = []
        for operation in self._operations:
            for operand in operation.all_read_operands():
                if not operand.is_variable or operand.variable is not variable:
                    continue
                if bit in operand.range:
                    readers.append((operation, bit - operand.range.lo))
        return readers

    def written_bits(self, variable: Variable) -> List[int]:
        """Bit positions of *variable* written by some operation."""
        return sorted(
            bit
            for (uid, bit) in self._bit_defs
            if uid == variable.uid
        )

    def undriven_output_bits(self) -> List[BitRef]:
        """Output-port bits never written by any operation."""
        missing: List[BitRef] = []
        for variable in self.outputs():
            for bit in range(variable.width):
                if (variable.uid, bit) not in self._bit_defs:
                    missing.append(BitRef(variable, bit))
        return missing

    # ------------------------------------------------------------------
    # Aggregate statistics used by the experiments
    # ------------------------------------------------------------------
    def operation_count(self) -> int:
        return len(self._operations)

    def additive_operation_count(self) -> int:
        return sum(1 for op in self._operations if op.is_additive)

    def total_additive_bits(self) -> int:
        """Total result bits of additive operations (a crude size measure)."""
        return sum(op.width for op in self._operations if op.is_additive)

    def describe(self) -> str:
        """Multi-line readable rendering of the whole specification."""
        lines = [f"specification {self.name}"]
        for variable in self._variables.values():
            lines.append(
                f"  {variable.direction.value:8s} {variable.name}: {variable.type}"
            )
        for operation in self._operations:
            lines.append(f"  {operation.describe()}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Specification({self.name!r}, {len(self._variables)} variables, "
            f"{len(self._operations)} operations)"
        )
