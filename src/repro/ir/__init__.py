"""Behavioural intermediate representation (IR).

The IR layer models everything the DATE'05 transformation needs from a
behavioural specification: bit-vector types, ports and variables, sliced
operands and destinations, operations with optional carry-in, the ordered
specification body, and the operation- and bit-level dataflow graphs.
"""

from .builder import BuildError, SpecBuilder
from .dfg import BitDependencyGraph, BitNode, DataEdge, DataFlowGraph
from .operations import (
    ADDITIVE_KINDS,
    COMMUTATIVE_KINDS,
    COMPARISON_KINDS,
    GLUE_KINDS,
    Operation,
    OpKind,
    is_additive,
    is_comparison,
    is_glue,
    make_binary,
    make_unary,
)
from .parser import ParseError, parse_specification
from .spec import BitDef, BitRef, Specification, SpecificationError
from .types import (
    BitRange,
    BitVectorType,
    IRTypeError,
    bits_of,
    extract_bits,
    from_bits,
    insert_bits,
    sign_extend,
    signed,
    unsigned,
    zero_extend,
)
from .validate import (
    ValidationError,
    ValidationIssue,
    ValidationReport,
    require_valid,
    validate,
)
from .values import (
    Constant,
    Destination,
    Operand,
    PortDirection,
    Variable,
    destination_of,
    operand_of,
)

__all__ = [
    "ADDITIVE_KINDS",
    "BitDef",
    "BitDependencyGraph",
    "BitNode",
    "BitRange",
    "BitRef",
    "BitVectorType",
    "BuildError",
    "COMMUTATIVE_KINDS",
    "COMPARISON_KINDS",
    "Constant",
    "DataEdge",
    "DataFlowGraph",
    "Destination",
    "GLUE_KINDS",
    "IRTypeError",
    "Operand",
    "Operation",
    "OpKind",
    "ParseError",
    "PortDirection",
    "SpecBuilder",
    "Specification",
    "SpecificationError",
    "ValidationError",
    "ValidationIssue",
    "ValidationReport",
    "Variable",
    "bits_of",
    "destination_of",
    "extract_bits",
    "from_bits",
    "insert_bits",
    "is_additive",
    "is_comparison",
    "is_glue",
    "make_binary",
    "make_unary",
    "operand_of",
    "parse_specification",
    "require_valid",
    "sign_extend",
    "signed",
    "unsigned",
    "validate",
    "zero_extend",
]
