"""Bit-vector types and bit-range arithmetic used across the behavioural IR.

The paper operates on fixed-width bit-vector operands (``std_logic_vector`` in
the VHDL specifications).  This module provides the small value-type layer the
rest of the library builds on:

* :class:`BitVectorType` -- a width plus signedness.
* :class:`BitRange` -- an inclusive ``[lo, hi]`` bit range (LSB = bit 0),
  mirroring VHDL's ``hi downto lo`` slices used throughout the transformed
  specifications of the paper (e.g. ``C(6 downto 0)``).

Both are immutable, hashable value objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional


class IRTypeError(ValueError):
    """Raised when widths, ranges or signedness are inconsistent."""


@dataclass(frozen=True, order=True)
class BitRange:
    """An inclusive bit range ``[lo, hi]`` with bit 0 the least significant bit.

    The paper's fragmentation phase splits operations into contiguous groups of
    bits; a :class:`BitRange` is the canonical representation of such a group.
    ``BitRange(0, 5)`` corresponds to VHDL ``(5 downto 0)``.
    """

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo < 0:
            raise IRTypeError(f"bit range low bound must be >= 0, got {self.lo}")
        if self.hi < self.lo:
            raise IRTypeError(
                f"bit range high bound {self.hi} below low bound {self.lo}"
            )

    @property
    def width(self) -> int:
        """Number of bits covered by the range."""
        return self.hi - self.lo + 1

    def __len__(self) -> int:
        return self.width

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.lo, self.hi + 1))

    def __contains__(self, bit: int) -> bool:
        return self.lo <= bit <= self.hi

    def overlaps(self, other: "BitRange") -> bool:
        """Return True when the two ranges share at least one bit position."""
        return not (self.hi < other.lo or other.hi < self.lo)

    def contains_range(self, other: "BitRange") -> bool:
        """Return True when *other* is fully inside this range."""
        return self.lo <= other.lo and other.hi <= self.hi

    def intersection(self, other: "BitRange") -> Optional["BitRange"]:
        """Return the overlapping sub-range, or ``None`` if disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return BitRange(lo, hi)

    def shifted(self, amount: int) -> "BitRange":
        """Return the range translated by *amount* bit positions."""
        return BitRange(self.lo + amount, self.hi + amount)

    def adjacent_above(self, other: "BitRange") -> bool:
        """Return True when this range starts exactly one bit above *other*."""
        return self.lo == other.hi + 1

    @staticmethod
    def full(width: int) -> "BitRange":
        """Range covering all bits of a *width*-bit vector."""
        if width <= 0:
            raise IRTypeError(f"width must be positive, got {width}")
        return BitRange(0, width - 1)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.lo == self.hi:
            return f"({self.lo})"
        return f"({self.hi} downto {self.lo})"


@dataclass(frozen=True)
class BitVectorType:
    """A fixed-width bit-vector type with signedness.

    ``signed`` follows two's-complement interpretation.  The operative kernel
    extraction phase of the paper rewrites signed operations into unsigned
    ones, so after phase 1 every operation in the specification carries an
    unsigned :class:`BitVectorType`.
    """

    width: int
    signed: bool = False

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise IRTypeError(f"bit-vector width must be positive, got {self.width}")

    @property
    def min_value(self) -> int:
        """Smallest representable integer."""
        if self.signed:
            return -(1 << (self.width - 1))
        return 0

    @property
    def max_value(self) -> int:
        """Largest representable integer."""
        if self.signed:
            return (1 << (self.width - 1)) - 1
        return (1 << self.width) - 1

    @property
    def mask(self) -> int:
        """Bit mask covering the full width."""
        return (1 << self.width) - 1

    def full_range(self) -> BitRange:
        """The :class:`BitRange` spanning every bit of this type."""
        return BitRange.full(self.width)

    def contains(self, value: int) -> bool:
        """Return True when *value* is representable without wrapping."""
        return self.min_value <= value <= self.max_value

    def wrap(self, value: int) -> int:
        """Wrap an arbitrary integer into this type (two's complement for signed)."""
        value &= self.mask
        if self.signed and value > self.max_value:
            value -= 1 << self.width
        return value

    def to_unsigned_bits(self, value: int) -> int:
        """Return the raw bit pattern of *value* as a non-negative integer."""
        if not self.contains(value):
            raise IRTypeError(
                f"value {value} not representable in {self}"
            )
        return value & self.mask

    def from_unsigned_bits(self, bits: int) -> int:
        """Interpret a raw bit pattern according to the type's signedness."""
        bits &= self.mask
        if self.signed and bits > self.max_value:
            return bits - (1 << self.width)
        return bits

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        prefix = "signed" if self.signed else "unsigned"
        return f"{prefix}[{self.width}]"


def unsigned(width: int) -> BitVectorType:
    """Shorthand constructor for an unsigned bit-vector type."""
    return BitVectorType(width, signed=False)


def signed(width: int) -> BitVectorType:
    """Shorthand constructor for a signed (two's complement) bit-vector type."""
    return BitVectorType(width, signed=True)


def bits_of(value: int, width: int) -> list:
    """Return the *width* least significant bits of *value*, LSB first."""
    if width <= 0:
        raise IRTypeError(f"width must be positive, got {width}")
    return [(value >> i) & 1 for i in range(width)]


def from_bits(bits) -> int:
    """Assemble an unsigned integer from a LSB-first bit list."""
    value = 0
    for i, bit in enumerate(bits):
        if bit not in (0, 1):
            raise IRTypeError(f"bit value must be 0 or 1, got {bit!r}")
        value |= bit << i
    return value


def sign_extend(value: int, from_width: int, to_width: int) -> int:
    """Sign-extend the *from_width*-bit pattern *value* to *to_width* bits."""
    if to_width < from_width:
        raise IRTypeError(
            f"cannot sign-extend from {from_width} to narrower width {to_width}"
        )
    value &= (1 << from_width) - 1
    sign_bit = (value >> (from_width - 1)) & 1
    if sign_bit:
        extension = ((1 << (to_width - from_width)) - 1) << from_width
        value |= extension
    return value


def zero_extend(value: int, from_width: int, to_width: int) -> int:
    """Zero-extend the *from_width*-bit pattern *value* to *to_width* bits."""
    if to_width < from_width:
        raise IRTypeError(
            f"cannot zero-extend from {from_width} to narrower width {to_width}"
        )
    return value & ((1 << from_width) - 1)


def extract_bits(value: int, bit_range: BitRange) -> int:
    """Extract the bits covered by *bit_range* from an unsigned pattern."""
    return (value >> bit_range.lo) & ((1 << bit_range.width) - 1)


def insert_bits(target: int, bit_range: BitRange, value: int) -> int:
    """Return *target* with the bits of *bit_range* replaced by *value*."""
    mask = ((1 << bit_range.width) - 1) << bit_range.lo
    return (target & ~mask) | ((value << bit_range.lo) & mask)
