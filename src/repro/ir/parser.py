"""A small textual behavioural specification language.

The paper writes its specifications in VHDL processes; for the reproduction a
compact textual language keeps examples and tests readable while still
exercising the full IR (ports, internal variables, slices, carries).  Grammar
(one statement per line, ``#`` starts a comment)::

    spec <name>
    input  <name>[, <name>...] : [signed|unsigned] <width>
    output <name>[, <name>...] : [signed|unsigned] <width>
    var    <name>[, <name>...] : [signed|unsigned] <width>
    <dest> = <expr>

    <dest>  ::= <name> | <name>[hi:lo]
    <expr>  ::= <term> (('+'|'-') <term>)*
    <term>  ::= <factor> (('*') <factor>)*
    <factor>::= <atom> | max(<expr>, <expr>) | min(<expr>, <expr>)
              | <atom> <cmp> <atom>
    <atom>  ::= <name> | <name>[hi:lo] | <integer> | (<expr>)
              | <atom> << <integer> | <atom> >> <integer>

Every assignment statement produces one or more IR operations through the
:class:`~repro.ir.builder.SpecBuilder`; compound right-hand sides introduce
temporary variables, mirroring what a behavioural front end would do.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .builder import SpecBuilder
from .operations import OpKind
from .spec import Specification
from .types import BitRange, IRTypeError
from .values import Destination, Operand, Variable


class ParseError(IRTypeError):
    """Raised on malformed specification text."""

    def __init__(self, message: str, line_number: Optional[int] = None) -> None:
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


_TOKEN_PATTERN = re.compile(
    r"\s*(?:"
    r"(?P<number>\d+)"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op><<|>>|<=|>=|==|!=|[-+*<>=(),:\[\]])"
    r")"
)

_CMP_KINDS = {
    "<": OpKind.LT,
    "<=": OpKind.LE,
    ">": OpKind.GT,
    ">=": OpKind.GE,
    "==": OpKind.EQ,
    "!=": OpKind.NE,
}


@dataclass
class _Token:
    kind: str  # "number" | "name" | "op" | "end"
    text: str


def _tokenize(text: str, line_number: int) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            remaining = text[position:].strip()
            if not remaining:
                break
            raise ParseError(f"unexpected character near {remaining[:10]!r}", line_number)
        position = match.end()
        if match.lastgroup == "number":
            tokens.append(_Token("number", match.group("number")))
        elif match.lastgroup == "name":
            tokens.append(_Token("name", match.group("name")))
        else:
            tokens.append(_Token("op", match.group("op")))
    tokens.append(_Token("end", ""))
    return tokens


class _ExpressionParser:
    """Recursive-descent parser for the right-hand side of assignments."""

    def __init__(self, tokens: List[_Token], builder: SpecBuilder, line: int) -> None:
        self._tokens = tokens
        self._index = 0
        self._builder = builder
        self._line = line

    # Token helpers -----------------------------------------------------
    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, text: str) -> _Token:
        token = self._advance()
        if token.text != text:
            raise ParseError(f"expected {text!r}, found {token.text!r}", self._line)
        return token

    def at_end(self) -> bool:
        return self._peek().kind == "end"

    # Grammar -----------------------------------------------------------
    def parse_expression(self) -> Operand:
        left = self.parse_additive()
        if self._peek().text in _CMP_KINDS:
            comparator = self._advance().text
            right = self.parse_additive()
            result = self._builder.binary(_CMP_KINDS[comparator], left, right)
            return result.whole()
        return left

    def parse_additive(self) -> Operand:
        left = self.parse_term()
        while self._peek().text in ("+", "-"):
            operator = self._advance().text
            right = self.parse_term()
            kind = OpKind.ADD if operator == "+" else OpKind.SUB
            left = self._builder.binary(kind, left, right).whole()
        return left

    def parse_term(self) -> Operand:
        left = self.parse_shift()
        while self._peek().text == "*":
            self._advance()
            right = self.parse_shift()
            left = self._builder.mul(left, right).whole()
        return left

    def parse_shift(self) -> Operand:
        operand = self.parse_atom()
        while self._peek().text in ("<<", ">>"):
            operator = self._advance().text
            amount_token = self._advance()
            if amount_token.kind != "number":
                raise ParseError("shift amount must be an integer literal", self._line)
            amount = int(amount_token.text)
            if operator == "<<":
                operand = self._builder.shl(operand, amount).whole()
            else:
                operand = self._builder.shr(operand, amount).whole()
        return operand

    def parse_atom(self) -> Operand:
        token = self._advance()
        if token.text == "(":
            inner = self.parse_expression()
            self._expect(")")
            return inner
        if token.kind == "number":
            value = int(token.text)
            width = max(1, value.bit_length())
            return self._builder.as_operand(self._builder.constant(value, width))
        if token.kind == "name":
            name = token.text
            if name in ("max", "min"):
                self._expect("(")
                left = self.parse_expression()
                self._expect(",")
                right = self.parse_expression()
                self._expect(")")
                kind = OpKind.MAX if name == "max" else OpKind.MIN
                return self._builder.binary(kind, left, right).whole()
            variable = self._lookup(name)
            if self._peek().text == "[":
                hi, lo = self._parse_slice()
                return variable.slice(hi, lo)
            return variable.whole()
        raise ParseError(f"unexpected token {token.text!r}", self._line)

    def _parse_slice(self) -> Tuple[int, int]:
        self._expect("[")
        hi_token = self._advance()
        if hi_token.kind != "number":
            raise ParseError("slice bounds must be integer literals", self._line)
        hi = int(hi_token.text)
        lo = hi
        if self._peek().text == ":":
            self._advance()
            lo_token = self._advance()
            if lo_token.kind != "number":
                raise ParseError("slice bounds must be integer literals", self._line)
            lo = int(lo_token.text)
        self._expect("]")
        if lo > hi:
            raise ParseError(f"slice [{hi}:{lo}] has low bound above high bound", self._line)
        return hi, lo

    def _lookup(self, name: str) -> Variable:
        spec = self._builder.specification
        if not spec.has_variable(name):
            raise ParseError(f"reference to undeclared variable {name!r}", self._line)
        return spec.variable(name)


_DECL_PATTERN = re.compile(
    r"^(?P<kind>input|output|var)\s+(?P<names>[A-Za-z_0-9,\s]+?)\s*:\s*"
    r"(?P<sign>signed|unsigned)?\s*(?P<width>\d+)\s*$"
)
_SPEC_PATTERN = re.compile(r"^spec\s+(?P<name>[A-Za-z_][A-Za-z_0-9]*)\s*$")
_ASSIGN_PATTERN = re.compile(
    r"^(?P<dest>[A-Za-z_][A-Za-z_0-9]*(\s*\[\s*\d+(\s*:\s*\d+)?\s*\])?)\s*=\s*(?P<expr>.+)$"
)
_DEST_SLICE_PATTERN = re.compile(
    r"^(?P<name>[A-Za-z_][A-Za-z_0-9]*)\s*(\[\s*(?P<hi>\d+)(\s*:\s*(?P<lo>\d+))?\s*\])?$"
)


def parse_specification(text: str) -> Specification:
    """Parse the textual language into a :class:`Specification`."""
    builder: Optional[SpecBuilder] = None
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        spec_match = _SPEC_PATTERN.match(line)
        if spec_match:
            if builder is not None:
                raise ParseError("duplicate 'spec' header", line_number)
            builder = SpecBuilder(spec_match.group("name"))
            continue
        if builder is None:
            raise ParseError("specification must start with a 'spec <name>' line", line_number)
        decl_match = _DECL_PATTERN.match(line)
        if decl_match:
            _handle_declaration(builder, decl_match, line_number)
            continue
        assign_match = _ASSIGN_PATTERN.match(line)
        if assign_match:
            _handle_assignment(builder, assign_match, line_number)
            continue
        raise ParseError(f"cannot parse statement {line!r}", line_number)
    if builder is None:
        raise ParseError("empty specification text")
    return builder.build()


def _handle_declaration(builder: SpecBuilder, match: "re.Match", line_number: int) -> None:
    kind = match.group("kind")
    width = int(match.group("width"))
    signed = match.group("sign") == "signed"
    names = [name.strip() for name in match.group("names").split(",") if name.strip()]
    if not names:
        raise ParseError("declaration lists no names", line_number)
    for name in names:
        if kind == "input":
            builder.input(name, width, signed)
        elif kind == "output":
            builder.output(name, width, signed)
        else:
            builder.variable(name, width, signed)


def _handle_assignment(builder: SpecBuilder, match: "re.Match", line_number: int) -> None:
    dest_text = match.group("dest").strip()
    expr_text = match.group("expr").strip()
    dest_match = _DEST_SLICE_PATTERN.match(dest_text)
    if dest_match is None:
        raise ParseError(f"cannot parse assignment target {dest_text!r}", line_number)
    dest_name = dest_match.group("name")
    spec = builder.specification
    if not spec.has_variable(dest_name):
        raise ParseError(
            f"assignment to undeclared variable {dest_name!r}", line_number
        )
    variable = spec.variable(dest_name)
    if dest_match.group("hi") is not None:
        hi = int(dest_match.group("hi"))
        lo = int(dest_match.group("lo")) if dest_match.group("lo") is not None else hi
        destination = Destination(variable, BitRange(lo, hi))
    else:
        destination = Destination(variable, variable.full_range())

    tokens = _tokenize(expr_text, line_number)
    parser = _ExpressionParser(tokens, builder, line_number)
    result = parser.parse_expression()
    if not parser.at_end():
        raise ParseError(
            f"trailing input after expression: {parser._peek().text!r}", line_number
        )
    _assign_result(builder, result, destination, line_number)


def _assign_result(
    builder: SpecBuilder,
    result: Operand,
    destination: Destination,
    line_number: int,
) -> None:
    """Retarget the expression result onto the declared destination.

    When the expression result is the whole value of a freshly created
    temporary produced by exactly the last emitted operation, the operation is
    retargeted in place (avoiding a gratuitous MOVE); otherwise an explicit
    MOVE (glue logic) copies the value.
    """
    spec = builder.specification
    operations = spec.operations
    if (
        result.is_variable
        and operations
        and operations[-1].destination.variable is result.variable
        and result.covers_whole_source()
        and operations[-1].destination.covers_whole_variable()
        and result.variable.name.startswith("t_")
        and result.width == destination.width
    ):
        # Rebuild the last operation with the new destination.  The
        # Specification API is append-only, so we reconstruct the body.
        last = operations[-1]
        rebuilt = Specification(spec.name)
        for variable in spec.variables:
            if variable is not last.destination.variable:
                rebuilt.add_variable(variable)
        from .operations import Operation as _Operation

        for operation in operations[:-1]:
            rebuilt.add_operation(operation)
        retargeted = _Operation(
            kind=last.kind,
            operands=last.operands,
            destination=destination,
            carry_in=last.carry_in,
            name=last.name,
            origin=last.origin,
            fragment_index=last.fragment_index,
            attributes=dict(last.attributes),
        )
        rebuilt.add_operation(retargeted)
        builder._spec = rebuilt
        return
    width = destination.width
    source = result
    if result.width > width:
        source = result.subrange(BitRange(0, width - 1))
    # Narrower expressions are zero-extended by the MOVE (upper bits read 0),
    # matching the behavioural semantics of assigning a short value to a wider
    # signal.
    builder.unary(OpKind.MOVE, source, dest=destination, width=width)
