"""A fluent builder for behavioural specifications.

The builder hides the plumbing of :class:`~repro.ir.spec.Specification`
construction -- creating result variables, picking result widths per operation
kind, wrapping raw integers into constants -- so that benchmark descriptions
(see :mod:`repro.workloads`) read close to the original dataflow equations.

Example
-------
The motivational example of the paper (Fig. 1 a)::

    builder = SpecBuilder("example")
    a = builder.input("A", 16)
    b = builder.input("B", 16)
    d = builder.input("D", 16)
    f = builder.input("F", 16)
    g = builder.output("G", 16)
    c = builder.add(a, b, name="C")
    e = builder.add(c, d, name="E")
    builder.add(e, f, dest=g, name="G_add")
    spec = builder.build()
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from .operations import (
    COMPARISON_KINDS,
    Operation,
    OpKind,
    make_binary,
    make_unary,
)
from .spec import Specification
from .types import BitRange, BitVectorType, IRTypeError
from .values import (
    Constant,
    Destination,
    Operand,
    PortDirection,
    Variable,
    operand_of,
)

SourceLike = Union[Variable, Constant, Operand, int]


class BuildError(IRTypeError):
    """Raised when the builder is asked to construct something inconsistent."""


class SpecBuilder:
    """Incrementally build a :class:`~repro.ir.spec.Specification`."""

    def __init__(self, name: str) -> None:
        self._spec = Specification(name)
        self._temp_counter = 0

    # ------------------------------------------------------------------
    # Ports and variables
    # ------------------------------------------------------------------
    def input(self, name: str, width: int, signed: bool = False) -> Variable:
        """Declare an input port."""
        return self._spec.add_variable(
            Variable(name, BitVectorType(width, signed), PortDirection.INPUT)
        )

    def output(self, name: str, width: int, signed: bool = False) -> Variable:
        """Declare an output port."""
        return self._spec.add_variable(
            Variable(name, BitVectorType(width, signed), PortDirection.OUTPUT)
        )

    def variable(self, name: str, width: int, signed: bool = False) -> Variable:
        """Declare an internal process variable."""
        return self._spec.add_variable(
            Variable(name, BitVectorType(width, signed), PortDirection.INTERNAL)
        )

    def constant(self, value: int, width: int, signed: Optional[bool] = None) -> Constant:
        """Create a literal constant of an explicit width."""
        if signed is None:
            signed = value < 0
        return Constant(value, BitVectorType(width, signed))

    def _fresh_name(self, prefix: str) -> str:
        while True:
            self._temp_counter += 1
            candidate = f"{prefix}{self._temp_counter}"
            if not self._spec.has_variable(candidate):
                return candidate

    # ------------------------------------------------------------------
    # Operand coercion
    # ------------------------------------------------------------------
    def as_operand(self, source: SourceLike, width_hint: Optional[int] = None) -> Operand:
        """Coerce a variable, constant, operand or raw integer into an operand."""
        if isinstance(source, Operand):
            return source
        if isinstance(source, Variable):
            return source.whole()
        if isinstance(source, Constant):
            return operand_of(source)
        if isinstance(source, int):
            if width_hint is None:
                width_hint = max(1, abs(source).bit_length() + (1 if source < 0 else 0))
            return operand_of(self.constant(source, width_hint))
        raise BuildError(f"cannot interpret {source!r} as an operand")

    # ------------------------------------------------------------------
    # Result-width rules
    # ------------------------------------------------------------------
    @staticmethod
    def result_width(kind: OpKind, left_width: int, right_width: Optional[int]) -> int:
        """Natural result width for an operation kind.

        Additions and subtractions keep the width of the widest operand (the
        carry out, when needed, is modelled explicitly by the transformation),
        multiplications produce the sum of the operand widths, comparisons a
        single bit, and everything else the widest operand width.
        """
        right = right_width if right_width is not None else 0
        if kind is OpKind.MUL:
            return left_width + right
        if kind in COMPARISON_KINDS:
            return 1
        return max(left_width, right)

    # ------------------------------------------------------------------
    # Operation emission
    # ------------------------------------------------------------------
    def _destination(
        self,
        dest: Optional[Union[Variable, Destination]],
        width: int,
        name_hint: str,
        signed: bool,
    ) -> Destination:
        if dest is None:
            variable = self.variable(self._fresh_name(f"t_{name_hint}_"), width, signed)
            return Destination(variable, variable.full_range())
        if isinstance(dest, Destination):
            if dest.width != width:
                raise BuildError(
                    f"destination {dest.describe()} is {dest.width} bits, "
                    f"operation result is {width} bits"
                )
            return dest
        if isinstance(dest, Variable):
            if dest.width < width:
                raise BuildError(
                    f"destination variable {dest.name} ({dest.width} bits) narrower "
                    f"than result ({width} bits)"
                )
            return Destination(dest, BitRange(0, width - 1)) if dest.width != width \
                else Destination(dest, dest.full_range())
        raise BuildError(f"cannot interpret {dest!r} as a destination")

    def binary(
        self,
        kind: OpKind,
        left: SourceLike,
        right: SourceLike,
        *,
        dest: Optional[Union[Variable, Destination]] = None,
        name: Optional[str] = None,
        width: Optional[int] = None,
        carry_in: Optional[SourceLike] = None,
        signed_result: bool = False,
        attributes: Optional[Dict[str, object]] = None,
    ) -> Variable:
        """Emit a binary operation; return the variable holding its result."""
        left_op = self.as_operand(left)
        right_op = self.as_operand(right, width_hint=left_op.width)
        if width is None:
            width = self.result_width(kind, left_op.width, right_op.width)
        carry = self.as_operand(carry_in) if carry_in is not None else None
        hint = name or kind.value
        destination = self._destination(dest, width, hint, signed_result)
        operation = make_binary(
            kind,
            left_op,
            right_op,
            destination,
            name=name,
            carry_in=carry,
            attributes=attributes,
        )
        self._spec.add_operation(operation)
        return destination.variable

    def unary(
        self,
        kind: OpKind,
        source: SourceLike,
        *,
        dest: Optional[Union[Variable, Destination]] = None,
        name: Optional[str] = None,
        width: Optional[int] = None,
        attributes: Optional[Dict[str, object]] = None,
    ) -> Variable:
        """Emit a unary operation; return the variable holding its result."""
        operand = self.as_operand(source)
        if width is None:
            width = operand.width
        hint = name or kind.value
        destination = self._destination(dest, width, hint, False)
        operation = make_unary(
            kind, operand, destination, name=name, attributes=attributes
        )
        self._spec.add_operation(operation)
        return destination.variable

    # Convenience wrappers -------------------------------------------------
    def add(self, left: SourceLike, right: SourceLike, **kwargs) -> Variable:
        return self.binary(OpKind.ADD, left, right, **kwargs)

    def sub(self, left: SourceLike, right: SourceLike, **kwargs) -> Variable:
        return self.binary(OpKind.SUB, left, right, **kwargs)

    def mul(self, left: SourceLike, right: SourceLike, **kwargs) -> Variable:
        return self.binary(OpKind.MUL, left, right, **kwargs)

    def lt(self, left: SourceLike, right: SourceLike, **kwargs) -> Variable:
        return self.binary(OpKind.LT, left, right, **kwargs)

    def le(self, left: SourceLike, right: SourceLike, **kwargs) -> Variable:
        return self.binary(OpKind.LE, left, right, **kwargs)

    def gt(self, left: SourceLike, right: SourceLike, **kwargs) -> Variable:
        return self.binary(OpKind.GT, left, right, **kwargs)

    def ge(self, left: SourceLike, right: SourceLike, **kwargs) -> Variable:
        return self.binary(OpKind.GE, left, right, **kwargs)

    def eq(self, left: SourceLike, right: SourceLike, **kwargs) -> Variable:
        return self.binary(OpKind.EQ, left, right, **kwargs)

    def ne(self, left: SourceLike, right: SourceLike, **kwargs) -> Variable:
        return self.binary(OpKind.NE, left, right, **kwargs)

    def max(self, left: SourceLike, right: SourceLike, **kwargs) -> Variable:
        return self.binary(OpKind.MAX, left, right, **kwargs)

    def min(self, left: SourceLike, right: SourceLike, **kwargs) -> Variable:
        return self.binary(OpKind.MIN, left, right, **kwargs)

    def bit_and(self, left: SourceLike, right: SourceLike, **kwargs) -> Variable:
        return self.binary(OpKind.AND, left, right, **kwargs)

    def bit_or(self, left: SourceLike, right: SourceLike, **kwargs) -> Variable:
        return self.binary(OpKind.OR, left, right, **kwargs)

    def bit_xor(self, left: SourceLike, right: SourceLike, **kwargs) -> Variable:
        return self.binary(OpKind.XOR, left, right, **kwargs)

    def bit_not(self, source: SourceLike, **kwargs) -> Variable:
        return self.unary(OpKind.NOT, source, **kwargs)

    def neg(self, source: SourceLike, **kwargs) -> Variable:
        return self.unary(OpKind.NEG, source, **kwargs)

    def move(self, source: SourceLike, **kwargs) -> Variable:
        """Copy a value (zero-delay glue; used to retarget results to ports)."""
        return self.unary(OpKind.MOVE, source, **kwargs)

    def shl(self, source: SourceLike, amount: int, **kwargs) -> Variable:
        """Shift left by a constant amount (glue logic, zero delay)."""
        kwargs.setdefault("attributes", {})["shift"] = amount
        operand = self.as_operand(source)
        kwargs.setdefault("width", operand.width + amount)
        return self.unary(OpKind.SHL, operand, **kwargs)

    def shr(self, source: SourceLike, amount: int, **kwargs) -> Variable:
        """Shift right by a constant amount (glue logic, zero delay)."""
        kwargs.setdefault("attributes", {})["shift"] = amount
        operand = self.as_operand(source)
        kwargs.setdefault("width", max(1, operand.width - amount))
        return self.unary(OpKind.SHR, operand, **kwargs)

    def select(
        self,
        condition: SourceLike,
        if_true: SourceLike,
        if_false: SourceLike,
        **kwargs,
    ) -> Variable:
        """Two-way multiplexer controlled by a 1-bit condition (glue logic)."""
        cond = self.as_operand(condition)
        if cond.width != 1:
            raise BuildError(
                f"select condition must be 1 bit wide, got {cond.width}"
            )
        true_op = self.as_operand(if_true)
        false_op = self.as_operand(if_false, width_hint=true_op.width)
        width = kwargs.pop("width", max(true_op.width, false_op.width))
        name = kwargs.pop("name", None)
        dest = kwargs.pop("dest", None)
        destination = self._destination(dest, width, name or "select", False)
        operation = Operation(
            kind=OpKind.SELECT,
            operands=(cond, true_op, false_op),
            destination=destination,
            name=name,
        )
        self._spec.add_operation(operation)
        return destination.variable

    # ------------------------------------------------------------------
    def raw_operation(self, operation: Operation) -> Operation:
        """Append a pre-built operation (escape hatch for the transformer)."""
        return self._spec.add_operation(operation)

    def build(self) -> Specification:
        """Return the completed specification."""
        return self._spec

    @property
    def specification(self) -> Specification:
        return self._spec
