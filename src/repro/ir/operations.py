"""Operation kinds and operation nodes of the behavioural IR.

The paper's optimization targets *additive* operations -- operations whose
operative kernel can be expressed as one or more binary additions: additions,
subtractions, comparisons, maximum/minimum and multiplications (whose partial
product accumulation is additive).  Non-additive operations (bitwise logic,
shifts by constants, concatenations) are treated as *glue logic* with
negligible delay, exactly as in the paper's critical path estimation
("non-additive operations are not considered").

An :class:`Operation` reads a list of :class:`~repro.ir.values.Operand`
slices, optionally a 1-bit carry-in operand (used by fragments to chain the
carry produced by the previous fragment of the same original operation), and
writes a :class:`~repro.ir.values.Destination` slice.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .types import IRTypeError
from .values import Destination, Operand


class OpKind(enum.Enum):
    """The behavioural operation repertoire supported by the library."""

    # Additive kernel operations -----------------------------------------
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    EQ = "eq"
    NE = "ne"
    MAX = "max"
    MIN = "min"
    NEG = "neg"
    ABS = "abs"
    # Glue logic / non-additive operations --------------------------------
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    SHR = "shr"
    CONCAT = "concat"
    SELECT = "select"
    MOVE = "move"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Operations whose operative kernel is one or more additions.  Phase 1 of the
#: transformation rewrites every member of this set (except plain ADD) into
#: additions plus glue logic.
ADDITIVE_KINDS = frozenset(
    {
        OpKind.ADD,
        OpKind.SUB,
        OpKind.MUL,
        OpKind.LT,
        OpKind.LE,
        OpKind.GT,
        OpKind.GE,
        OpKind.EQ,
        OpKind.NE,
        OpKind.MAX,
        OpKind.MIN,
        OpKind.NEG,
        OpKind.ABS,
    }
)

#: Operations treated as zero-delay glue logic by the timing model.
GLUE_KINDS = frozenset(
    {
        OpKind.AND,
        OpKind.OR,
        OpKind.XOR,
        OpKind.NOT,
        OpKind.SHL,
        OpKind.SHR,
        OpKind.CONCAT,
        OpKind.SELECT,
        OpKind.MOVE,
    }
)

#: Commutative binary operations (used by binding to canonicalise operand order).
COMMUTATIVE_KINDS = frozenset(
    {
        OpKind.ADD,
        OpKind.MUL,
        OpKind.EQ,
        OpKind.NE,
        OpKind.MAX,
        OpKind.MIN,
        OpKind.AND,
        OpKind.OR,
        OpKind.XOR,
    }
)

#: Comparison operations producing a 1-bit result.
COMPARISON_KINDS = frozenset(
    {OpKind.LT, OpKind.LE, OpKind.GT, OpKind.GE, OpKind.EQ, OpKind.NE}
)


def is_additive(kind: OpKind) -> bool:
    """Return True for operations with an additive operative kernel."""
    return kind in ADDITIVE_KINDS


def is_glue(kind: OpKind) -> bool:
    """Return True for zero-delay glue logic operations."""
    return kind in GLUE_KINDS


def is_comparison(kind: OpKind) -> bool:
    """Return True for comparison operations (1-bit result)."""
    return kind in COMPARISON_KINDS


_operation_counter = itertools.count()


@dataclass(eq=False)
class Operation:
    """A single behavioural operation.

    Parameters
    ----------
    kind:
        The operation repertoire member.
    operands:
        Input operand slices (two for binary operations, one for unary).
    destination:
        The variable slice the result is written to.
    carry_in:
        Optional 1-bit operand chained into the addition (used by fragments
        produced by the paper's phase 3 and by the subtraction rewrite of
        phase 1, where the ``+1`` of two's complement arrives as carry-in).
    origin:
        Name of the original specification operation this one descends from.
        The transformation records provenance here so schedules and reports
        can relate fragments back to the source operation.
    fragment_index:
        Position of this fragment within its original operation (0 = least
        significant fragment).  ``None`` for unfragmented operations.
    attributes:
        Free-form metadata (e.g. shift amounts for SHL/SHR, selector operands).
    """

    kind: OpKind
    operands: Tuple[Operand, ...]
    destination: Destination
    carry_in: Optional[Operand] = None
    name: Optional[str] = None
    origin: Optional[str] = None
    fragment_index: Optional[int] = None
    attributes: Dict[str, object] = field(default_factory=dict)
    uid: int = field(default_factory=lambda: next(_operation_counter))

    def __post_init__(self) -> None:
        self.operands = tuple(self.operands)
        if not self.operands:
            raise IRTypeError(f"operation {self.kind} requires at least one operand")
        if self.carry_in is not None and self.carry_in.width != 1:
            raise IRTypeError(
                f"carry-in operand must be 1 bit wide, got {self.carry_in.width}"
            )
        if self.name is None:
            self.name = f"{self.kind.value}_{self.uid}"
        if self.origin is None:
            self.origin = self.name
        # Operations sit on every hot path as dict keys and are classified
        # constantly by the graph builders and schedulers; precompute the
        # kind predicates so the per-call set lookups disappear.
        self._is_additive = self.kind in ADDITIVE_KINDS
        self._is_glue = self.kind in GLUE_KINDS
        reads = list(self.operands)
        if self.carry_in is not None:
            reads.append(self.carry_in)
        self._reads = reads

    # -- structural queries ------------------------------------------------
    @property
    def width(self) -> int:
        """Width of the result written by this operation."""
        return self.destination.width

    @property
    def result_variable(self):
        return self.destination.variable

    @property
    def is_additive(self) -> bool:
        return self._is_additive

    @property
    def is_glue(self) -> bool:
        return self._is_glue

    @property
    def is_fragment(self) -> bool:
        """True when this operation is a fragment of a wider original operation."""
        return self.fragment_index is not None

    def all_read_operands(self) -> List[Operand]:
        """All operands read by the operation, including the carry-in.

        Returns a precomputed list (operands and carry-in never change after
        construction); callers iterate it and must not mutate it.
        """
        return self._reads

    def read_variables(self) -> List:
        """Distinct variables read by the operation (constants excluded)."""
        seen = []
        for operand in self.all_read_operands():
            if operand.is_variable and operand.variable not in seen:
                seen.append(operand.variable)
        return seen

    def max_operand_width(self) -> int:
        """Width of the widest input operand."""
        return max(op.width for op in self.operands)

    def __hash__(self) -> int:
        # uids are small non-negative ints, which hash to themselves; skipping
        # the nested hash() call matters because operations key every
        # schedule, graph and lifetime dictionary in the flow.
        return self.uid

    def __eq__(self, other: object) -> bool:
        return self is other

    def describe(self) -> str:
        """Readable one-line rendering, VHDL-assignment style."""
        symbol = {
            OpKind.ADD: "+",
            OpKind.SUB: "-",
            OpKind.MUL: "*",
            OpKind.LT: "<",
            OpKind.LE: "<=",
            OpKind.GT: ">",
            OpKind.GE: ">=",
            OpKind.EQ: "==",
            OpKind.NE: "/=",
            OpKind.AND: "and",
            OpKind.OR: "or",
            OpKind.XOR: "xor",
        }.get(self.kind)
        operand_text = [op.describe() for op in self.operands]
        if symbol is not None and len(operand_text) == 2:
            rhs = f"{operand_text[0]} {symbol} {operand_text[1]}"
        else:
            rhs = f"{self.kind.value}({', '.join(operand_text)})"
        if self.carry_in is not None:
            rhs = f"{rhs} + {self.carry_in.describe()}"
        return f"{self.destination.describe()} := {rhs}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Operation<{self.name}: {self.describe()}>"


def make_binary(
    kind: OpKind,
    left: Operand,
    right: Operand,
    destination: Destination,
    *,
    name: Optional[str] = None,
    carry_in: Optional[Operand] = None,
    origin: Optional[str] = None,
    fragment_index: Optional[int] = None,
    attributes: Optional[Dict[str, object]] = None,
) -> Operation:
    """Convenience constructor for two-operand operations."""
    return Operation(
        kind=kind,
        operands=(left, right),
        destination=destination,
        carry_in=carry_in,
        name=name,
        origin=origin,
        fragment_index=fragment_index,
        attributes=dict(attributes or {}),
    )


def make_unary(
    kind: OpKind,
    operand: Operand,
    destination: Destination,
    *,
    name: Optional[str] = None,
    origin: Optional[str] = None,
    attributes: Optional[Dict[str, object]] = None,
) -> Operation:
    """Convenience constructor for single-operand operations."""
    return Operation(
        kind=kind,
        operands=(operand,),
        destination=destination,
        name=name,
        origin=origin,
        attributes=dict(attributes or {}),
    )
