"""Dataflow graphs derived from a behavioural specification.

Two graph views are provided:

* :class:`DataFlowGraph` -- the conventional operation-level DFG used by the
  HLS scheduler (nodes are operations, edges are read-after-write
  dependencies, annotated with the bit range transferred).
* :class:`BitDependencyGraph` -- the bit-level dependency graph used by the
  paper's clock-cycle estimation (phase 2) and fragmentation (phase 3).  Its
  nodes are individual *result bits* of additive operations; edges express the
  ripple-carry dependency between consecutive bits of the same operation and
  the value dependency between a result bit and the operand bits at the same
  position.  Glue-logic operations are collapsed (zero delay), matching the
  paper's statement that non-additive operations are not considered when
  measuring paths in chained 1-bit additions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .operations import Operation, OpKind
from .spec import Specification, SpecificationError
from .types import BitRange
from .values import Variable


@dataclass(frozen=True)
class DataEdge:
    """A read-after-write dependency between two operations.

    ``producer`` writes bits of a variable later read by ``consumer``; the
    ``bits`` range is the overlap, in variable bit coordinates.
    """

    producer: Operation
    consumer: Operation
    variable: Variable
    bits: BitRange


class DataFlowGraph:
    """Operation-level dataflow graph of a specification."""

    def __init__(self, specification: Specification) -> None:
        self.specification = specification
        self._predecessors: Dict[Operation, List[DataEdge]] = {
            op: [] for op in specification.operations
        }
        self._successors: Dict[Operation, List[DataEdge]] = {
            op: [] for op in specification.operations
        }
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        spec = self.specification
        seen_edges: Set[Tuple[int, int, int, int, int]] = set()
        for consumer in spec.operations:
            for operand in consumer.all_read_operands():
                if not operand.is_variable:
                    continue
                variable = operand.variable
                if variable.is_input() and spec.bit_writer(variable, operand.range.lo) is None:
                    # Fast path: pure input-port reads have no producer edges
                    # unless some bits of the port are also driven internally
                    # (inout ports).  Fall through to the per-bit scan below
                    # only when a writer exists somewhere in the range.
                    if not any(
                        spec.bit_writer(variable, bit) is not None
                        for bit in operand.range
                    ):
                        continue
                # Group the read range by producing operation.
                current_producer: Optional[Operation] = None
                run_start: Optional[int] = None
                previous_bit: Optional[int] = None

                def emit(producer: Optional[Operation], lo: int, hi: int) -> None:
                    if producer is None:
                        return
                    key = (producer.uid, consumer.uid, variable.uid, lo, hi)
                    if key in seen_edges:
                        return
                    seen_edges.add(key)
                    edge = DataEdge(producer, consumer, variable, BitRange(lo, hi))
                    self._successors[producer].append(edge)
                    self._predecessors[consumer].append(edge)

                for bit in operand.range:
                    definition = spec.bit_writer(variable, bit)
                    producer = definition.operation if definition else None
                    if producer is not current_producer:
                        if previous_bit is not None:
                            emit(current_producer, run_start, previous_bit)
                        current_producer = producer
                        run_start = bit
                    previous_bit = bit
                if previous_bit is not None:
                    emit(current_producer, run_start, previous_bit)

    # ------------------------------------------------------------------
    @property
    def operations(self) -> Sequence[Operation]:
        return self.specification.operations

    def predecessors(self, operation: Operation) -> List[Operation]:
        """Distinct operations this operation depends on."""
        result: List[Operation] = []
        for edge in self._predecessors[operation]:
            if edge.producer not in result:
                result.append(edge.producer)
        return result

    def successors(self, operation: Operation) -> List[Operation]:
        """Distinct operations depending on this operation."""
        result: List[Operation] = []
        for edge in self._successors[operation]:
            if edge.consumer not in result:
                result.append(edge.consumer)
        return result

    def in_edges(self, operation: Operation) -> Sequence[DataEdge]:
        return tuple(self._predecessors[operation])

    def out_edges(self, operation: Operation) -> Sequence[DataEdge]:
        return tuple(self._successors[operation])

    def sources(self) -> List[Operation]:
        """Operations with no predecessors (fed only by ports and constants)."""
        return [op for op in self.operations if not self._predecessors[op]]

    def sinks(self) -> List[Operation]:
        """Operations whose results are not consumed by other operations."""
        return [op for op in self.operations if not self._successors[op]]

    def topological_order(self) -> List[Operation]:
        """Operations sorted so producers precede consumers.

        Raises :class:`SpecificationError` when the graph contains a cycle,
        which cannot happen for specifications built through
        :class:`~repro.ir.spec.Specification` (single assignment forbids it)
        but protects against hand-constructed graphs.
        """
        in_degree: Dict[Operation, int] = {
            op: len(self.predecessors(op)) for op in self.operations
        }
        ready = [op for op in self.operations if in_degree[op] == 0]
        order: List[Operation] = []
        while ready:
            operation = ready.pop(0)
            order.append(operation)
            for successor in self.successors(operation):
                in_degree[successor] -= 1
                if in_degree[successor] == 0:
                    ready.append(successor)
        if len(order) != len(list(self.operations)):
            raise SpecificationError(
                f"dataflow graph of {self.specification.name} contains a cycle"
            )
        return order

    def longest_path_operations(self) -> List[Operation]:
        """One longest path (by number of operations), source to sink."""
        order = self.topological_order()
        best_length: Dict[Operation, int] = {}
        best_pred: Dict[Operation, Optional[Operation]] = {}
        for operation in order:
            preds = self.predecessors(operation)
            if not preds:
                best_length[operation] = 1
                best_pred[operation] = None
            else:
                parent = max(preds, key=lambda p: best_length[p])
                best_length[operation] = best_length[parent] + 1
                best_pred[operation] = parent
        if not best_length:
            return []
        tail = max(best_length, key=lambda op: best_length[op])
        path: List[Operation] = []
        current: Optional[Operation] = tail
        while current is not None:
            path.append(current)
            current = best_pred[current]
        path.reverse()
        return path

    def all_paths(self, limit: int = 10000) -> List[List[Operation]]:
        """Enumerate all source-to-sink operation paths (bounded by *limit*).

        Used by the path-walk critical-path algorithm transcribed from the
        paper; the bit-level estimator in :mod:`repro.core.timing` does not
        need explicit enumeration.
        """
        paths: List[List[Operation]] = []

        def visit(operation: Operation, prefix: List[Operation]) -> None:
            if len(paths) >= limit:
                return
            successors = self.successors(operation)
            if not successors:
                paths.append(prefix + [operation])
                return
            for successor in successors:
                visit(successor, prefix + [operation])

        for source in self.sources():
            visit(source, [])
        return paths

    def depth(self) -> int:
        """Number of operations on the longest dependency chain."""
        return len(self.longest_path_operations())


@dataclass(frozen=True)
class BitNode:
    """A single result bit of an operation (bit 0 = least significant)."""

    operation: Operation
    bit: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.operation.name}[{self.bit}]"


class BitDependencyGraph:
    """Bit-level dependency graph over the additive operations of a spec.

    Edges (implicit through :meth:`predecessors`) connect a result bit to:

    * the previous result bit of the same operation (ripple carry), and to the
      operation's carry-in producer bit for result bit 0;
    * the operand bits at the same relative position, traced *through* glue
      logic to the additive operation bits (or primary inputs) that actually
      produce them.

    This is exactly the structure behind Fig. 1 e and Fig. 3 b of the paper:
    bit *i* of ``C``, bit *i-1* of ``E`` and bit *i-2* of ``G`` lie on
    parallel diagonals of the graph.
    """

    def __init__(self, specification: Specification) -> None:
        self.specification = specification
        self._nodes: List[BitNode] = []
        self._node_index: Dict[Tuple[int, int], BitNode] = {}
        self._predecessors: Dict[BitNode, List[BitNode]] = {}
        self._successors: Dict[BitNode, List[BitNode]] = {}
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        for operation in self.specification.operations:
            if not operation.is_additive:
                continue
            for bit in range(operation.width):
                node = BitNode(operation, bit)
                self._nodes.append(node)
                self._node_index[(operation.uid, bit)] = node
                self._predecessors[node] = []
                self._successors[node] = []
        for node in self._nodes:
            for predecessor in self._compute_predecessors(node):
                self._predecessors[node].append(predecessor)
                self._successors[predecessor].append(node)

    @staticmethod
    def glue_source_bits(operation: Operation, result_bit: int) -> List[Tuple]:
        """The operand bits a glue operation's result bit is wired from.

        Returns ``(operand, source_position)`` pairs with the position relative
        to the operand's LSB.  The mapping is kind-specific: MOVE, NOT and the
        bitwise logic operations are position-aligned; SHL/SHR apply the shift
        offset; CONCAT routes the bit to exactly one of its parts; SELECT
        depends on both data operands at the same position plus the condition
        bit.
        """
        kind = operation.kind
        pairs: List[Tuple] = []
        if kind is OpKind.CONCAT:
            offset = 0
            for operand in operation.operands:
                if offset <= result_bit < offset + operand.width:
                    pairs.append((operand, result_bit - offset))
                    break
                offset += operand.width
            return pairs
        if kind is OpKind.SHL:
            shift = int(operation.attributes.get("shift", 0))
            source = operation.operands[0]
            position = result_bit - shift
            if 0 <= position < source.width:
                pairs.append((source, position))
            return pairs
        if kind is OpKind.SHR:
            shift = int(operation.attributes.get("shift", 0))
            source = operation.operands[0]
            position = result_bit + shift
            if 0 <= position < source.width:
                pairs.append((source, position))
            return pairs
        if kind is OpKind.SELECT:
            condition, if_true, if_false = operation.operands
            pairs.append((condition, 0))
            for operand in (if_true, if_false):
                if result_bit < operand.width:
                    pairs.append((operand, result_bit))
            return pairs
        # MOVE, NOT, AND, OR, XOR and any other position-aligned glue.
        for operand in operation.all_read_operands():
            if not operand.is_variable and not operand.is_constant:
                continue
            if result_bit < operand.width:
                pairs.append((operand, result_bit))
        return pairs

    def _trace_variable_bit(
        self, variable: Variable, bit: int, _depth: int = 0
    ) -> List[BitNode]:
        """Resolve a variable bit to the additive result bits producing it.

        Glue-logic producers are traced through transparently (following the
        kind-specific bit wiring of :meth:`glue_source_bits`), since glue
        logic contributes no delay in the chained-additions metric.
        """
        if _depth > 64:
            return []
        definition = self.specification.bit_writer(variable, bit)
        if definition is None:
            return []
        operation = definition.operation
        result_bit = definition.result_bit
        if operation.is_additive:
            node = self._node_index.get((operation.uid, result_bit))
            return [node] if node is not None else []
        producers: List[BitNode] = []
        for operand, position in self.glue_source_bits(operation, result_bit):
            if not operand.is_variable:
                continue
            source_bit = operand.range.lo + position
            producers.extend(
                self._trace_variable_bit(operand.variable, source_bit, _depth + 1)
            )
        return producers

    def _compute_predecessors(self, node: BitNode) -> List[BitNode]:
        operation = node.operation
        predecessors: List[BitNode] = []
        # Ripple dependency on the previous bit of the same operation.
        if node.bit > 0:
            previous = self._node_index.get((operation.uid, node.bit - 1))
            if previous is not None:
                predecessors.append(previous)
        # Value dependency on operand bits at the same relative position.
        for operand in operation.operands:
            if not operand.is_variable:
                continue
            if node.bit >= operand.width:
                continue
            source_bit = operand.range.lo + node.bit
            predecessors.extend(
                self._trace_variable_bit(operand.variable, source_bit)
            )
        # Carry-in feeds the least significant bit.
        if node.bit == 0 and operation.carry_in is not None:
            carry = operation.carry_in
            if carry.is_variable:
                predecessors.extend(
                    self._trace_variable_bit(carry.variable, carry.range.lo)
                )
        # Deduplicate preserving order.
        unique: List[BitNode] = []
        for predecessor in predecessors:
            if predecessor not in unique:
                unique.append(predecessor)
        return unique

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Sequence[BitNode]:
        return tuple(self._nodes)

    def node(self, operation: Operation, bit: int) -> BitNode:
        try:
            return self._node_index[(operation.uid, bit)]
        except KeyError:
            raise SpecificationError(
                f"no bit node for {operation.name}[{bit}]"
            ) from None

    def has_node(self, operation: Operation, bit: int) -> bool:
        return (operation.uid, bit) in self._node_index

    def predecessors(self, node: BitNode) -> Sequence[BitNode]:
        return tuple(self._predecessors[node])

    def successors(self, node: BitNode) -> Sequence[BitNode]:
        return tuple(self._successors[node])

    def sources(self) -> List[BitNode]:
        return [n for n in self._nodes if not self._predecessors[n]]

    def sinks(self) -> List[BitNode]:
        return [n for n in self._nodes if not self._successors[n]]

    def topological_order(self) -> List[BitNode]:
        in_degree = {node: len(self._predecessors[node]) for node in self._nodes}
        ready = [node for node in self._nodes if in_degree[node] == 0]
        order: List[BitNode] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for successor in self._successors[node]:
                in_degree[successor] -= 1
                if in_degree[successor] == 0:
                    ready.append(successor)
        if len(order) != len(self._nodes):
            raise SpecificationError(
                f"bit dependency graph of {self.specification.name} contains a cycle"
            )
        return order

    def node_cost(self, node: BitNode) -> int:
        """Chained-addition cost of computing one result bit.

        Normal result bits cost one 1-bit adder delay.  The *pure carry-out*
        bit of an addition or subtraction (a result bit beyond the width of
        every input operand) is produced by the same full adder that computes
        the most significant data bit, so it adds no extra chained delay.  The
        transformed specifications rely on this: a 6-bit fragment with an
        explicit carry-out still only contributes six chained bits to the
        cycle (Fig. 2 b annotates each cycle with "6 bits delay").
        """
        operation = node.operation
        if operation.kind in (OpKind.ADD, OpKind.SUB):
            if node.bit >= operation.max_operand_width():
                return 0
        return 1

    def arrival_depths(self) -> Dict[BitNode, int]:
        """Longest-path depth of every bit node, in chained 1-bit additions.

        Depth 1 means the bit can be computed one adder delay after the cycle
        (or chain) starts.  The maximum over all nodes is the execution time of
        the whole specification in the paper's delta units (e.g. 18 for the
        three chained 16-bit additions of Fig. 1 e).
        """
        depths: Dict[BitNode, int] = {}
        for node in self.topological_order():
            predecessors = self._predecessors[node]
            cost = self.node_cost(node)
            if predecessors:
                depths[node] = cost + max(depths[p] for p in predecessors)
            else:
                depths[node] = cost if cost else 1
        return depths

    def critical_depth(self) -> int:
        """Execution time of the specification in chained 1-bit additions."""
        if not self._nodes:
            return 0
        return max(self.arrival_depths().values())

    def __len__(self) -> int:
        return len(self._nodes)
