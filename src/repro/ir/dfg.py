"""Dataflow graphs derived from a behavioural specification.

Two graph views are provided:

* :class:`DataFlowGraph` -- the conventional operation-level DFG used by the
  HLS scheduler (nodes are operations, edges are read-after-write
  dependencies, annotated with the bit range transferred).
* :class:`BitDependencyGraph` -- the bit-level dependency graph used by the
  paper's clock-cycle estimation (phase 2) and fragmentation (phase 3).  Its
  nodes are individual *result bits* of additive operations; edges express the
  ripple-carry dependency between consecutive bits of the same operation and
  the value dependency between a result bit and the operand bits at the same
  position.  Glue-logic operations are collapsed (zero delay), matching the
  paper's statement that non-additive operations are not considered when
  measuring paths in chained 1-bit additions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .operations import Operation, OpKind
from .spec import Specification, SpecificationError
from .types import BitRange
from .values import Variable


@dataclass(frozen=True)
class DataEdge:
    """A read-after-write dependency between two operations.

    ``producer`` writes bits of a variable later read by ``consumer``; the
    ``bits`` range is the overlap, in variable bit coordinates.
    """

    producer: Operation
    consumer: Operation
    variable: Variable
    bits: BitRange


class DataFlowGraph:
    """Operation-level dataflow graph of a specification."""

    def __init__(self, specification: Specification) -> None:
        self.specification = specification
        self._predecessors: Dict[Operation, List[DataEdge]] = {
            op: [] for op in specification.operations
        }
        self._successors: Dict[Operation, List[DataEdge]] = {
            op: [] for op in specification.operations
        }
        self._build()
        # The graph is immutable once built; the dedup adjacency lists and
        # the topological order are cached lazily because every scheduler and
        # timing pass walks them repeatedly.
        self._pred_ops: Dict[Operation, List[Operation]] = {}
        self._succ_ops: Dict[Operation, List[Operation]] = {}
        self._topological: Optional[List[Operation]] = None

    # ------------------------------------------------------------------
    def _build(self) -> None:
        spec = self.specification
        bit_defs = spec.bit_def_map
        seen_edges: Set[Tuple[int, int, int, int, int]] = set()
        for consumer in spec.operations:
            for operand in consumer.all_read_operands():
                if not operand.is_variable:
                    continue
                variable = operand.variable
                variable_uid = variable.uid
                if variable.is_input() and bit_defs.get((variable_uid, operand.range.lo)) is None:
                    # Fast path: pure input-port reads have no producer edges
                    # unless some bits of the port are also driven internally
                    # (inout ports).  Fall through to the per-bit scan below
                    # only when a writer exists somewhere in the range.
                    if not any(
                        bit_defs.get((variable_uid, bit)) is not None
                        for bit in operand.range
                    ):
                        continue
                # Group the read range by producing operation.
                current_producer: Optional[Operation] = None
                run_start: Optional[int] = None
                previous_bit: Optional[int] = None

                def emit(
                    producer: Optional[Operation],
                    lo: int,
                    hi: int,
                    consumer: Operation = consumer,
                    variable: Variable = variable,
                ) -> None:
                    if producer is None:
                        return
                    key = (producer.uid, consumer.uid, variable.uid, lo, hi)
                    if key in seen_edges:
                        return
                    seen_edges.add(key)
                    edge = DataEdge(producer, consumer, variable, BitRange(lo, hi))
                    self._successors[producer].append(edge)
                    self._predecessors[consumer].append(edge)

                for bit in operand.range:
                    definition = bit_defs.get((variable_uid, bit))
                    producer = definition.operation if definition else None
                    if producer is not current_producer:
                        if previous_bit is not None:
                            emit(current_producer, run_start, previous_bit)
                        current_producer = producer
                        run_start = bit
                    previous_bit = bit
                if previous_bit is not None:
                    emit(current_producer, run_start, previous_bit)

    # ------------------------------------------------------------------
    @property
    def operations(self) -> Sequence[Operation]:
        return self.specification.operations

    def predecessors(self, operation: Operation) -> List[Operation]:
        """Distinct operations this operation depends on."""
        cached = self._pred_ops.get(operation)
        if cached is None:
            cached = []
            for edge in self._predecessors[operation]:
                if edge.producer not in cached:
                    cached.append(edge.producer)
            self._pred_ops[operation] = cached
        return cached

    def successors(self, operation: Operation) -> List[Operation]:
        """Distinct operations depending on this operation."""
        cached = self._succ_ops.get(operation)
        if cached is None:
            cached = []
            for edge in self._successors[operation]:
                if edge.consumer not in cached:
                    cached.append(edge.consumer)
            self._succ_ops[operation] = cached
        return cached

    def in_edges(self, operation: Operation) -> Sequence[DataEdge]:
        return tuple(self._predecessors[operation])

    def out_edges(self, operation: Operation) -> Sequence[DataEdge]:
        return tuple(self._successors[operation])

    def sources(self) -> List[Operation]:
        """Operations with no predecessors (fed only by ports and constants)."""
        return [op for op in self.operations if not self._predecessors[op]]

    def sinks(self) -> List[Operation]:
        """Operations whose results are not consumed by other operations."""
        return [op for op in self.operations if not self._successors[op]]

    def topological_order(self) -> List[Operation]:
        """Operations sorted so producers precede consumers.

        Raises :class:`SpecificationError` when the graph contains a cycle,
        which cannot happen for specifications built through
        :class:`~repro.ir.spec.Specification` (single assignment forbids it)
        but protects against hand-constructed graphs.

        The order is computed once and cached (the graph is immutable);
        callers must not mutate the returned list.
        """
        if self._topological is not None:
            return self._topological
        in_degree: Dict[Operation, int] = {
            op: len(self.predecessors(op)) for op in self.operations
        }
        ready = [op for op in self.operations if in_degree[op] == 0]
        order: List[Operation] = []
        cursor = 0
        while cursor < len(ready):
            operation = ready[cursor]
            cursor += 1
            order.append(operation)
            for successor in self.successors(operation):
                in_degree[successor] -= 1
                if in_degree[successor] == 0:
                    ready.append(successor)
        if len(order) != len(list(self.operations)):
            raise SpecificationError(
                f"dataflow graph of {self.specification.name} contains a cycle"
            )
        self._topological = order
        return order

    def longest_path_operations(self) -> List[Operation]:
        """One longest path (by number of operations), source to sink."""
        order = self.topological_order()
        best_length: Dict[Operation, int] = {}
        best_pred: Dict[Operation, Optional[Operation]] = {}
        for operation in order:
            preds = self.predecessors(operation)
            if not preds:
                best_length[operation] = 1
                best_pred[operation] = None
            else:
                parent = max(preds, key=lambda p: best_length[p])
                best_length[operation] = best_length[parent] + 1
                best_pred[operation] = parent
        if not best_length:
            return []
        tail = max(best_length, key=lambda op: best_length[op])
        path: List[Operation] = []
        current: Optional[Operation] = tail
        while current is not None:
            path.append(current)
            current = best_pred[current]
        path.reverse()
        return path

    def all_paths(self, limit: int = 10000) -> List[List[Operation]]:
        """Enumerate all source-to-sink operation paths (bounded by *limit*).

        Used by the path-walk critical-path algorithm transcribed from the
        paper; the bit-level estimator in :mod:`repro.core.timing` does not
        need explicit enumeration.  Enumeration silently stops at *limit*
        paths; callers that must distinguish a complete enumeration from a
        truncated one use :meth:`enumerate_paths` instead.
        """
        paths, _truncated = self.enumerate_paths(limit)
        return paths

    def enumerate_paths(self, limit: int = 10000) -> Tuple[List[List[Operation]], bool]:
        """All source-to-sink paths plus whether *limit* cut the enumeration.

        The boolean is ``True`` when at least one path was *not* produced, so
        callers (``critical_path_by_walk``) can refuse to report an undercount
        computed from a partial path set.
        """
        paths: List[List[Operation]] = []
        truncated = False

        def visit(operation: Operation, prefix: List[Operation]) -> None:
            nonlocal truncated
            if len(paths) >= limit:
                truncated = True
                return
            successors = self.successors(operation)
            if not successors:
                paths.append(prefix + [operation])
                return
            for successor in successors:
                visit(successor, prefix + [operation])

        for source in self.sources():
            visit(source, [])
        return paths, truncated

    def depth(self) -> int:
        """Number of operations on the longest dependency chain."""
        return len(self.longest_path_operations())


class BitNode:
    """A single result bit of an operation (bit 0 = least significant).

    Bit nodes are the unit of work of the fragmentation phase: a graph over a
    32-bit ADPCM workload holds thousands of them, and the forward/backward
    schedulers key every lookup on them.  They are therefore interned by
    :class:`BitDependencyGraph` (one instance per ``(operation, bit)``) and
    kept deliberately lean: ``__slots__`` storage and a hash computed once at
    construction instead of per lookup.
    """

    __slots__ = ("operation", "bit", "_hash")

    def __init__(self, operation: Operation, bit: int) -> None:
        self.operation = operation
        self.bit = bit
        self._hash = hash((operation.uid, bit))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, BitNode):
            return NotImplemented
        return self.operation is other.operation and self.bit == other.bit

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.operation.name}[{self.bit}]"


class BitDependencyGraph:
    """Bit-level dependency graph over the additive operations of a spec.

    Edges (implicit through :meth:`predecessors`) connect a result bit to:

    * the previous result bit of the same operation (ripple carry), and to the
      operation's carry-in producer bit for result bit 0;
    * the operand bits at the same relative position, traced *through* glue
      logic to the additive operation bits (or primary inputs) that actually
      produce them.

    This is exactly the structure behind Fig. 1 e and Fig. 3 b of the paper:
    bit *i* of ``C``, bit *i-1* of ``E`` and bit *i-2* of ``G`` lie on
    parallel diagonals of the graph.
    """

    def __init__(self, specification: Specification) -> None:
        self.specification = specification
        self._nodes: List[BitNode] = []
        self._node_index: Dict[Tuple[int, int], BitNode] = {}
        self._predecessors: Dict[BitNode, List[BitNode]] = {}
        self._successors: Dict[BitNode, List[BitNode]] = {}
        # Variable bits are traced through glue logic over and over while the
        # edges are built (every reader of a bit re-traces the same wiring);
        # memoizing the resolution makes _build linear in the wiring size.
        self._trace_cache: Dict[Tuple[int, int], List[BitNode]] = {}
        self._build()
        self._costs: Dict[BitNode, int] = {
            node: self._compute_cost(node) for node in self._nodes
        }
        self._topological: Optional[List[BitNode]] = None
        self._dense: Optional[
            Tuple[List[BitNode], List[List[int]], List[List[int]], List[int]]
        ] = None
        self._critical_depth: Optional[int] = None
        self._op_predecessors: Optional[Dict[Operation, Tuple[Operation, ...]]] = None

    # ------------------------------------------------------------------
    def _build(self) -> None:
        nodes = self._nodes
        node_index = self._node_index
        predecessors = self._predecessors
        successors = self._successors
        for operation in self.specification.operations:
            if not operation.is_additive:
                continue
            uid = operation.uid
            for bit in range(operation.width):
                node = BitNode(operation, bit)
                nodes.append(node)
                node_index[(uid, bit)] = node
                predecessors[node] = []
                successors[node] = []
        trace = self._trace_variable_bit
        previous: Optional[BitNode] = None
        for node in nodes:
            operation = node.operation
            bit = node.bit
            found: List[BitNode] = []
            # Ripple dependency on the previous bit of the same operation;
            # nodes are created bit-ascending per operation, so the previous
            # list entry is that bit.
            if bit > 0:
                found.append(previous)
            # Value dependency on operand bits at the same relative position.
            for operand in operation.operands:
                if not operand.is_variable:
                    continue
                rng = operand.range
                if bit > rng.hi - rng.lo:
                    continue
                found.extend(trace(operand.variable, rng.lo + bit))
            # Carry-in feeds the least significant bit.
            if bit == 0 and operation.carry_in is not None:
                carry = operation.carry_in
                if carry.is_variable:
                    found.extend(trace(carry.variable, carry.range.lo))
            if len(found) > 1:
                # Deduplicate preserving order.
                unique: List[BitNode] = []
                for candidate in found:
                    if candidate not in unique:
                        unique.append(candidate)
                found = unique
            node_predecessors = predecessors[node]
            for predecessor in found:
                node_predecessors.append(predecessor)
                successors[predecessor].append(node)
            previous = node

    @staticmethod
    def glue_source_bits(operation: Operation, result_bit: int) -> List[Tuple]:
        """The operand bits a glue operation's result bit is wired from.

        Returns ``(operand, source_position)`` pairs with the position relative
        to the operand's LSB.  The mapping is kind-specific: MOVE, NOT and the
        bitwise logic operations are position-aligned; SHL/SHR apply the shift
        offset; CONCAT routes the bit to exactly one of its parts; SELECT
        depends on both data operands at the same position plus the condition
        bit.
        """
        kind = operation.kind
        pairs: List[Tuple] = []
        if kind is OpKind.CONCAT:
            offset = 0
            for operand in operation.operands:
                if offset <= result_bit < offset + operand.width:
                    pairs.append((operand, result_bit - offset))
                    break
                offset += operand.width
            return pairs
        if kind is OpKind.SHL:
            shift = int(operation.attributes.get("shift", 0))
            source = operation.operands[0]
            position = result_bit - shift
            if 0 <= position < source.width:
                pairs.append((source, position))
            return pairs
        if kind is OpKind.SHR:
            shift = int(operation.attributes.get("shift", 0))
            source = operation.operands[0]
            position = result_bit + shift
            if 0 <= position < source.width:
                pairs.append((source, position))
            return pairs
        if kind is OpKind.SELECT:
            condition, if_true, if_false = operation.operands
            pairs.append((condition, 0))
            for operand in (if_true, if_false):
                if result_bit < operand.width:
                    pairs.append((operand, result_bit))
            return pairs
        # MOVE, NOT, AND, OR, XOR and any other position-aligned glue.
        for operand in operation.all_read_operands():
            if not operand.is_variable and not operand.is_constant:
                continue
            if result_bit < operand.width:
                pairs.append((operand, result_bit))
        return pairs

    def _trace_variable_bit(
        self, variable: Variable, bit: int, _depth: int = 0
    ) -> List[BitNode]:
        """Resolve a variable bit to the additive result bits producing it.

        Glue-logic producers are traced through transparently (following the
        kind-specific bit wiring of :meth:`glue_source_bits`), since glue
        logic contributes no delay in the chained-additions metric.  Results
        are memoized per variable bit: wide fan-out wiring (the transformed
        ADPCM specifications route the same slice into many fragments) is
        resolved exactly once.  A walk cut off by the recursion guard is
        *not* cached -- a truncated producer list computed deep inside one
        walk must never be served to a later shallow caller with a full
        depth budget of its own.
        """
        producers, _complete = self._trace_variable_bit_inner(variable, bit, _depth)
        return producers

    def _trace_variable_bit_inner(
        self, variable: Variable, bit: int, depth: int
    ) -> Tuple[List[BitNode], bool]:
        if depth > 64:
            return [], False
        cache_key = (variable.uid, bit)
        cached = self._trace_cache.get(cache_key)
        if cached is not None:
            return cached, True
        definition = self.specification.bit_def_map.get(cache_key)
        if definition is None:
            self._trace_cache[cache_key] = []
            return [], True
        operation = definition.operation
        result_bit = definition.result_bit
        if operation.is_additive:
            node = self._node_index.get((operation.uid, result_bit))
            producers = [node] if node is not None else []
            self._trace_cache[cache_key] = producers
            return producers, True
        producers = []
        complete = True
        for operand, position in self.glue_source_bits(operation, result_bit):
            if not operand.is_variable:
                continue
            source_bit = operand.range.lo + position
            traced, traced_complete = self._trace_variable_bit_inner(
                operand.variable, source_bit, depth + 1
            )
            producers.extend(traced)
            complete = complete and traced_complete
        if complete:
            self._trace_cache[cache_key] = producers
        return producers, complete

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Sequence[BitNode]:
        return tuple(self._nodes)

    def node(self, operation: Operation, bit: int) -> BitNode:
        try:
            return self._node_index[(operation.uid, bit)]
        except KeyError:
            raise SpecificationError(
                f"no bit node for {operation.name}[{bit}]"
            ) from None

    def has_node(self, operation: Operation, bit: int) -> bool:
        return (operation.uid, bit) in self._node_index

    def predecessors(self, node: BitNode) -> Sequence[BitNode]:
        return tuple(self._predecessors[node])

    def successors(self, node: BitNode) -> Sequence[BitNode]:
        return tuple(self._successors[node])

    def sources(self) -> List[BitNode]:
        return [n for n in self._nodes if not self._predecessors[n]]

    def sinks(self) -> List[BitNode]:
        return [n for n in self._nodes if not self._successors[n]]

    def topological_order(self) -> List[BitNode]:
        """Nodes sorted so producers precede consumers (computed once).

        The graph is immutable after construction, so the order is cached;
        callers must not mutate the returned list.
        """
        if self._topological is not None:
            return self._topological
        in_degree = {node: len(self._predecessors[node]) for node in self._nodes}
        ready = [node for node in self._nodes if in_degree[node] == 0]
        order: List[BitNode] = []
        cursor = 0
        while cursor < len(ready):
            node = ready[cursor]
            cursor += 1
            order.append(node)
            for successor in self._successors[node]:
                in_degree[successor] -= 1
                if in_degree[successor] == 0:
                    ready.append(successor)
        if len(order) != len(self._nodes):
            raise SpecificationError(
                f"bit dependency graph of {self.specification.name} contains a cycle"
            )
        self._topological = order
        return order

    def dense_view(
        self,
    ) -> Tuple[List[BitNode], List[List[int]], List[List[int]], List[int]]:
        """Index-based adjacency for the tight scheduling loops.

        Returns ``(order, predecessors, successors, costs)`` where ``order``
        is the cached topological order and the other three are parallel
        lists over it (predecessor/successor positions refer back into
        ``order``).  The fragmentation budget search iterates this view
        thousands of times per transform; integer indices keep those loops
        free of hashing entirely.
        """
        if self._dense is not None:
            return self._dense
        order = self.topological_order()
        position = {node: index for index, node in enumerate(order)}
        predecessors = [
            [position[p] for p in self._predecessors[node]] for node in order
        ]
        successors = [
            [position[s] for s in self._successors[node]] for node in order
        ]
        costs = [self._costs[node] for node in order]
        self._dense = (order, predecessors, successors, costs)
        return self._dense

    def operation_predecessors(self) -> Dict[Operation, Tuple[Operation, ...]]:
        """Distinct producer operations behind each additive operation's bits.

        This is the operation-level projection of the bit edges (dependencies
        traced through glue included), cached because the fragment scheduler
        consults it once per placement instead of re-walking every bit of
        every operand.
        """
        if self._op_predecessors is None:
            projected: Dict[Operation, Dict[Operation, None]] = {}
            for node, predecessors in self._predecessors.items():
                bucket = projected.setdefault(node.operation, {})
                for predecessor in predecessors:
                    producer = predecessor.operation
                    if producer is not node.operation:
                        bucket[producer] = None
            self._op_predecessors = {
                operation: tuple(bucket) for operation, bucket in projected.items()
            }
        return self._op_predecessors

    def _compute_cost(self, node: BitNode) -> int:
        """Chained-addition cost of computing one result bit.

        Normal result bits cost one 1-bit adder delay.  The *pure carry-out*
        bit of an addition or subtraction (a result bit beyond the width of
        every input operand) is produced by the same full adder that computes
        the most significant data bit, so it adds no extra chained delay.  The
        transformed specifications rely on this: a 6-bit fragment with an
        explicit carry-out still only contributes six chained bits to the
        cycle (Fig. 2 b annotates each cycle with "6 bits delay").
        """
        operation = node.operation
        if operation.kind in (OpKind.ADD, OpKind.SUB):
            if node.bit >= operation.max_operand_width():
                return 0
        return 1

    def node_cost(self, node: BitNode) -> int:
        """Chained-addition cost of one result bit (precomputed at build)."""
        return self._costs[node]

    def arrival_depths(self) -> Dict[BitNode, int]:
        """Longest-path depth of every bit node, in chained 1-bit additions.

        Depth 1 means the bit can be computed one adder delay after the cycle
        (or chain) starts.  The maximum over all nodes is the execution time of
        the whole specification in the paper's delta units (e.g. 18 for the
        three chained 16-bit additions of Fig. 1 e).
        """
        depths: Dict[BitNode, int] = {}
        for node in self.topological_order():
            predecessors = self._predecessors[node]
            cost = self.node_cost(node)
            if predecessors:
                depths[node] = cost + max(depths[p] for p in predecessors)
            else:
                depths[node] = cost if cost else 1
        return depths

    def critical_depth(self) -> int:
        """Execution time of the specification in chained 1-bit additions."""
        if self._critical_depth is None:
            if not self._nodes:
                self._critical_depth = 0
            else:
                self._critical_depth = max(self.arrival_depths().values())
        return self._critical_depth

    def __len__(self) -> int:
        return len(self._nodes)
