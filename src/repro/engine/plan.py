"""Compiled evaluation plans for specifications and netlists.

A *plan* lowers an immutable evaluation subject into a flat instruction
list with every per-operation decision -- operand slicing bounds,
signedness of the extension fill, constant bit patterns, comparison
widths, shift amounts, destination offsets -- resolved at compile time.
Executing a plan is then a single dispatch loop over tuples, with none of
the attribute walks and property chains the object-graph evaluators pay
per operation per run.  Plans are backend-agnostic: the same compiled
program runs over big-int planes or numpy word arrays (see
:mod:`repro.engine.backends`), and at any lane count.

Two subjects compile:

* :func:`spec_plan` -- the operation list of a
  :class:`~repro.ir.spec.Specification`, in program order (the IR's
  sequential semantics already topologically pre-order the dataflow);
* :func:`netlist_plan` -- the gates of a combinational
  :class:`~repro.rtl.netlist.Netlist` in levelised order, with nets
  renumbered into a dense value array.

Compilation is memoized per subject (weak keys; structure versions guard
against mutation), so a sweep or an equivalence run compiles once and
evaluates thousands of lanes many times.
"""

from __future__ import annotations

import weakref
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..ir.operations import Operation, OpKind
from ..ir.spec import Specification
from ..ir.values import Operand
from ..rtl.netlist import Gate, GateKind, Netlist, NetlistError
from .backends import LaneContext, Plane
from .kernels import multiply, negate, ripple_add, ripple_increment, select

# ----------------------------------------------------------------------
# Operand fetches
# ----------------------------------------------------------------------
#: A pre-resolved operand access: ``(uid, lo, stop, signed, width,
#: pattern)``.  Variable fetches slice ``state[uid][lo:stop]``; constant
#: fetches (``uid is None``) materialise ``pattern`` (a tuple of bools,
#: LSB first).  Both are then extended to ``width`` planes, replicating
#: the top plane when ``signed`` (two's complement sign extension) and
#: appending zero planes otherwise -- exactly the raw/value semantics of
#: the scalar and batch interpreters.
Fetch = Tuple[Optional[int], int, int, bool, int, Optional[Tuple[bool, ...]]]


def _fetch_descriptor(operand: Operand, width: int, value: bool) -> Fetch:
    rng = operand.range
    signed = bool(value and operand.source.signed and operand.covers_whole_source())
    if operand.is_constant:
        bits = operand.constant.bits >> rng.lo
        pattern = tuple(
            bool((bits >> index) & 1) for index in range(min(rng.width, width))
        )
        return (None, 0, 0, signed, width, pattern)
    stop = min(rng.lo + width, rng.hi + 1)
    return (operand.variable.uid, rng.lo, stop, signed, width, None)


def _run_fetch(
    fetch: Fetch, state: Dict[int, List[Plane]], ctx: LaneContext
) -> List[Plane]:
    uid, lo, stop, signed, width, pattern = fetch
    if uid is None:
        mask = ctx.mask
        zero = ctx.zero
        planes = [mask if bit else zero for bit in pattern]  # type: ignore[union-attr]
    else:
        planes = state[uid][lo:stop]
    if len(planes) < width:
        fill = planes[-1] if (signed and planes) else ctx.zero
        planes = planes + [fill] * (width - len(planes))
    return planes


# ----------------------------------------------------------------------
# Specification plans
# ----------------------------------------------------------------------
#: Instruction opcodes (dense ints; dispatch is an if/elif ladder).
_ADD, _SUB, _MUL, _CMP, _MAXMIN, _NEG, _ABS = range(7)
_AND, _OR, _XOR, _NOT, _SHL, _SHR, _CONCAT, _SELECT, _MOVE = range(7, 16)

#: Comparison selectors for the ``_CMP`` opcode.
_CMP_SELECT = {
    OpKind.LT: 0,
    OpKind.LE: 1,
    OpKind.GT: 2,
    OpKind.GE: 3,
    OpKind.EQ: 4,
    OpKind.NE: 5,
}

#: One instruction: ``(code, width, dest_uid, dest_lo, args)`` where the
#: shape of ``args`` depends on ``code``.
Instruction = Tuple[int, int, int, int, Tuple[Any, ...]]


class SpecPlan:
    """The compiled program of one specification."""

    __slots__ = ("name", "version", "instructions", "operation_names")

    def __init__(
        self,
        name: str,
        version: int,
        instructions: List[Instruction],
        operation_names: List[str],
    ) -> None:
        self.name = name
        self.version = version
        self.instructions = instructions
        self.operation_names = operation_names


def _carry_fetch(operation: Operation) -> Optional[Fetch]:
    if operation.carry_in is None:
        return None
    return _fetch_descriptor(operation.carry_in, 1, value=False)


def _compile_operation(operation: Operation) -> Instruction:
    kind = operation.kind
    width = operation.width
    operands = operation.operands
    destination = operation.destination
    dest_uid = destination.variable.uid
    dest_lo = destination.range.lo

    def value(index: int, req_width: int) -> Fetch:
        return _fetch_descriptor(operands[index], req_width, value=True)

    def raw(index: int, req_width: int) -> Fetch:
        return _fetch_descriptor(operands[index], req_width, value=False)

    args: Tuple[Any, ...]
    if kind is OpKind.ADD:
        code, args = _ADD, (value(0, width), value(1, width), _carry_fetch(operation))
    elif kind is OpKind.SUB:
        code, args = _SUB, (value(0, width), value(1, width), _carry_fetch(operation))
    elif kind is OpKind.MUL:
        code, args = _MUL, (value(0, width), value(1, width))
    elif kind in _CMP_SELECT:
        compare_width = max(operands[0].width, operands[1].width) + 1
        code = _CMP
        args = (value(0, compare_width), value(1, compare_width), _CMP_SELECT[kind])
    elif kind in (OpKind.MAX, OpKind.MIN):
        compare_width = max(operands[0].width, operands[1].width) + 1
        code = _MAXMIN
        args = (
            value(0, compare_width),
            value(1, compare_width),
            value(0, width),
            value(1, width),
            kind is OpKind.MAX,
        )
    elif kind is OpKind.NEG:
        code, args = _NEG, (value(0, width),)
    elif kind is OpKind.ABS:
        source = operands[0]
        sign_fetch: Optional[Fetch] = None
        if source.source.signed and source.covers_whole_source():
            sign_fetch = raw(0, source.width)
        code, args = _ABS, (value(0, width), sign_fetch)
    elif kind is OpKind.AND:
        code, args = _AND, (raw(0, width), raw(1, width))
    elif kind is OpKind.OR:
        code, args = _OR, (raw(0, width), raw(1, width))
    elif kind is OpKind.XOR:
        code, args = _XOR, (raw(0, width), raw(1, width))
    elif kind is OpKind.NOT:
        code, args = _NOT, (raw(0, width),)
    elif kind is OpKind.SHL:
        amount = int(operation.attributes.get("shift", 0))
        code, args = _SHL, (raw(0, width), amount)
    elif kind is OpKind.SHR:
        amount = int(operation.attributes.get("shift", 0))
        code, args = _SHR, (raw(0, operands[0].width), amount)
    elif kind is OpKind.CONCAT:
        code = _CONCAT
        args = (tuple(raw(i, operand.width) for i, operand in enumerate(operands)),)
    elif kind is OpKind.SELECT:
        code, args = _SELECT, (raw(0, 1), raw(1, width), raw(2, width))
    elif kind is OpKind.MOVE:
        code, args = _MOVE, (raw(0, width),)
    else:
        raise ValueError(f"plan compiler does not support operation kind {kind}")
    return (code, width, dest_uid, dest_lo, args)


#: Compiled plans shared per specification, guarded by the structure
#: version (re-resolution after mutation recompiles).
_SPEC_PLANS: "weakref.WeakKeyDictionary[Specification, SpecPlan]" = (
    weakref.WeakKeyDictionary()
)

_NETLIST_PLANS: "weakref.WeakKeyDictionary[Netlist, NetlistPlan]" = (
    weakref.WeakKeyDictionary()
)


def clear_plan_memo() -> None:
    """Drop the compiled-plan memos (perf-measurement / test isolation)."""
    _SPEC_PLANS.clear()
    _NETLIST_PLANS.clear()


def spec_plan(specification: Specification) -> SpecPlan:
    """The compiled plan of *specification*, memoized per structure version."""
    cached = _SPEC_PLANS.get(specification)
    if cached is not None and cached.version == specification.version:
        return cached
    instructions = [_compile_operation(op) for op in specification.operations]
    names = [op.name for op in specification.operations]
    plan = SpecPlan(specification.name, specification.version, instructions, names)
    _SPEC_PLANS[specification] = plan
    return plan


def _compare_planes(
    ctx: LaneContext, a: List[Plane], b: List[Plane]
) -> Tuple[Plane, Plane]:
    """(lt, eq) planes of two value-fetched, width-aligned operand lists.

    Flipping the top (sign) plane reduces the signed comparison to the
    unsigned borrow ripple, exactly as the batch interpreter does.
    """
    mask = ctx.mask
    a = list(a)
    b = list(b)
    a[-1] = a[-1] ^ mask
    b[-1] = b[-1] ^ mask
    lt = ctx.zero
    diff = ctx.zero
    for plane_a, plane_b in zip(a, b):
        equal_mask = ~(plane_a ^ plane_b)
        lt = (~plane_a & plane_b) | (equal_mask & lt)
        diff = diff | (plane_a ^ plane_b)
    return lt & mask, (diff ^ mask) & mask


def run_spec_plan(
    plan: SpecPlan,
    ctx: LaneContext,
    state: Dict[int, List[Plane]],
    record: Optional[List[List[Plane]]] = None,
) -> None:
    """Execute *plan* over *state* (uid -> plane list), mutating it in place.

    ``record``, when given, receives the result plane list of every
    instruction in program order (the scalar interpreter's per-operation
    trace is reconstructed from it).
    """
    mask = ctx.mask
    zero = ctx.zero
    for code, width, dest_uid, dest_lo, args in plan.instructions:
        if code == _ADD:
            fetch_a, fetch_b, carry_fetch = args
            a = _run_fetch(fetch_a, state, ctx)
            b = _run_fetch(fetch_b, state, ctx)
            carry = (
                zero if carry_fetch is None else _run_fetch(carry_fetch, state, ctx)[0]
            )
            result = ripple_add(a, b, carry)
        elif code == _SUB:
            fetch_a, fetch_b, carry_fetch = args
            a = _run_fetch(fetch_a, state, ctx)
            b = _run_fetch(fetch_b, state, ctx)
            inverted = [plane ^ mask for plane in b]
            difference = ripple_add(a, inverted, mask)
            carry = (
                zero if carry_fetch is None else _run_fetch(carry_fetch, state, ctx)[0]
            )
            result = ripple_increment(ctx, difference, carry)
        elif code == _MUL:
            fetch_a, fetch_b = args
            a = _run_fetch(fetch_a, state, ctx)
            b = _run_fetch(fetch_b, state, ctx)
            result = multiply(ctx, a, b, width)
        elif code == _CMP:
            fetch_a, fetch_b, selector = args
            lt, eq = _compare_planes(
                ctx, _run_fetch(fetch_a, state, ctx), _run_fetch(fetch_b, state, ctx)
            )
            if selector == 0:
                outcome = lt
            elif selector == 1:
                outcome = lt | eq
            elif selector == 2:
                outcome = (lt | eq) ^ mask
            elif selector == 3:
                outcome = lt ^ mask
            elif selector == 4:
                outcome = eq
            else:
                outcome = eq ^ mask
            result = [outcome] + [zero] * (width - 1)
        elif code == _MAXMIN:
            cmp_a, cmp_b, fetch_a, fetch_b, is_max = args
            lt, _eq = _compare_planes(
                ctx, _run_fetch(cmp_a, state, ctx), _run_fetch(cmp_b, state, ctx)
            )
            a = _run_fetch(fetch_a, state, ctx)
            b = _run_fetch(fetch_b, state, ctx)
            inverse = lt ^ mask
            result = select(lt, inverse, b, a) if is_max else select(lt, inverse, a, b)
        elif code == _NEG:
            result = negate(ctx, _run_fetch(args[0], state, ctx))
        elif code == _ABS:
            fetch_value, sign_fetch = args
            a = _run_fetch(fetch_value, state, ctx)
            if sign_fetch is None:
                result = a
            else:
                sign = _run_fetch(sign_fetch, state, ctx)[-1]
                result = select(sign, sign ^ mask, negate(ctx, a), a)
        elif code == _AND:
            a = _run_fetch(args[0], state, ctx)
            b = _run_fetch(args[1], state, ctx)
            result = [plane_a & plane_b for plane_a, plane_b in zip(a, b)]
        elif code == _OR:
            a = _run_fetch(args[0], state, ctx)
            b = _run_fetch(args[1], state, ctx)
            result = [plane_a | plane_b for plane_a, plane_b in zip(a, b)]
        elif code == _XOR:
            a = _run_fetch(args[0], state, ctx)
            b = _run_fetch(args[1], state, ctx)
            result = [plane_a ^ plane_b for plane_a, plane_b in zip(a, b)]
        elif code == _NOT:
            result = [plane ^ mask for plane in _run_fetch(args[0], state, ctx)]
        elif code == _SHL:
            source_fetch, amount = args
            source = _run_fetch(source_fetch, state, ctx)
            result = ([zero] * amount + source)[:width]
        elif code == _SHR:
            source_fetch, amount = args
            planes = _run_fetch(source_fetch, state, ctx)[amount:]
            if len(planes) < width:
                planes = planes + [zero] * (width - len(planes))
            result = planes[:width]
        elif code == _CONCAT:
            planes = []
            for fetch in args[0]:
                planes.extend(_run_fetch(fetch, state, ctx))
            planes = planes[:width]
            if len(planes) < width:
                planes = planes + [zero] * (width - len(planes))
            result = planes
        elif code == _SELECT:
            condition = _run_fetch(args[0], state, ctx)[0]
            when_true = _run_fetch(args[1], state, ctx)
            when_false = _run_fetch(args[2], state, ctx)
            result = select(condition, condition ^ mask, when_true, when_false)
        else:  # _MOVE
            result = _run_fetch(args[0], state, ctx)
        if record is not None:
            record.append(result)
        planes = state[dest_uid]
        for position, plane in enumerate(result):
            planes[dest_lo + position] = plane


# ----------------------------------------------------------------------
# Netlist plans
# ----------------------------------------------------------------------
_GATE_AND, _GATE_OR, _GATE_XOR, _GATE_NOT, _GATE_BUF, _GATE_C0, _GATE_C1 = range(7)

_GATE_CODES = {
    GateKind.AND: _GATE_AND,
    GateKind.OR: _GATE_OR,
    GateKind.XOR: _GATE_XOR,
    GateKind.NOT: _GATE_NOT,
    GateKind.BUF: _GATE_BUF,
    GateKind.CONST0: _GATE_C0,
    GateKind.CONST1: _GATE_C1,
}


class NetlistPlan:
    """The compiled program of one levelised combinational netlist."""

    __slots__ = (
        "name",
        "gate_count",
        "net_index",
        "input_count",
        "slot_count",
        "instructions",
    )

    def __init__(
        self,
        name: str,
        gate_count: int,
        net_index: Dict[Any, int],
        input_count: int,
        instructions: List[Tuple[int, int, int, int]],
    ) -> None:
        self.name = name
        self.gate_count = gate_count
        #: every net (inputs first, then gate outputs) -> dense value slot
        self.net_index = net_index
        self.input_count = input_count
        self.slot_count = len(net_index)
        #: ``(gate code, input slot 0, input slot 1 or -1, output slot)``
        self.instructions = instructions


def netlist_plan(netlist: Netlist, order: Sequence[Gate]) -> NetlistPlan:
    """Compile *netlist* given its levelised gate *order*, memoized.

    The order comes from the caller (``NetlistSimulator`` already memoizes
    levelisation); the plan memo is guarded by the gate count, matching
    the append-only discipline of netlists.
    """
    cached = _NETLIST_PLANS.get(netlist)
    if cached is not None and cached.gate_count == len(netlist.gates):
        return cached
    net_index: Dict[Any, int] = {}
    for net in netlist.inputs:
        net_index[net] = len(net_index)
    input_count = len(net_index)
    instructions: List[Tuple[int, int, int, int]] = []
    for gate in order:
        code = _GATE_CODES.get(gate.kind)
        if code is None:
            raise NetlistError(f"unknown gate kind {gate.kind}")
        pins = gate.inputs
        first = net_index[pins[0]] if pins else -1
        second = net_index[pins[1]] if len(pins) > 1 else -1
        output = net_index.setdefault(gate.output, len(net_index))
        instructions.append((code, first, second, output))
    plan = NetlistPlan(
        netlist.name, len(netlist.gates), net_index, input_count, instructions
    )
    _NETLIST_PLANS[netlist] = plan
    return plan


def run_netlist_plan(
    plan: NetlistPlan, ctx: LaneContext, input_planes: Sequence[Plane]
) -> List[Plane]:
    """Evaluate *plan* and return the dense value array (one plane per net).

    ``input_planes`` carries one plane per input net, in ``net_index``
    slot order (slots ``0 .. input_count - 1``).
    """
    values: List[Plane] = list(input_planes) + [ctx.zero] * (
        plan.slot_count - plan.input_count
    )
    mask = ctx.mask
    zero = ctx.zero
    for code, first, second, output in plan.instructions:
        if code == _GATE_AND:
            value = values[first] & values[second]
        elif code == _GATE_OR:
            value = values[first] | values[second]
        elif code == _GATE_XOR:
            value = values[first] ^ values[second]
        elif code == _GATE_NOT:
            value = values[first] ^ mask
        elif code == _GATE_BUF:
            value = values[first]
        elif code == _GATE_C0:
            value = zero
        else:
            value = mask
        values[output] = value
    return values
