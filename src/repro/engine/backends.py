"""Plane storage backends: the portable big-int lane context.

A *plane* is one bit position of a lane-packed batch: bit ``j`` of the
plane is that bit's value in stimulus lane ``j``.  A
:class:`LaneContext` fixes the lane count and materialises the two
distinguished planes every kernel needs (``zero`` and ``mask``), plus the
conversions between planes and plain integers (the interchange format all
public simulation results keep, whatever backend computed them).

The contract every backend honours:

* planes are **immutable by discipline** -- kernels always build new plane
  objects and never update one in place, so planes can be shared freely
  between state slots, sign-extension fills and results;
* the elementwise operators ``&``, ``|``, ``^`` and ``~`` combine planes
  of one context (``~`` may overflow into sign bits or unused lanes; any
  value that escapes a kernel is masked with ``mask`` exactly where the
  historical big-int engines masked);
* ``plane_to_mask(plane_from_mask(x)) == x & mask`` for any ``x``.

The big-int backend here is the semantic reference: its planes are plain
Python integers, so its kernel expressions are *literally* the historical
SWAR expressions of the batch interpreter and the levelised simulator.
"""

from __future__ import annotations

from typing import Any, List, Sequence

#: A plane, typed loosely: ``int`` under the big-int backend, a
#: ``numpy.ndarray`` of little-endian ``uint64`` words under numpy.
Plane = Any


class LaneContext:
    """Shared interface of the plane backends (see the module docstring)."""

    backend: str
    lanes: int
    zero: Plane
    mask: Plane

    def plane_from_mask(self, bits: int) -> Plane:
        raise NotImplementedError

    def plane_to_mask(self, plane: Plane) -> int:
        raise NotImplementedError

    def is_zero(self, plane: Plane) -> bool:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def planes_from_masks(self, masks: Sequence[int]) -> List[Plane]:
        """Convert a list of lane-packed integers into backend planes."""
        return [self.plane_from_mask(mask) for mask in masks]

    def planes_to_masks(self, planes: Sequence[Plane]) -> List[int]:
        """Convert backend planes back into lane-packed integers."""
        return [self.plane_to_mask(plane) for plane in planes]


class BigIntContext(LaneContext):
    """Planes as Python big integers: bit ``j`` of the int is lane ``j``."""

    backend = "bigint"

    def __init__(self, lanes: int) -> None:
        if lanes < 1:
            raise ValueError(f"lane count must be >= 1, got {lanes}")
        self.lanes = lanes
        self.zero = 0
        self.mask = (1 << lanes) - 1

    def plane_from_mask(self, bits: int) -> int:
        return bits & self.mask

    def plane_to_mask(self, plane: int) -> int:
        return plane

    def is_zero(self, plane: int) -> bool:
        return not plane

    def planes_from_masks(self, masks: Sequence[int]) -> List[int]:
        mask = self.mask
        return [value & mask for value in masks]

    def planes_to_masks(self, planes: Sequence[int]) -> List[int]:
        return list(planes)
