"""Numpy plane backend: one little-endian ``uint64`` word array per plane.

Word ``k`` of a plane carries lanes ``64*k .. 64*k+63``, mirroring the bit
order of the big-int backend exactly -- the round trip through
``to_bytes``/``from_bytes`` with ``'little'`` byte order makes the two
layouts byte-identical, so conversions are single memcpy-shaped calls.

Planes are created non-writeable wherever numpy allows it, enforcing the
immutability discipline of :mod:`repro.engine.backends` at runtime: an
accidental in-place update (``^=`` and friends) raises instead of
corrupting a shared sign-extension fill.

This backend pays a fixed per-operation dispatch cost, so it only wins
once planes are wide enough for the word loop to dominate -- the ``auto``
policy in :mod:`repro.engine` holds it back until
:data:`~repro.engine.NUMPY_LANE_THRESHOLD` lanes.
"""

from __future__ import annotations

from typing import List, Sequence

from .backends import LaneContext

try:  # pragma: no cover - import probe
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None


def available() -> bool:
    """True when numpy is importable (the backend can be constructed)."""
    return _np is not None


class NumpyContext(LaneContext):
    """Planes as little-endian ``uint64`` word arrays."""

    backend = "numpy"

    def __init__(self, lanes: int) -> None:
        if _np is None:
            raise RuntimeError(
                "numpy is not importable; install repro[fast] or use the "
                "bigint backend"
            )
        if lanes < 1:
            raise ValueError(f"lane count must be >= 1, got {lanes}")
        self.lanes = lanes
        self.words = (lanes + 63) // 64
        self._byte_length = self.words * 8
        self._int_mask = (1 << lanes) - 1
        zero = _np.zeros(self.words, dtype="<u8")
        zero.flags.writeable = False
        self.zero = zero
        self.mask = self.plane_from_mask(self._int_mask)

    def plane_from_mask(self, bits: int):
        plane = _np.frombuffer(
            (bits & self._int_mask).to_bytes(self._byte_length, "little"),
            dtype="<u8",
        )
        # frombuffer over an immutable bytes object is already read-only.
        return plane

    def plane_to_mask(self, plane) -> int:
        return int.from_bytes(plane.tobytes(), "little")

    def is_zero(self, plane) -> bool:
        return not plane.any()
