"""One bit-plane evaluation core shared by every simulation engine.

Every functional engine in the reproduction -- the scalar
:class:`~repro.simulation.interpreter.Interpreter`, the lane-packed
:class:`~repro.simulation.batch.BatchInterpreter` oracle and the levelised
:class:`~repro.rtl.simulator.NetlistSimulator` batch path -- evaluates the
same algebra: bitwise plane operations plus ripple carries over a
*bit-plane* (bit-sliced) state, where plane ``i`` of a ``w``-bit variable
packs bit ``i`` of every stimulus lane.  Historically each engine carried
its own copy of that loop; this package hoists them onto one core:

* :mod:`repro.engine.backends` -- the plane *storage backends*: Python
  big integers (one arbitrary-precision int per plane, the portable
  default) and numpy ``uint64`` word arrays (:mod:`repro.engine.numpy_backend`,
  used automatically for very wide batches when numpy is importable).
  Both expose the same :class:`~repro.engine.backends.LaneContext` API and
  produce bit-identical results.
* :mod:`repro.engine.kernels` -- the plane kernels (ripple add/increment,
  two's-complement negate, borrow-ripple compare, select masks, the
  partial-product multiplier), written once against the elementwise
  operator set both backends share.
* :mod:`repro.engine.plan` -- compiled evaluation plans: a specification
  or netlist is lowered once into a flat, pre-ordered instruction list
  with pre-resolved operand descriptors, then executed for any lane count
  and backend.  Compilation is memoized per (object, structure version).

Backend selection
-----------------
``resolve_backend`` implements the policy: an explicit name wins, then the
``REPRO_ENGINE`` environment variable, then ``"auto"``.  ``auto`` uses the
big-int backend below :data:`NUMPY_LANE_THRESHOLD` lanes and numpy above
it -- measured on CPython 3.11, big-int bitwise ops (C loops over 30-bit
digits) beat numpy's per-call dispatch overhead until planes reach a few
hundred thousand lanes.  ``"legacy"`` is not a backend: engines that accept
it fall back to their original, pre-plan evaluation loops (kept verbatim
for differential testing).
"""

from __future__ import annotations

import os
from typing import List, Optional

from .backends import BigIntContext, LaneContext
from .kernels import (
    bit_not,
    less_than,
    multiply,
    negate,
    ripple_add,
    ripple_increment,
    select,
)
from .plan import (
    NetlistPlan,
    SpecPlan,
    clear_plan_memo,
    netlist_plan,
    run_netlist_plan,
    run_spec_plan,
    spec_plan,
)

__all__ = [
    "BACKEND_NAMES",
    "NUMPY_LANE_THRESHOLD",
    "BigIntContext",
    "LaneContext",
    "NetlistPlan",
    "SpecPlan",
    "available_backends",
    "bit_not",
    "clear_plan_memo",
    "context_for",
    "has_numpy",
    "less_than",
    "multiply",
    "negate",
    "netlist_plan",
    "resolve_backend",
    "ripple_add",
    "ripple_increment",
    "run_netlist_plan",
    "run_spec_plan",
    "select",
    "spec_plan",
]

#: Engine names engines accept (``legacy`` short-circuits before a backend
#: is ever resolved; it is listed here so config validation lives once).
BACKEND_NAMES = ("auto", "bigint", "numpy", "legacy")

#: ``auto`` switches from big-int planes to numpy word arrays at this lane
#: count.  Below it CPython's big-int bitwise kernels are faster than
#: numpy's per-operation dispatch; the crossover sits near a quarter
#: million lanes (see the module docstring).  Override per process with
#: the ``REPRO_ENGINE_NUMPY_LANES`` environment variable.
NUMPY_LANE_THRESHOLD = 1 << 18


def has_numpy() -> bool:
    """True when the numpy backend is importable in this interpreter."""
    from . import numpy_backend

    return numpy_backend.available()


def available_backends() -> List[str]:
    """The plane backends usable in this interpreter, portable one first."""
    backends = ["bigint"]
    if has_numpy():
        backends.append("numpy")
    return backends


def resolve_backend(name: Optional[str] = None) -> str:
    """Normalise an engine/backend request to a concrete backend name.

    ``None`` defers to the ``REPRO_ENGINE`` environment variable, then to
    ``"auto"``.  ``"auto"`` stays symbolic (the lane count decides, see
    :func:`context_for`).  Unknown names raise ``ValueError``; requesting
    ``"numpy"`` without numpy raises ``RuntimeError`` so a forced backend
    never silently degrades.
    """
    if name is None:
        name = os.environ.get("REPRO_ENGINE", "auto").strip() or "auto"
    if name not in BACKEND_NAMES:
        raise ValueError(
            f"unknown engine {name!r}; expected one of {', '.join(BACKEND_NAMES)}"
        )
    if name == "numpy" and not has_numpy():
        raise RuntimeError(
            "the numpy plane backend was requested but numpy is not "
            "importable (install repro[fast], or use engine='bigint')"
        )
    return name


def _numpy_threshold() -> int:
    raw = os.environ.get("REPRO_ENGINE_NUMPY_LANES")
    if not raw:
        return NUMPY_LANE_THRESHOLD
    return max(1, int(raw))


def context_for(lanes: int, backend: Optional[str] = None) -> LaneContext:
    """A :class:`LaneContext` for *lanes* under the given backend policy.

    ``backend`` accepts the same names as :func:`resolve_backend`;
    ``"legacy"`` is rejected here -- callers must branch to their legacy
    loop before asking for a context.
    """
    name = resolve_backend(backend)
    if name == "legacy":
        raise ValueError("'legacy' is an engine mode, not a plane backend")
    if name == "auto":
        name = (
            "numpy"
            if lanes >= _numpy_threshold() and has_numpy()
            else "bigint"
        )
    if name == "numpy":
        from . import numpy_backend

        return numpy_backend.NumpyContext(lanes)
    return BigIntContext(lanes)
