"""Backend-generic bit-plane kernels.

Each kernel is written once against the elementwise operator set both
plane backends share (``&``, ``|``, ``^``, ``~`` plus the context's
``zero``/``mask`` planes and ``is_zero`` probe).  Under the big-int
backend the expressions below are *exactly* the historical SWAR
expressions of :class:`~repro.simulation.batch.BatchInterpreter`, so the
plan engine is bit-identical to the legacy loop by construction; the
numpy backend evaluates the same expressions wordwise.

All kernels treat plane lists LSB-first (entry ``i`` = bit ``i``) and
never mutate their inputs -- see the immutability discipline in
:mod:`repro.engine.backends`.
"""

from __future__ import annotations

from typing import List, Sequence

from .backends import LaneContext, Plane


def bit_not(ctx: LaneContext, planes: Sequence[Plane]) -> List[Plane]:
    """Per-lane bitwise NOT, masked so unused high lanes stay clear."""
    mask = ctx.mask
    return [plane ^ mask for plane in planes]


def ripple_add(a: Sequence[Plane], b: Sequence[Plane], carry: Plane) -> List[Plane]:
    """Per-lane ``a + b + carry`` over equal-length plane lists.

    The classic software full adder: ``sum = a ^ b ^ c``,
    ``c = (a & b) | (c & (a ^ b))``, rippled from the LSB plane upward.
    """
    out: List[Plane] = []
    for plane_a, plane_b in zip(a, b):
        partial = plane_a ^ plane_b
        out.append(partial ^ carry)
        carry = (plane_a & plane_b) | (carry & partial)
    return out


def ripple_increment(
    ctx: LaneContext, planes: Sequence[Plane], carry: Plane
) -> List[Plane]:
    """Per-lane ``planes + carry`` where *carry* is a 1-bit plane."""
    if ctx.is_zero(carry):
        return list(planes)
    out: List[Plane] = []
    for plane in planes:
        out.append(plane ^ carry)
        carry = carry & plane
    return out


def negate(ctx: LaneContext, planes: Sequence[Plane]) -> List[Plane]:
    """Per-lane two's complement: ``~planes + 1``."""
    mask = ctx.mask
    out: List[Plane] = []
    carry = mask
    for plane in planes:
        inverted = plane ^ mask
        out.append(inverted ^ carry)
        carry = carry & inverted
    return out


def less_than(ctx: LaneContext, a: Sequence[Plane], b: Sequence[Plane]) -> Plane:
    """Unsigned per-lane ``a < b`` over equal-length plane lists, masked."""
    lt = ctx.zero
    for plane_a, plane_b in zip(a, b):
        equal_mask = ~(plane_a ^ plane_b)
        lt = (~plane_a & plane_b) | (equal_mask & lt)
    return lt & ctx.mask


def select(
    mask_plane: Plane,
    inverse: Plane,
    when_set: Sequence[Plane],
    when_clear: Sequence[Plane],
) -> List[Plane]:
    """AND-OR lane multiplexer; *inverse* is ``mask_plane ^ ctx.mask``."""
    return [
        (mask_plane & set_plane) | (inverse & clear_plane)
        for set_plane, clear_plane in zip(when_set, when_clear)
    ]


def multiply(
    ctx: LaneContext, a: Sequence[Plane], b: Sequence[Plane], width: int
) -> List[Plane]:
    """Per-lane ``a * b`` modulo ``2**width`` by partial-product ripple."""
    zero = ctx.zero
    accumulator: List[Plane] = [zero] * width
    for shift, multiplier_plane in enumerate(b):
        if ctx.is_zero(multiplier_plane):
            continue
        carry = zero
        for position in range(shift, width):
            addend = a[position - shift] & multiplier_plane
            current = accumulator[position]
            partial = current ^ addend
            accumulator[position] = partial ^ carry
            carry = (current & addend) | (carry & partial)
    return accumulator
