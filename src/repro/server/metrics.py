"""Server observability: counters and per-endpoint latency histograms.

Everything here is process-local, thread-safe and stdlib-only.  The
``GET /v1/metrics`` endpoint serializes one :meth:`ServerMetrics.snapshot`;
the cache hit/miss counters are fed by the job workers (a *hit* is a row
served from the workspace store, a *miss* is a row the pipeline had to
compute), so ``cache_hits / (cache_hits + cache_misses)`` is the live dedup
ratio of the whole service.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

__all__ = ["LATENCY_BUCKETS_S", "LatencyHistogram", "ServerMetrics"]

#: Fixed upper bounds (seconds) of the request-latency histogram buckets.
#: Fixed buckets keep snapshots mergeable across restarts and scrape-safe
#: (no re-bucketing); the last bucket is the implicit +Inf overflow.
LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


class LatencyHistogram:
    """A fixed-bucket latency histogram (cumulative counts, Prometheus-style)."""

    __slots__ = ("_counts", "_overflow", "_total_s", "_count", "_max_s")

    def __init__(self) -> None:
        self._counts = [0] * len(LATENCY_BUCKETS_S)
        self._overflow = 0
        self._total_s = 0.0
        self._count = 0
        self._max_s = 0.0

    def observe(self, seconds: float) -> None:
        seconds = max(0.0, float(seconds))
        for index, bound in enumerate(LATENCY_BUCKETS_S):
            if seconds <= bound:
                self._counts[index] += 1
                break
        else:
            self._overflow += 1
        self._total_s += seconds
        self._count += 1
        self._max_s = max(self._max_s, seconds)

    @property
    def count(self) -> int:
        return self._count

    def to_dict(self) -> Dict[str, object]:
        buckets: Dict[str, int] = {}
        cumulative = 0
        for bound, bucket_count in zip(LATENCY_BUCKETS_S, self._counts):
            cumulative += bucket_count
            buckets[f"le_{bound:g}"] = cumulative
        buckets["le_inf"] = cumulative + self._overflow
        return {
            "count": self._count,
            "total_s": round(self._total_s, 6),
            "mean_s": round(self._total_s / self._count, 6) if self._count else 0.0,
            "max_s": round(self._max_s, 6),
            "buckets": buckets,
        }


class ServerMetrics:
    """Thread-safe counter set plus per-endpoint latency histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {
            "requests_total": 0,
            "errors_total": 0,
            "jobs_submitted": 0,
            "jobs_deduplicated": 0,
            "cache_hits": 0,
            "cache_misses": 0,
        }
        self._endpoints: Dict[str, LatencyHistogram] = {}

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def observe_request(
        self, endpoint: str, seconds: float, error: bool = False
    ) -> None:
        """Record one served request under its *route template* label.

        Callers pass the template (``GET /v1/jobs/{id}``), never the raw
        path -- labels stay bounded no matter how many jobs exist.
        """
        with self._lock:
            self._counters["requests_total"] += 1
            if error:
                self._counters["errors_total"] += 1
            histogram = self._endpoints.get(endpoint)
            if histogram is None:
                histogram = self._endpoints[endpoint] = LatencyHistogram()
            histogram.observe(seconds)

    def snapshot(
        self,
        jobs_by_state: Optional[Dict[str, int]] = None,
        queue_depth: Optional[int] = None,
    ) -> Dict[str, object]:
        """One JSON-serializable view of every counter and histogram."""
        with self._lock:
            counters = dict(self._counters)
            endpoints = {
                endpoint: histogram.to_dict()
                for endpoint, histogram in sorted(self._endpoints.items())
            }
        hits, misses = counters["cache_hits"], counters["cache_misses"]
        total_rows = hits + misses
        body: Dict[str, object] = {
            "counters": counters,
            "cache_hit_ratio": round(hits / total_rows, 4) if total_rows else None,
            "endpoints": endpoints,
        }
        if jobs_by_state is not None:
            body["jobs"] = jobs_by_state
        if queue_depth is not None:
            body["queue_depth"] = queue_depth
        return body
