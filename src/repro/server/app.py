"""The HTTP front door: a threaded JSON API over :class:`JobManager`.

Stdlib-only (``http.server``).  Endpoints (all under ``/v1``):

=========  ==============================  =======================================
Method     Path                            Meaning
=========  ==============================  =======================================
POST       ``/v1/studies``                 submit ``{"study": name-or-object}``
GET        ``/v1/jobs/{id}``               job status + per-point progress
GET        ``/v1/jobs/{id}/report``        presentation rows + raw reports
GET        ``/v1/jobs/{id}/verilog/{pt}``  emitted RTL of one point (text/plain)
DELETE     ``/v1/jobs/{id}``               cooperative cancel
GET        ``/v1/jobs``                    all jobs (newest state)
GET        ``/v1/healthz``                 liveness + workspace identity
GET        ``/v1/metrics``                 counters, queue depth, latency
=========  ==============================  =======================================

Every error body is the uniform envelope of :mod:`repro.server.errors`.
Request latencies are recorded per route *template* (``GET /v1/jobs/{id}``),
never per raw path, so metric labels stay bounded.

:func:`create_server` binds (port 0 = ephemeral) without blocking;
:func:`serve` is the CLI entry that also writes an optional ready file
(``host port`` once bound -- the hook CI and tests synchronize on).
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from ..api.workspace import Workspace
from .errors import ApiError, error_envelope
from .jobs import JobManager
from .metrics import ServerMetrics

__all__ = ["ReproHTTPServer", "create_server", "serve"]

_JOB_ROUTE = re.compile(r"^/v1/jobs/([A-Za-z0-9_.-]+)$")
_REPORT_ROUTE = re.compile(r"^/v1/jobs/([A-Za-z0-9_.-]+)/report$")
_VERILOG_ROUTE = re.compile(r"^/v1/jobs/([A-Za-z0-9_.-]+)/verilog/([A-Za-z0-9_.:-]+)$")

#: Largest accepted request body; a submit payload is a study description,
#: anything bigger is a client bug, not a bigger study.
MAX_BODY_BYTES = 1 << 20


class ReproHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that owns the job manager and metrics."""

    daemon_threads = True

    def __init__(
        self, address: Tuple[str, int], manager: JobManager
    ) -> None:
        super().__init__(address, _Handler)
        self.manager = manager
        self.metrics = manager.metrics


class _Handler(BaseHTTPRequestHandler):
    server: ReproHTTPServer
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # metrics, not stderr chatter

    def _send_json(self, status: int, body: Dict[str, Any]) -> None:
        payload = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_text(self, status: int, text: str) -> None:
        payload = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _read_body(self) -> Dict[str, Any]:
        length_header = self.headers.get("Content-Length")
        try:
            length = int(length_header or "0")
        except ValueError:
            raise ApiError("SRV001", "invalid Content-Length header") from None
        if length <= 0:
            raise ApiError("SRV001", "request body required")
        if length > MAX_BODY_BYTES:
            raise ApiError(
                "SRV001",
                f"request body exceeds {MAX_BODY_BYTES} bytes",
                http_status=413,
            )
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise ApiError("SRV001", f"request body is not JSON: {error}") from None
        if not isinstance(body, dict):
            raise ApiError("SRV001", "request body must be a JSON object")
        return body

    # -- routing -------------------------------------------------------
    def _dispatch(self, method: str) -> None:
        started = time.perf_counter()
        endpoint, thunk = self._resolve(method)
        error = False
        try:
            if thunk is None:
                raise ApiError(
                    "SRV008", f"no route for {method} {self.path}", http_status=404
                )
            thunk()
        except ApiError as api_error:
            error = True
            self._send_json(api_error.http_status, error_envelope(api_error))
        except Exception as unexpected:  # noqa: BLE001 - never leak a traceback
            error = True
            internal = ApiError(
                "SRV001",
                f"internal error: {type(unexpected).__name__}: {unexpected}",
                http_status=500,
            )
            self._send_json(internal.http_status, error_envelope(internal))
        finally:
            self.server.metrics.observe_request(
                endpoint, time.perf_counter() - started, error=error
            )

    def _resolve(self, method: str) -> Tuple[str, Optional[Any]]:
        """Map the request to (route template, handler thunk).

        The template is resolved *before* the handler runs, so error
        responses are metered under the same bounded label as successes.
        Unroutable requests get the catch-all ``<unmatched>`` label (never
        the raw path -- labels must stay bounded).
        """
        manager = self.server.manager
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if method == "GET" and path == "/v1/healthz":
            return "GET /v1/healthz", lambda: self._send_json(
                200,
                {
                    "status": "ok",
                    "workspace": str(manager.workspace.root),
                    "reattached_jobs": manager.reattached_jobs,
                },
            )
        if method == "GET" and path == "/v1/metrics":
            return "GET /v1/metrics", lambda: self._send_json(
                200,
                manager.metrics.snapshot(
                    jobs_by_state=manager.jobs_by_state(),
                    queue_depth=manager.queue_depth,
                ),
            )
        if method == "POST" and path == "/v1/studies":
            def submit() -> None:
                body = self._read_body()
                if "study" not in body:
                    raise ApiError("SRV001", "missing required field 'study'")
                self._send_json(202, manager.submit(body["study"]))

            return "POST /v1/studies", submit
        if method == "GET" and path == "/v1/jobs":
            return "GET /v1/jobs", lambda: self._send_json(
                200, {"jobs": manager.list_jobs()}
            )
        match = _REPORT_ROUTE.match(path)
        if match and method == "GET":
            job_id = match.group(1)
            return "GET /v1/jobs/{id}/report", lambda: self._send_json(
                200, manager.report(job_id)
            )
        match = _VERILOG_ROUTE.match(path)
        if match and method == "GET":
            job_id, point_id = match.group(1), match.group(2)
            return "GET /v1/jobs/{id}/verilog/{point}", lambda: self._send_text(
                200, manager.verilog(job_id, point_id)
            )
        match = _JOB_ROUTE.match(path)
        if match and method == "GET":
            job_id = match.group(1)
            return "GET /v1/jobs/{id}", lambda: self._send_json(
                200, manager.get(job_id).to_public_dict()
            )
        if match and method == "DELETE":
            job_id = match.group(1)
            return "DELETE /v1/jobs/{id}", lambda: self._send_json(
                200, manager.cancel(job_id)
            )
        return f"{method} <unmatched>", None

    # -- verbs ---------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    def do_PUT(self) -> None:  # noqa: N802
        self._dispatch("PUT")


def create_server(
    workspace: Union[str, Path, Workspace],
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 2,
    queue_size: int = 64,
    point_workers: Optional[int] = None,
    metrics: Optional[ServerMetrics] = None,
) -> ReproHTTPServer:
    """Bind the API server (without serving) and boot its job manager.

    ``port=0`` binds an ephemeral port -- read the real one from
    ``server.server_address``.  The caller owns the lifecycle: call
    ``serve_forever()`` (usually on a thread), then ``shutdown()`` plus
    ``manager.shutdown()`` to stop.
    """
    if not isinstance(workspace, Workspace):
        workspace = Workspace(workspace)
    manager = JobManager(
        workspace,
        workers=workers,
        queue_size=queue_size,
        point_workers=point_workers,
        metrics=metrics,
    )
    return ReproHTTPServer((host, port), manager)


def serve(
    workspace: Union[str, Path],
    host: str = "127.0.0.1",
    port: int = 8321,
    workers: int = 2,
    queue_size: int = 64,
    point_workers: Optional[int] = None,
    ready_file: Optional[str] = None,
) -> int:
    """Run the server until interrupted (the ``repro serve`` entry point).

    When ``ready_file`` is given, ``host port`` is written to it once the
    socket is bound -- scripts and CI poll that file instead of racing the
    boot (essential with ``--port 0``).
    """
    server = create_server(
        workspace,
        host=host,
        port=port,
        workers=workers,
        queue_size=queue_size,
        point_workers=point_workers,
    )
    bound_host, bound_port = server.server_address[0], server.server_address[1]
    if ready_file:
        ready = Path(ready_file)
        tmp = ready.with_suffix(ready.suffix + ".tmp")
        tmp.write_text(f"{bound_host} {bound_port}\n", encoding="utf-8")
        tmp.replace(ready)
    print(f"repro server listening on http://{bound_host}:{bound_port}")
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        while thread.is_alive():
            thread.join(0.25)
        return 0
    except KeyboardInterrupt:
        return 130
    finally:
        server.shutdown()
        server.manager.shutdown()
        server.server_close()
