"""Job lifecycle behind the HTTP API: bounded queue, workers, persistence.

A *job* is one submitted :class:`~repro.api.study.Study`.  The manager keeps
a bounded FIFO queue feeding a fixed pool of worker threads; each worker
drives :meth:`Workspace.run_study` (which itself fans points across the
:class:`~repro.api.sweep.SweepEngine`), so all persistence, resumability
and retry semantics are the workspace's -- the job layer adds identity,
queuing, cancellation and restart re-attach on top:

* **Dedup.** A job's identity is the SHA-256 of its study's canonical
  :meth:`~repro.api.study.Study.to_dict` form.  Submitting a study already
  queued or running coalesces onto the live job (no second computation);
  submitting one that already *ran* creates a new job whose points all
  replay from the workspace store (zero recompute), and
  :meth:`Workspace.adopt_rows` extends that to configs computed under any
  other study name.
* **Persistence.** Job records live in ``server_jobs.json`` in the
  workspace root (atomic tmp+rename writes).  On boot the manager reloads
  it and re-enqueues every job that was queued or running when the previous
  process died -- their completed rows re-attach from the manifest, so a
  crash mid-job costs only the points that had not finished.
* **Cancellation.** ``DELETE`` sets the job's cancel event; a queued job
  settles immediately, a running one stops cooperatively at the next point
  boundary (completed rows stay persisted).
"""

from __future__ import annotations

import hashlib
import json
import queue
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..api.study import Study, StudyError, builtin_study, study_from_dict
from ..api.workspace import PointResult, Workspace
from .errors import ApiError
from .metrics import ServerMetrics

__all__ = ["Job", "JobManager", "JOBS_FILE_NAME", "study_digest"]

#: Job records file, kept in the workspace root next to ``manifest.json``.
JOBS_FILE_NAME = "server_jobs.json"

#: Format marker of ``server_jobs.json``.
JOBS_SCHEMA_VERSION = 1

#: Job states.  ``queued -> running -> done | failed | cancelled``.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

_ACTIVE_STATES = ("queued", "running")


def study_digest(study: Study) -> str:
    """The job-identity hash: SHA-256 of the canonical study description.

    Covers exactly what :meth:`Study.to_dict` covers -- the declaration
    (name, base, expansions, retry).  Two submissions with equal digests
    resolve the same point set, so an active job can absorb the second one.
    """
    canonical = json.dumps(study.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def resolve_study(spec: Any) -> Study:
    """Turn a submission payload into a Study (name or inline description)."""
    if isinstance(spec, str):
        try:
            return builtin_study(spec)
        except StudyError as error:
            raise ApiError("SRV003", str(error), http_status=404) from None
    if isinstance(spec, dict):
        try:
            study = study_from_dict(spec)
            study.points()  # expand now: invalid configs fail at submit time
            return study
        except (StudyError, ValueError, TypeError) as error:
            raise ApiError("SRV002", str(error), http_status=422) from None
    raise ApiError(
        "SRV002",
        f"'study' must be a name or an object, got {type(spec).__name__}",
        http_status=422,
    )


class Job:
    """One submitted study and its lifecycle state (thread-safe)."""

    def __init__(self, job_id: str, study: Study, digest: str) -> None:
        self.job_id = job_id
        self.study = study
        self.digest = digest
        self.cancel_event = threading.Event()
        self._lock = threading.Lock()
        self._status = "queued"
        self._submitted_at = time.time()
        self._started_at: Optional[float] = None
        self._finished_at: Optional[float] = None
        self._done_points = 0
        self._summary: Optional[Dict[str, Any]] = None
        self._errors: List[Dict[str, Any]] = []
        self._failure: Optional[str] = None

    # -- state transitions (called by the manager/worker only) ---------
    @property
    def status(self) -> str:
        with self._lock:
            return self._status

    def _set_status(self, status: str) -> None:
        with self._lock:
            self._status = status
            if status == "running":
                self._started_at = time.time()
            elif status in ("done", "failed", "cancelled"):
                self._finished_at = time.time()

    def _observe_point(self, result: PointResult) -> None:
        with self._lock:
            self._done_points += 1
            if result.source == "error":
                self._errors.append(
                    {
                        "point_id": result.point.point_id,
                        "error_code": result.error_code,
                        "message": result.error,
                    }
                )

    def _finish(self, summary: Dict[str, Any], status: str) -> None:
        with self._lock:
            self._summary = summary
        self._set_status(status)

    def _fail(self, message: str) -> None:
        with self._lock:
            self._failure = message
        self._set_status("failed")

    @property
    def active(self) -> bool:
        return self.status in _ACTIVE_STATES

    def to_public_dict(self) -> Dict[str, Any]:
        """The ``GET /v1/jobs/{id}`` body."""
        with self._lock:
            body: Dict[str, Any] = {
                "job_id": self.job_id,
                "study": self.study.name,
                "digest": self.digest,
                "status": self._status,
                "total_points": len(self.study),
                "done_points": self._done_points,
                "errors": list(self._errors),
                "submitted_at": self._submitted_at,
                "started_at": self._started_at,
                "finished_at": self._finished_at,
            }
            if self._summary is not None:
                body["summary"] = dict(self._summary)
            if self._failure is not None:
                body["failure"] = self._failure
            return body

    def to_record(self) -> Dict[str, Any]:
        """The persisted ``server_jobs.json`` record (includes the study)."""
        record = self.to_public_dict()
        record["study_description"] = self.study.to_dict()
        return record


class JobManager:
    """Bounded FIFO queue + worker pool over one shared workspace."""

    def __init__(
        self,
        workspace: Workspace,
        workers: int = 2,
        queue_size: int = 64,
        point_workers: Optional[int] = None,
        executor: Optional[str] = None,
        metrics: Optional[ServerMetrics] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {queue_size}")
        self.workspace = workspace
        self.metrics = metrics if metrics is not None else ServerMetrics()
        self.point_workers = point_workers
        self.executor = executor
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue(maxsize=queue_size)
        self._jobs: Dict[str, Job] = {}
        self._lock = threading.Lock()
        self._shutdown = threading.Event()
        self._reattached = self._load_records()
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-job-worker-{n}", daemon=True
            )
            for n in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Persistence / restart re-attach
    # ------------------------------------------------------------------
    @property
    def jobs_path(self) -> Path:
        return self.workspace.root / JOBS_FILE_NAME

    @property
    def reattached_jobs(self) -> int:
        """How many unfinished jobs boot re-enqueued from the records file."""
        return self._reattached

    def _load_records(self) -> int:
        """Reload ``server_jobs.json``; re-enqueue unfinished jobs.

        Finished jobs come back verbatim (their reports replay from the
        manifest).  Jobs that were queued or running when the previous
        server died are re-enqueued: completed points load from the store,
        only the remainder runs.  An unreadable records file is ignored --
        the manifest, not this file, is the source of truth for rows.
        """
        reattached = 0
        try:
            data = json.loads(self.jobs_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return 0
        for record in data.get("jobs", []) if isinstance(data, dict) else []:
            try:
                study = study_from_dict(record["study_description"])
                job = Job(record["job_id"], study, record["digest"])
            except (KeyError, TypeError, StudyError):
                continue
            status = record.get("status")
            if status in _ACTIVE_STATES:
                job._set_status("queued")
                try:
                    self._queue.put_nowait(job)
                    reattached += 1
                except queue.Full:
                    job._fail("job queue full during restart re-attach")
            else:
                job._status = status if status in JOB_STATES else "failed"
                job._summary = record.get("summary")
                job._done_points = int(record.get("done_points") or 0)
                job._errors = list(record.get("errors") or [])
                job._failure = record.get("failure")
            self._jobs[job.job_id] = job
        if reattached:
            self._save_records()
        return reattached

    def _save_records(self) -> None:
        with self._lock:
            jobs = list(self._jobs.values())
        body = {
            "schema_version": JOBS_SCHEMA_VERSION,
            "jobs": [job.to_record() for job in jobs],
        }
        tmp = self.jobs_path.with_suffix(".tmp")
        try:
            tmp.write_text(
                json.dumps(body, indent=2, sort_keys=True), encoding="utf-8"
            )
            tmp.replace(self.jobs_path)
        except OSError:
            # Job records are an index over the manifest, never the truth;
            # failing to persist them degrades restart UX, not correctness.
            pass

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def submit(self, spec: Any) -> Dict[str, Any]:
        """Submit a study (name or inline dict); returns the submit body.

        An equal-digest job that is still queued or running absorbs the
        submission (``deduplicated: true``); otherwise a new job is
        enqueued.  A full queue is a client-visible SRV005, not a block.
        """
        if self._shutdown.is_set():
            raise ApiError("SRV009", "server is shutting down", http_status=503)
        study = resolve_study(spec)
        digest = study_digest(study)
        with self._lock:
            for existing in self._jobs.values():
                if existing.digest == digest and existing.active:
                    self.metrics.inc("jobs_deduplicated")
                    return {
                        "job_id": existing.job_id,
                        "status": existing.status,
                        "study": existing.study.name,
                        "total_points": len(existing.study),
                        "deduplicated": True,
                    }
            job = Job(f"job-{uuid.uuid4().hex[:12]}", study, digest)
            self._jobs[job.job_id] = job
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            with self._lock:
                self._jobs.pop(job.job_id, None)
            raise ApiError(
                "SRV005",
                f"job queue is full ({self._queue.maxsize} pending)",
                http_status=429,
            ) from None
        self.metrics.inc("jobs_submitted")
        self._save_records()
        return {
            "job_id": job.job_id,
            "status": job.status,
            "study": study.name,
            "total_points": len(study),
            "deduplicated": False,
        }

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ApiError("SRV004", f"no job {job_id!r}", http_status=404)
        return job

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Cooperatively cancel a job; idempotent on finished jobs."""
        job = self.get(job_id)
        job.cancel_event.set()
        # A queued job may settle only when a worker picks it up; that is
        # fine -- the worker sees the set event before submitting any work.
        return {"job_id": job.job_id, "status": job.status, "cancelling": job.active}

    def report(self, job_id: str) -> Dict[str, Any]:
        """Presentation rows of a *done* job (SRV006 otherwise)."""
        job = self.get(job_id)
        if job.status != "done":
            raise ApiError(
                "SRV006",
                f"job {job_id!r} is {job.status}, not done",
                http_status=409,
            )
        return {
            "job_id": job.job_id,
            "study": job.study.name,
            "row_kind": job.study.row_kind,
            "rows": self.workspace.rows(job.study),
            "reports": self.workspace.reports(job.study),
        }

    def verilog(self, job_id: str, point_id: str) -> str:
        """Rendered Verilog of one emitted point, cached under the workspace.

        Requires the point's config to have ``emit=True`` (SRV007
        otherwise).  The text is rendered once per point and cached in
        ``<workspace>/verilog/<point_id>.v``; the emission re-runs the
        pipeline for that config, which is deterministic, so the cache is
        write-once.
        """
        job = self.get(job_id)
        point = next(
            (p for p in job.study.points() if p.point_id == point_id), None
        )
        if point is None:
            raise ApiError(
                "SRV007",
                f"job {job_id!r} has no point {point_id!r}",
                http_status=404,
            )
        if not point.config.emit:
            raise ApiError(
                "SRV007",
                f"point {point_id!r} was not run with emit=true; "
                "resubmit the study with emit enabled to get RTL",
                http_status=404,
            )
        cache = self.workspace.root / "verilog" / f"{point_id}.v"
        if cache.exists():
            return cache.read_text(encoding="utf-8")
        from ..api.pipeline import Pipeline
        from ..rtl.verilog import render_verilog

        artifact = Pipeline().run(point.config)
        assert artifact.emission is not None  # emit=True guarantees the pass
        text = render_verilog(artifact.emission.design)
        cache.parent.mkdir(parents=True, exist_ok=True)
        tmp = cache.with_suffix(".tmp")
        tmp.write_text(text, encoding="utf-8")
        tmp.replace(cache)
        return text

    def jobs_by_state(self) -> Dict[str, int]:
        with self._lock:
            jobs = list(self._jobs.values())
        counts = {state: 0 for state in JOB_STATES}
        for job in jobs:
            counts[job.status] = counts.get(job.status, 0) + 1
        return counts

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    def list_jobs(self) -> List[Dict[str, Any]]:
        with self._lock:
            jobs = sorted(self._jobs.values(), key=lambda job: job.job_id)
        return [job.to_public_dict() for job in jobs]

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:  # shutdown sentinel
                self._queue.task_done()
                return
            try:
                self._run_job(job)
            finally:
                self._queue.task_done()
                self._save_records()

    def _run_job(self, job: Job) -> None:
        if job.cancel_event.is_set():
            job._set_status("cancelled")
            return
        job._set_status("running")
        try:
            # Cross-study dedup: configs some other study already computed
            # become this study's rows before the engine sees them.
            self.workspace.adopt_rows(job.study)
            result = self.workspace.run_study(
                job.study,
                max_workers=self.point_workers,
                executor=self.executor,
                progress=lambda point_result, done, total: job._observe_point(
                    point_result
                ),
                cancel_event=job.cancel_event,
            )
        except Exception as error:  # noqa: BLE001 - jobs never kill workers
            job._fail(f"{type(error).__name__}: {error}")
            return
        self.metrics.inc("cache_hits", result.loaded)
        self.metrics.inc("cache_misses", result.ran)
        if result.cancelled:
            status = "cancelled"
        elif result.complete:
            status = "done"
        else:
            status = "failed"
        job._finish(result.summary(), status)

    def shutdown(self, wait: bool = True, timeout_s: float = 10.0) -> None:
        """Stop accepting jobs and stop the workers (queued jobs cancel)."""
        self._shutdown.set()
        drained: List[Job] = []
        while True:
            try:
                pending = self._queue.get_nowait()
            except queue.Empty:
                break
            if pending is not None:
                drained.append(pending)
            self._queue.task_done()
        for job in drained:
            job._set_status("cancelled")
        for _ in self._workers:
            self._queue.put(None)
        if wait:
            deadline = time.time() + timeout_s
            for worker in self._workers:
                worker.join(max(0.0, deadline - time.time()))
        self._save_records()
