"""Stable API error codes and the uniform JSON error envelope.

Every failure the HTTP API can hand a client carries a ``SRVnnn`` code from
:data:`SERVER_CODE_REGISTRY` -- the service-layer sibling of the runtime's
:data:`~repro.api.resilience.RUN_CODE_REGISTRY`.  The namespace is stable:
append, never renumber.  Handlers raise :class:`ApiError`; the HTTP layer
turns it into the one envelope shape every error response shares::

    {"error": {"code": "SRV004", "title": "unknown job id",
               "message": "no job 'job-deadbeef'"}}

so clients can branch on ``error.code`` without parsing prose.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = [
    "SERVER_CODE_REGISTRY",
    "ApiError",
    "error_envelope",
    "server_error_title",
]

#: code -> one-line title.  Stable namespace: append, never renumber.
SERVER_CODE_REGISTRY: Dict[str, str] = {
    "SRV001": "malformed request",
    "SRV002": "invalid study or config",
    "SRV003": "unknown study name",
    "SRV004": "unknown job id",
    "SRV005": "job queue full",
    "SRV006": "job not complete",
    "SRV007": "artifact not available",
    "SRV008": "unknown endpoint or method",
    "SRV009": "server shutting down",
}


def server_error_title(code: str) -> str:
    """Title of a registered ``SRVnnn`` code; raises on unknown codes.

    Mirrors :func:`repro.api.resilience.run_error_title`: a typo'd code
    fails loudly instead of minting a new namespace entry.
    """
    try:
        return SERVER_CODE_REGISTRY[code]
    except KeyError:
        raise ValueError(f"unregistered server error code {code!r}") from None


class ApiError(Exception):
    """An API failure with a stable code and an HTTP status.

    The handler layer raises these; nothing else escapes to the client.
    """

    def __init__(
        self,
        code: str,
        message: str,
        http_status: int = 400,
        detail: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.code = code
        self.title = server_error_title(code)
        self.message = message
        self.http_status = http_status
        self.detail = detail
        super().__init__(f"{code}: {message}")


def error_envelope(error: ApiError) -> Dict[str, Any]:
    """The uniform JSON body of every error response."""
    body: Dict[str, Any] = {
        "error": {
            "code": error.code,
            "title": error.title,
            "message": error.message,
        }
    }
    if error.detail:
        body["error"]["detail"] = error.detail
    return body
