"""Stdlib HTTP client for the repro server (``urllib``, no dependencies).

The client the ``repro submit``/``repro poll`` CLI verbs, the examples and
the load benchmark all share.  Server-side failures surface as
:class:`ClientError` carrying the ``SRVnnn`` code from the error envelope,
so callers branch on ``error.code`` exactly like raw-HTTP clients do.

Quick start::

    from repro.server.client import SynthesisClient

    client = SynthesisClient("http://127.0.0.1:8321")
    job = client.submit("table1")
    final = client.wait(job["job_id"])
    rows = client.report(job["job_id"])["rows"]
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional, Union

from ..api.study import Study

__all__ = ["ClientError", "SynthesisClient"]


class ClientError(RuntimeError):
    """An API error response, decoded from the uniform envelope."""

    def __init__(self, http_status: int, code: str, message: str) -> None:
        self.http_status = http_status
        self.code = code
        self.message = message
        super().__init__(f"[{http_status}] {code}: {message}")


class SynthesisClient:
    """Thin JSON-over-HTTP client for one repro server."""

    def __init__(self, base_url: str, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Any:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
                return self._decode(response.headers.get("Content-Type", ""),
                                    response.read())
        except urllib.error.HTTPError as error:
            raise self._as_client_error(error) from None

    @staticmethod
    def _decode(content_type: str, raw: bytes) -> Any:
        if content_type.startswith("application/json"):
            return json.loads(raw.decode("utf-8"))
        return raw.decode("utf-8")

    @staticmethod
    def _as_client_error(error: urllib.error.HTTPError) -> ClientError:
        code, message = "SRV001", error.reason or "request failed"
        try:
            body = json.loads(error.read().decode("utf-8"))
            envelope = body.get("error", {})
            code = envelope.get("code", code)
            message = envelope.get("message", message)
        except Exception:  # noqa: BLE001 - a non-envelope body keeps defaults
            pass
        return ClientError(error.code, code, message)

    # ------------------------------------------------------------------
    # API verbs
    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/metrics")

    def submit(self, study: Union[str, Study, Dict[str, Any]]) -> Dict[str, Any]:
        """Submit a built-in name, a :class:`Study` or its dict form."""
        spec: Union[str, Dict[str, Any]]
        if isinstance(study, Study):
            spec = study.to_dict()
        else:
            spec = study
        return self._request("POST", "/v1/studies", {"study": spec})

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/jobs")

    def report(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}/report")

    def verilog(self, job_id: str, point_id: str) -> str:
        return self._request("GET", f"/v1/jobs/{job_id}/verilog/{point_id}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def wait(
        self,
        job_id: str,
        timeout_s: float = 120.0,
        poll_s: float = 0.05,
    ) -> Dict[str, Any]:
        """Poll until the job leaves the queued/running states.

        Returns the final job body whatever the terminal state is (the
        caller decides whether ``failed``/``cancelled`` is an error);
        raises :class:`TimeoutError` when the deadline passes first.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            body = self.job(job_id)
            if body.get("status") not in ("queued", "running"):
                return body
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id!r} still {body.get('status')} "
                    f"after {timeout_s:g}s"
                )
            time.sleep(poll_s)
