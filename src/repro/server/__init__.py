"""Synthesis-as-a-service: an HTTP job layer over Workspace/Study.

The network front door of the reproduction (stdlib-only): a threaded JSON
API that accepts :class:`~repro.api.study.Study` submissions, feeds them
through a bounded FIFO queue into worker threads driving
:meth:`~repro.api.workspace.Workspace.run_study`, and persists every row in
one shared content-addressed workspace -- so identical configs from
different jobs and clients cost exactly one computation, resubmitted
studies replay from the store with zero recompute, and jobs survive server
restarts (unfinished ones re-attach to the manifest on boot).

Layers (each importable on its own):

* :mod:`repro.server.errors` -- stable ``SRVnnn`` codes + the JSON error
  envelope (mirrors the runtime's ``RUN0xx`` registry);
* :mod:`repro.server.metrics` -- counters, cache hit/miss ratio and
  per-endpoint latency histograms behind ``GET /v1/metrics``;
* :mod:`repro.server.jobs` -- :class:`JobManager`: dedup by study digest,
  queue, workers, cancellation, ``server_jobs.json`` persistence;
* :mod:`repro.server.app` -- the ``http.server`` front end and the
  ``repro serve`` entry point;
* :mod:`repro.server.client` -- the ``urllib`` client the CLI verbs,
  examples and the load benchmark share.

Quick start::

    # terminal 1
    python -m repro serve --workspace .repro-workspace --port 8321

    # terminal 2
    python -m repro submit table1 --url http://127.0.0.1:8321 --wait
"""

from .app import ReproHTTPServer, create_server, serve
from .client import ClientError, SynthesisClient
from .errors import SERVER_CODE_REGISTRY, ApiError, error_envelope, server_error_title
from .jobs import Job, JobManager, study_digest
from .metrics import LatencyHistogram, ServerMetrics

__all__ = [
    "SERVER_CODE_REGISTRY",
    "ApiError",
    "ClientError",
    "Job",
    "JobManager",
    "LatencyHistogram",
    "ReproHTTPServer",
    "ServerMetrics",
    "SynthesisClient",
    "create_server",
    "error_envelope",
    "serve",
    "server_error_title",
    "study_digest",
]
