"""The end-to-end presynthesis transformation.

:class:`BehaviouralTransformer` chains the three phases of the paper's
optimization method:

1. operative kernel extraction (:mod:`repro.core.kernel`),
2. clock-cycle estimation (:mod:`repro.core.timing`),
3. fragmentation of operations (:mod:`repro.core.fragmentation`) followed by
   the specification rewrite (:mod:`repro.core.rewrite`),

and returns a :class:`TransformResult` bundling the original, kernel-extracted
and optimized specifications together with the cycle budget and the fragment
inventory.  The optimized specification is validated structurally and -- when
requested -- checked for functional equivalence against the original before it
is returned, so downstream synthesis can trust it blindly.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Optional, Tuple

from ..ir.spec import Specification
from ..ir.validate import require_valid
from ..simulation.equivalence import EquivalenceReport, assert_equivalent
from .fragmentation import FragmentationResult, fragment_specification
from .kernel import ExtractionResult, extract_kernel
from .rewrite import RewriteResult, rewrite_specification
from .timing import CycleEstimate, critical_path_bits, estimate_cycle_budget


@dataclass(frozen=True)
class TransformOptions:
    """Knobs of the transformation.

    Parameters
    ----------
    check_equivalence:
        Co-simulate the optimized specification against the original over the
        default stimulus set and refuse to return a non-equivalent result.
        On by default; experiments over large benchmark sets can disable it
        for speed once the property tests have established confidence.
    equivalence_vectors:
        Number of random vectors used by the equivalence check.
    equivalence_seed:
        Seed of the random stimulus generator behind the equivalence check.
    equivalence_chunk_lanes:
        Lane count of one batch-engine equivalence chunk (``None`` = the
        engine default).  Any positive value yields the same report.
    equivalence_backend:
        Bit-plane core under the equivalence check's batch engine
        (``None``/``"auto"``, ``"bigint"``, ``"numpy"``, ``"legacy"``).
        Every choice is bit-identical.
    chained_bits_override:
        Force a specific per-cycle chained-bit budget instead of the phase-2
        estimate (used by ablation experiments).
    validate_input / validate_output:
        Run structural validation on the incoming and produced specifications.
    """

    check_equivalence: bool = True
    equivalence_vectors: int = 50
    equivalence_seed: int = 2005
    equivalence_chunk_lanes: Optional[int] = None
    equivalence_backend: Optional[str] = None
    chained_bits_override: Optional[int] = None
    validate_input: bool = True
    validate_output: bool = True


@dataclass
class TransformResult:
    """Everything produced by one run of the transformation."""

    original: Specification
    latency: int
    kernel: ExtractionResult
    cycle_estimate: CycleEstimate
    fragmentation: FragmentationResult
    rewrite: RewriteResult
    equivalence: Optional[EquivalenceReport] = None

    @property
    def transformed(self) -> Specification:
        """The optimized specification (the paper's Fig. 2 a artefact)."""
        return self.rewrite.specification

    @property
    def chained_bits_per_cycle(self) -> int:
        """The per-cycle chained-bit budget actually used (phase 2 + feasibility)."""
        return self.fragmentation.chained_bits_per_cycle

    @property
    def critical_path_bits(self) -> int:
        return self.cycle_estimate.critical_path_bits

    def operation_growth(self) -> float:
        """Relative operation-count growth, original vs optimized specification.

        The paper reports roughly 30-34% more operations after the
        transformation; glue logic (wiring moves, slices) is excluded from the
        count on both sides since it synthesises to wires.
        """
        original_count = self.original.additive_operation_count()
        transformed_count = self.transformed.additive_operation_count()
        if original_count == 0:
            return 0.0
        return (transformed_count - original_count) / original_count

    def summary(self) -> str:
        lines = [
            f"transformation of {self.original.name} (latency {self.latency})",
            f"  critical path: {self.critical_path_bits} chained 1-bit additions",
            f"  cycle budget : {self.chained_bits_per_cycle} chained bits per cycle",
            f"  operations   : {self.original.additive_operation_count()} additive -> "
            f"{self.transformed.additive_operation_count()} additive "
            f"({self.operation_growth() * 100:+.1f}%)",
            f"  fragments    : {self.fragmentation.fragment_count()} over "
            f"{len(self.fragmentation.fragments)} operations "
            f"({len(self.fragmentation.fragmented_operations())} actually split)",
        ]
        if self.equivalence is not None:
            status = "passed" if self.equivalence.equivalent else "FAILED"
            lines.append(
                f"  equivalence  : {status} ({self.equivalence.vectors_checked} vectors)"
            )
        return "\n".join(lines)


#: Phase-1 results memoized per input specification (latency-independent).
#: A latency sweep transforms the same workload a dozen times; the kernel
#: extraction and the critical-path measurement depend only on the input
#: structure, so they are shared across every sweep point.  Weak keys keep
#: discarded specifications collectable; the structure version guards
#: against (unlikely) post-resolution mutation.
_KERNEL_CACHE: "weakref.WeakKeyDictionary[Specification, Tuple[int, ExtractionResult, int]]" = (
    weakref.WeakKeyDictionary()
)

#: Phase-2/3 results memoized per input specification, keyed by everything
#: they depend on: ``(structure version, latency, budget override)``.  The
#: cycle estimate, the fragmentation and the rewritten specification are
#: deterministic functions of (kernel specification, latency, budget), so
#: repeated runs of one (workload, latency) point -- a DSE loop probing
#: binding options, a cache-off benchmark repeat, equivalence re-checks --
#: share one transformed specification *object*.  That identity is what lets
#: every per-specification memo downstream (graph views, alias resolution,
#: allocation skeletons, the datapath memo) amortize across runs instead of
#: resolving a fresh isomorphic copy each time.  The cached transformed
#: specification is frozen, matching the workload-cache discipline: mutating
#: it raises instead of silently poisoning the cache.
_PHASE3_CACHE: "weakref.WeakKeyDictionary[Specification, Dict[Tuple[int, int, Optional[int]], Tuple[CycleEstimate, FragmentationResult, RewriteResult]]]" = (
    weakref.WeakKeyDictionary()
)


def _kernel_and_critical_path(
    specification: Specification,
) -> Tuple[ExtractionResult, int]:
    """Phase 1 plus the phase-2 critical path, memoized per specification."""
    cached = _KERNEL_CACHE.get(specification)
    if cached is not None and cached[0] == specification.version:
        return cached[1], cached[2]
    kernel = extract_kernel(specification)
    critical = critical_path_bits(kernel.specification)
    _KERNEL_CACHE[specification] = (specification.version, kernel, critical)
    return kernel, critical


def clear_transform_memo() -> None:
    """Drop the phase-2/3 memo (perf-measurement / test isolation hook).

    The next :func:`transform` call rebuilds (and re-freezes) a fresh
    transformed specification, so downstream per-specification caches go
    cold with it -- exactly what a raw-loop measurement wants.
    """
    _PHASE3_CACHE.clear()


class BehaviouralTransformer:
    """Applies the presynthesis optimization of the paper to a specification."""

    def __init__(self, options: Optional[TransformOptions] = None) -> None:
        self.options = options or TransformOptions()

    def transform(self, specification: Specification, latency: int) -> TransformResult:
        """Transform *specification* for a circuit latency of *latency* cycles."""
        options = self.options
        if options.validate_input:
            require_valid(specification)

        # Phase 1 -- operative kernel extraction (memoized: it does not
        # depend on the latency, which is the axis every sweep varies).
        kernel, critical = _kernel_and_critical_path(specification)

        if options.chained_bits_override is not None and options.chained_bits_override <= 0:
            raise ValueError(
                "chained_bits_override must be positive, got "
                f"{options.chained_bits_override!r} (use None to apply "
                "the phase-2 estimate)"
            )

        # Phases 2 and 3 -- clock cycle estimation, fragmentation and
        # rewrite, memoized per (specification, latency, budget override).
        key = (specification.version, latency, options.chained_bits_override)
        per_spec = _PHASE3_CACHE.get(specification)
        if per_spec is None:
            per_spec = {}
            _PHASE3_CACHE[specification] = per_spec
        cached = per_spec.get(key)
        if cached is not None:
            estimate, fragmentation, rewrite = cached
        else:
            estimate = estimate_cycle_budget(kernel.specification, latency, critical)
            if options.chained_bits_override is not None:
                budget = options.chained_bits_override
            else:
                budget = estimate.chained_bits_per_cycle
            fragmentation = fragment_specification(
                kernel.specification, latency, budget
            )
            rewrite = rewrite_specification(fragmentation)
            rewrite.specification.freeze()
            per_spec[key] = (estimate, fragmentation, rewrite)

        if options.validate_output:
            require_valid(rewrite.specification)

        equivalence: Optional[EquivalenceReport] = None
        if options.check_equivalence:
            equivalence = assert_equivalent(
                specification,
                rewrite.specification,
                random_count=options.equivalence_vectors,
                seed=options.equivalence_seed,
                chunk_lanes=options.equivalence_chunk_lanes,
                backend=options.equivalence_backend,
            )

        return TransformResult(
            original=specification,
            latency=latency,
            kernel=kernel,
            cycle_estimate=estimate,
            fragmentation=fragmentation,
            rewrite=rewrite,
            equivalence=equivalence,
        )


def transform(
    specification: Specification,
    latency: int,
    options: Optional[TransformOptions] = None,
) -> TransformResult:
    """One-shot convenience wrapper around :class:`BehaviouralTransformer`."""
    return BehaviouralTransformer(options).transform(specification, latency)
