"""Phase 1 -- operative kernel extraction.

The first phase of the paper's optimization method (Section 3.1) unifies the
representation formats used in the specification so that as many operations as
possible can later share functional units and be fragmented:

* signed operations are rewritten as unsigned ones,
* additive operations (subtractions, comparisons, maximum/minimum,
  multiplications, negations, absolute values) are rewritten as **additions
  plus glue logic**,
* operand widths are normalised: every addition in the extracted
  specification has both operands exactly as wide as its result, with explicit
  zero- or sign-extension glue, which is the "normalisation of types and
  formats" the paper credits for the area *reductions* observed on the ADPCM
  modules.

Signed multiplication substitution
----------------------------------
The paper uses "our variant of the Baugh & Wooley algorithm" to turn an
``m x n`` signed multiplication into one ``(m-1) x (n-1)`` unsigned
multiplication plus two additions.  The exact variant is not published, so
this reproduction uses the functionally equivalent sign-magnitude
decomposition: conditional negation of both operands (two additions), an
unsigned multiplication, and a conditional negation of the product (one
addition).  The additive kernel size is within one addition of the paper's
count and the downstream phases see the same structure (one unsigned
multiplication, a few narrow additions, glue logic).  This substitution is
recorded in DESIGN.md.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..ir.operations import Operation, OpKind, make_binary, make_unary
from ..ir.spec import Specification
from ..ir.types import BitRange, BitVectorType
from ..ir.values import Constant, Destination, Operand, Variable, operand_of


@dataclass
class ExtractionStatistics:
    """Bookkeeping of what the extraction did, used in reports and tests."""

    original_operations: int = 0
    extracted_operations: int = 0
    additions_created: int = 0
    glue_created: int = 0
    rewritten_by_kind: Dict[str, int] = field(default_factory=dict)

    def record(self, kind: OpKind) -> None:
        key = kind.value
        self.rewritten_by_kind[key] = self.rewritten_by_kind.get(key, 0) + 1

    @property
    def operation_growth(self) -> float:
        """Relative growth in operation count (paper reports roughly +30%)."""
        if self.original_operations == 0:
            return 0.0
        return (
            self.extracted_operations - self.original_operations
        ) / self.original_operations


@dataclass
class ExtractionResult:
    """The extracted specification plus statistics."""

    specification: Specification
    statistics: ExtractionStatistics


class KernelExtractor:
    """Rewrites a behavioural specification into its additive operative kernel."""

    def __init__(self, specification: Specification) -> None:
        self.source = specification
        self.target = Specification(f"{specification.name}_kernel")
        self.statistics = ExtractionStatistics(
            original_operations=len(specification.operations)
        )
        self._temp_counter = itertools.count()
        for variable in specification.variables:
            self.target.add_variable(variable)

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def extract(self) -> ExtractionResult:
        for operation in self.source.operations:
            self._rewrite(operation)
        self.statistics.extracted_operations = len(self.target.operations)
        return ExtractionResult(self.target, self.statistics)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _fresh_variable(self, width: int, hint: str) -> Variable:
        name = f"k_{hint}_{next(self._temp_counter)}"
        variable = Variable(name, BitVectorType(width, signed=False))
        self.target.add_variable(variable)
        return variable

    def _emit(self, operation: Operation, is_add: bool = False) -> Operation:
        self.target.add_operation(operation)
        if is_add:
            self.statistics.additions_created += 1
        else:
            self.statistics.glue_created += 1
        return operation

    def _constant_operand(self, value: int, width: int = 1) -> Operand:
        return operand_of(Constant(value, BitVectorType(width, signed=False)))

    def _is_signed_operand(self, operand: Operand) -> bool:
        return operand.source.signed and operand.covers_whole_source()

    def _extend(self, operand: Operand, width: int, origin: str) -> Operand:
        """Zero- or sign-extend an operand to *width* bits with glue logic."""
        if operand.width == width:
            return operand
        if operand.width > width:
            return operand.subrange(BitRange(0, width - 1))
        temp = self._fresh_variable(width, "ext")
        parts: List[Operand] = [operand]
        if self._is_signed_operand(operand):
            sign_bit = operand.subrange(BitRange(operand.width - 1, operand.width - 1))
            parts.extend([sign_bit] * (width - operand.width))
        else:
            parts.append(self._constant_operand(0, width - operand.width))
        self._emit(
            Operation(
                kind=OpKind.CONCAT,
                operands=tuple(parts),
                destination=Destination(temp, temp.full_range()),
                origin=origin,
            )
        )
        return temp.whole()

    def _replicate(self, bit: Operand, width: int, origin: str) -> Operand:
        """Replicate a single bit across *width* positions (glue)."""
        if bit.width != 1:
            raise ValueError("replication source must be a single bit")
        if width == 1:
            return bit
        temp = self._fresh_variable(width, "rep")
        self._emit(
            Operation(
                kind=OpKind.CONCAT,
                operands=tuple([bit] * width),
                destination=Destination(temp, temp.full_range()),
                origin=origin,
            )
        )
        return temp.whole()

    def _invert(self, operand: Operand, origin: str) -> Operand:
        temp = self._fresh_variable(operand.width, "not")
        self._emit(
            make_unary(
                OpKind.NOT,
                operand,
                Destination(temp, temp.full_range()),
                origin=origin,
            )
        )
        return temp.whole()

    def _xor(self, left: Operand, right: Operand, origin: str) -> Operand:
        width = max(left.width, right.width)
        temp = self._fresh_variable(width, "xor")
        self._emit(
            make_binary(
                OpKind.XOR,
                left,
                right,
                Destination(temp, temp.full_range()),
                origin=origin,
            )
        )
        return temp.whole()

    def _and(self, left: Operand, right: Operand, origin: str) -> Operand:
        width = max(left.width, right.width)
        temp = self._fresh_variable(width, "and")
        self._emit(
            make_binary(
                OpKind.AND,
                left,
                right,
                Destination(temp, temp.full_range()),
                origin=origin,
            )
        )
        return temp.whole()

    def _add(
        self,
        left: Operand,
        right: Operand,
        width: int,
        origin: str,
        carry_in: Optional[Operand] = None,
        destination: Optional[Destination] = None,
    ) -> Operand:
        """Emit a normalised addition: both operands extended to *width*."""
        left = self._extend(left, width, origin)
        right = self._extend(right, width, origin)
        if destination is None:
            temp = self._fresh_variable(width, "add")
            destination = Destination(temp, temp.full_range())
        self._emit(
            make_binary(
                OpKind.ADD,
                left,
                right,
                destination,
                carry_in=carry_in,
                origin=origin,
            ),
            is_add=True,
        )
        if destination.covers_whole_variable():
            return destination.variable.whole()
        return Operand(destination.variable, destination.range)

    def _move(self, source: Operand, destination: Destination, origin: str) -> None:
        self._emit(
            make_unary(OpKind.MOVE, source, destination, origin=origin)
        )

    # ------------------------------------------------------------------
    # Per-kind rewrites
    # ------------------------------------------------------------------
    def _rewrite(self, operation: Operation) -> None:
        kind = operation.kind
        handler = {
            OpKind.ADD: self._rewrite_add,
            OpKind.SUB: self._rewrite_sub,
            OpKind.NEG: self._rewrite_neg,
            OpKind.ABS: self._rewrite_abs,
            OpKind.MUL: self._rewrite_mul,
            OpKind.LT: self._rewrite_compare,
            OpKind.LE: self._rewrite_compare,
            OpKind.GT: self._rewrite_compare,
            OpKind.GE: self._rewrite_compare,
            OpKind.EQ: self._rewrite_equality,
            OpKind.NE: self._rewrite_equality,
            OpKind.MAX: self._rewrite_maxmin,
            OpKind.MIN: self._rewrite_maxmin,
        }.get(kind)
        if handler is None:
            # Glue logic is copied verbatim.
            self._emit(
                Operation(
                    kind=operation.kind,
                    operands=operation.operands,
                    destination=operation.destination,
                    carry_in=operation.carry_in,
                    name=operation.name,
                    origin=operation.origin,
                    attributes=dict(operation.attributes),
                )
            )
            return
        self.statistics.record(kind)
        handler(operation)

    def _rewrite_add(self, operation: Operation) -> None:
        origin = operation.origin or operation.name
        width = operation.width
        self._add(
            operation.operands[0],
            operation.operands[1],
            width,
            origin,
            carry_in=operation.carry_in,
            destination=operation.destination,
        )

    def _rewrite_sub(self, operation: Operation) -> None:
        """``a - b`` becomes ``a + not(b) + 1`` (two's complement)."""
        origin = operation.origin or operation.name
        width = operation.width
        left = self._extend(operation.operands[0], width, origin)
        right = self._extend(operation.operands[1], width, origin)
        inverted = self._invert(right, origin)
        carry = operation.carry_in or self._constant_operand(1)
        if operation.carry_in is not None:
            # A pre-existing carry-in on a subtraction encodes "no borrow";
            # the rewrite keeps it and documents the convention.
            carry = operation.carry_in
        self._add(
            left,
            inverted,
            width,
            origin,
            carry_in=carry,
            destination=operation.destination,
        )

    def _rewrite_neg(self, operation: Operation) -> None:
        """``-a`` becomes ``not(a) + 1``."""
        origin = operation.origin or operation.name
        width = operation.width
        operand = self._extend(operation.operands[0], width, origin)
        inverted = self._invert(operand, origin)
        self._add(
            inverted,
            self._constant_operand(0, width),
            width,
            origin,
            carry_in=self._constant_operand(1),
            destination=operation.destination,
        )

    def _rewrite_abs(self, operation: Operation) -> None:
        """``abs(a)`` = conditional negation driven by the sign bit."""
        origin = operation.origin or operation.name
        width = operation.width
        operand = self._extend(operation.operands[0], width, origin)
        sign = operand.subrange(BitRange(width - 1, width - 1))
        mask = self._replicate(sign, width, origin)
        flipped = self._xor(operand, mask, origin)
        self._add(
            flipped,
            self._constant_operand(0, width),
            width,
            origin,
            carry_in=sign,
            destination=operation.destination,
        )

    # -- comparisons -----------------------------------------------------
    def _unsigned_bias(self, operand: Operand, width: int, origin: str) -> Operand:
        """Map a signed value onto the unsigned order by flipping its MSB."""
        msb_mask = self._constant_operand(1 << (width - 1), width)
        return self._xor(operand, msb_mask, origin)

    def _borrow_bit(self, left: Operand, right: Operand, origin: str) -> Operand:
        """1-bit result that is set when ``left < right`` (unsigned order).

        Computed as the most significant bit of the ``width + 1``-bit
        subtraction ``left - right`` -- a single addition of the inverted
        right operand with carry-in 1, the canonical additive kernel of a
        comparison.
        """
        width = max(left.width, right.width) + 1
        left_ext = self._extend(left, width, origin)
        right_ext = self._extend(right, width, origin)
        inverted = self._invert(right_ext, origin)
        difference = self._add(
            left_ext,
            inverted,
            width,
            origin,
            carry_in=self._constant_operand(1),
        )
        return difference.subrange(BitRange(width - 1, width - 1))

    def _compare_bit(
        self, operation: Operation, kind: OpKind, origin: str
    ) -> Operand:
        left, right = operation.operands[0], operation.operands[1]
        signed = self._is_signed_operand(left) or self._is_signed_operand(right)
        # Mixed signed/unsigned comparisons need one extra bit so that both
        # operands' natural values are representable in a common two's
        # complement format before the MSB-flip bias is applied.
        width = max(left.width, right.width) + (1 if signed else 0)
        left = self._extend(left, width, origin)
        right = self._extend(right, width, origin)
        if signed:
            left = self._unsigned_bias(left, width, origin)
            right = self._unsigned_bias(right, width, origin)
        if kind is OpKind.LT:
            return self._borrow_bit(left, right, origin)
        if kind is OpKind.GT:
            return self._borrow_bit(right, left, origin)
        if kind is OpKind.GE:
            borrow = self._borrow_bit(left, right, origin)
            return self._invert(borrow, origin)
        if kind is OpKind.LE:
            borrow = self._borrow_bit(right, left, origin)
            return self._invert(borrow, origin)
        raise ValueError(f"not an ordering comparison: {kind}")

    def _rewrite_compare(self, operation: Operation) -> None:
        origin = operation.origin or operation.name
        bit = self._compare_bit(operation, operation.kind, origin)
        self._move(bit, operation.destination, origin)

    def _rewrite_equality(self, operation: Operation) -> None:
        """Equality via XOR and an OR-reduction tree (pure glue logic)."""
        origin = operation.origin or operation.name
        left, right = operation.operands[0], operation.operands[1]
        width = max(left.width, right.width)
        left = self._extend(left, width, origin)
        right = self._extend(right, width, origin)
        difference = self._xor(left, right, origin)
        current = difference
        while current.width > 1:
            half = (current.width + 1) // 2
            low = current.subrange(BitRange(0, half - 1))
            high = current.subrange(BitRange(half, current.width - 1))
            high = self._extend(high, half, origin)
            temp = self._fresh_variable(half, "orreduce")
            self._emit(
                make_binary(
                    OpKind.OR,
                    low,
                    high,
                    Destination(temp, temp.full_range()),
                    origin=origin,
                )
            )
            current = temp.whole()
        if operation.kind is OpKind.EQ:
            current = self._invert(current, origin)
        self._move(current, operation.destination, origin)

    def _rewrite_maxmin(self, operation: Operation) -> None:
        """max/min = ordering comparison (additive) plus a selector (glue)."""
        origin = operation.origin or operation.name
        width = operation.width
        # The ordering test works on the raw operands (so their signedness is
        # still visible); the selector data inputs are extended separately.
        greater_or_equal = self._compare_bit(operation, OpKind.GE, origin)
        left = self._extend(operation.operands[0], width, origin)
        right = self._extend(operation.operands[1], width, origin)
        if operation.kind is OpKind.MAX:
            chosen_true, chosen_false = left, right
        else:
            chosen_true, chosen_false = right, left
        self._emit(
            Operation(
                kind=OpKind.SELECT,
                operands=(greater_or_equal, chosen_true, chosen_false),
                destination=operation.destination,
                origin=origin,
            )
        )

    # -- multiplication ----------------------------------------------------
    def _rewrite_mul(self, operation: Operation) -> None:
        origin = operation.origin or operation.name
        left, right = operation.operands[0], operation.operands[1]
        signed = self._is_signed_operand(left) or self._is_signed_operand(right)
        if signed:
            self._rewrite_signed_mul(operation, origin)
        else:
            product = self._unsigned_product(
                left, right, operation.width, origin
            )
            self._move(product, operation.destination, origin)

    def _conditional_negate(
        self, operand: Operand, sign: Operand, width: int, origin: str
    ) -> Operand:
        """Return ``sign ? -operand : operand`` computed additively."""
        operand = self._extend(operand, width, origin)
        mask = self._replicate(sign, width, origin)
        flipped = self._xor(operand, mask, origin)
        return self._add(
            flipped,
            self._constant_operand(0, width),
            width,
            origin,
            carry_in=sign,
        )

    def _rewrite_signed_mul(self, operation: Operation, origin: str) -> None:
        """Sign-magnitude decomposition of a signed multiplication."""
        left, right = operation.operands[0], operation.operands[1]
        width = operation.width
        sign_left = (
            left.subrange(BitRange(left.width - 1, left.width - 1))
            if self._is_signed_operand(left)
            else self._constant_operand(0)
        )
        sign_right = (
            right.subrange(BitRange(right.width - 1, right.width - 1))
            if self._is_signed_operand(right)
            else self._constant_operand(0)
        )
        magnitude_left = (
            self._conditional_negate(left, sign_left, left.width, origin)
            if self._is_signed_operand(left)
            else left
        )
        magnitude_right = (
            self._conditional_negate(right, sign_right, right.width, origin)
            if self._is_signed_operand(right)
            else right
        )
        product = self._unsigned_product(magnitude_left, magnitude_right, width, origin)
        result_sign = self._xor(sign_left, sign_right, origin)
        mask = self._replicate(result_sign.subrange(BitRange(0, 0)), width, origin)
        flipped = self._xor(product, mask, origin)
        self._add(
            flipped,
            self._constant_operand(0, width),
            width,
            origin,
            carry_in=result_sign.subrange(BitRange(0, 0)),
            destination=operation.destination,
        )

    def _partial_product(
        self, multiplicand: Operand, bit: Operand, origin: str
    ) -> Operand:
        """``multiplicand AND replicate(bit)`` -- one partial product row."""
        mask = self._replicate(bit, multiplicand.width, origin)
        return self._and(multiplicand, mask, origin)

    def _shift_left(self, operand: Operand, amount: int, origin: str) -> Operand:
        if amount == 0:
            return operand
        temp = self._fresh_variable(operand.width + amount, "shl")
        self._emit(
            make_unary(
                OpKind.SHL,
                operand,
                Destination(temp, temp.full_range()),
                origin=origin,
                attributes={"shift": amount},
            )
        )
        return temp.whole()

    def _concat(self, parts: List[Operand], origin: str, hint: str = "cat") -> Operand:
        """Concatenate operand parts, least significant first (glue)."""
        if len(parts) == 1:
            return parts[0]
        width = sum(part.width for part in parts)
        temp = self._fresh_variable(width, hint)
        self._emit(
            Operation(
                kind=OpKind.CONCAT,
                operands=tuple(parts),
                destination=Destination(temp, temp.full_range()),
                origin=origin,
            )
        )
        return temp.whole()

    def _unsigned_product(
        self, left: Operand, right: Operand, width: int, origin: str
    ) -> Operand:
        """Shift-and-add decomposition of an unsigned multiplication.

        The decomposition mirrors a carry-propagate array multiplier row by
        row: the running sum is only as wide as the rows accumulated so far,
        and each new partial product is added to the *upper window* of the
        running sum (the low bits below the row's shift are already final), so
        every addition is roughly as wide as the multiplicand rather than the
        full product.  This keeps the additive kernel the same size as the
        array multiplier it replaces, which is what lets the optimized
        datapaths of Table II stay within a few percent of the original area.

        When one operand is a literal constant (multiplication by a filter
        coefficient, the common case in the Table II benchmarks) only the set
        bits of the constant generate partial products, which mirrors how a
        synthesis tool strength-reduces constant multipliers.
        """
        if left.is_constant and not right.is_constant:
            left, right = right, left
        multiplier_bits: List[int]
        if right.is_constant:
            constant_bits = right.constant.bits >> right.range.lo
            multiplier_bits = [
                i for i in range(right.width) if (constant_bits >> i) & 1
            ]
        else:
            multiplier_bits = list(range(right.width))
        if not multiplier_bits:
            zero = self._fresh_variable(width, "zero")
            self._move(
                self._constant_operand(0, width),
                Destination(zero, zero.full_range()),
                origin,
            )
            return zero.whole()

        accumulator: Optional[Operand] = None
        accumulator_anchor = 0  # bit position of the accumulator's LSB
        for bit_index in multiplier_bits:
            if right.is_constant:
                row = left
            else:
                bit = right.subrange(BitRange(bit_index, bit_index))
                row = self._partial_product(left, bit, origin)
            if accumulator is None:
                accumulator = row
                accumulator_anchor = bit_index
                continue
            accumulator_width = accumulator.width + accumulator_anchor
            if bit_index >= accumulator_width:
                # The new row does not overlap the running sum: pure wiring.
                gap = bit_index - accumulator_width
                parts = [accumulator]
                if gap > 0:
                    parts.append(self._constant_operand(0, gap))
                parts.append(row)
                accumulator = self._concat(parts, origin, "accgap")
                continue
            # Split the running sum at the row's shift position: the low part
            # is already final, the high part is added to the row.
            split = bit_index - accumulator_anchor
            high = accumulator.subrange(
                BitRange(split, accumulator.width - 1)
            ) if split < accumulator.width else self._constant_operand(0, 1)
            window_width = max(high.width, row.width) + 1
            high_sum = self._add(high, row, window_width, origin)
            if split > 0:
                low = accumulator.subrange(BitRange(0, split - 1))
                accumulator = self._concat([low, high_sum], origin, "acc")
            else:
                accumulator = high_sum
        assert accumulator is not None
        if accumulator_anchor > 0:
            accumulator = self._concat(
                [self._constant_operand(0, accumulator_anchor), accumulator],
                origin,
                "accshift",
            )
        return self._extend(accumulator, width, origin)


def extract_kernel(specification: Specification) -> ExtractionResult:
    """Run phase 1 of the transformation on *specification*."""
    return KernelExtractor(specification).extract()
