"""Rewriting the kernel-extracted specification into the transformed one.

Given the fragments computed by :mod:`repro.core.fragmentation`, this module
produces the optimized behavioural specification the paper's Fig. 2 a shows:
every fragmented addition becomes a chain of narrower additions over slices of
the original operands, connected through explicit carry bits, and writing
slices of the original result variable.

Carry representation
--------------------
The paper's VHDL stores each fragment's carry in the extra most significant
bit of the fragment result (``C(6 downto 0) := ("0" & A(5 downto 0)) + ...``)
and later overwrites that bit with the true sum bit.  The IR of this library
enforces bit-level single assignment, so the rewrite instead lets every
non-final fragment write a ``width + 1``-bit temporary whose top bit is the
carry; a zero-delay MOVE forwards the data bits into the destination slice and
the next fragment reads the carry bit directly from the temporary.  The
datapath cost is identical (the temporary's data bits and the destination
slice are the same wires; only the carry bit may need storing, exactly as in
the paper's Table I register accounting).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir.operations import Operation, OpKind, make_binary, make_unary
from ..ir.spec import Specification
from ..ir.types import BitRange, BitVectorType
from ..ir.values import Destination, Operand, Variable
from .fragmentation import Fragment, FragmentationResult


@dataclass
class RewriteStatistics:
    """Bookkeeping of the rewrite, used by reports and experiments."""

    additive_operations_in: int = 0
    additive_operations_out: int = 0
    glue_operations_created: int = 0
    carry_bits_created: int = 0
    fragmented_operations: int = 0

    @property
    def operation_growth(self) -> float:
        """Relative growth of the additive operation count (paper: ~34%)."""
        if self.additive_operations_in == 0:
            return 0.0
        return (
            self.additive_operations_out - self.additive_operations_in
        ) / self.additive_operations_in


@dataclass
class RewriteResult:
    """The transformed specification plus provenance information."""

    specification: Specification
    statistics: RewriteStatistics
    #: Mapping from every fragment to the operation that implements it.
    fragment_operations: Dict[Fragment, Operation] = field(default_factory=dict)

    def mobility_of(self, operation: Operation) -> Tuple[int, int]:
        """ASAP/ALAP cycles recorded on a transformed operation."""
        return (
            int(operation.attributes.get("asap", 1)),
            int(operation.attributes.get("alap", 1)),
        )


class SpecificationRewriter:
    """Builds the transformed specification from a fragmentation result."""

    def __init__(self, fragmentation: FragmentationResult) -> None:
        self.fragmentation = fragmentation
        self.source = fragmentation.specification
        self.target = Specification(
            self.source.name.replace("_kernel", "") + "_optimized"
        )
        self.statistics = RewriteStatistics()
        self.result = RewriteResult(self.target, self.statistics)
        self._temp_counter = itertools.count()
        for variable in self.source.variables:
            self.target.add_variable(variable)

    # ------------------------------------------------------------------
    def rewrite(self) -> RewriteResult:
        for operation in self.source.operations:
            if not operation.is_additive:
                self._copy_glue(operation)
                continue
            fragments = self.fragmentation.fragments.get(operation)
            if not fragments or len(fragments) == 1:
                self._copy_additive(operation, fragments)
                continue
            self._emit_fragments(operation, fragments)
        return self.result

    # ------------------------------------------------------------------
    def _fresh_variable(self, width: int, hint: str) -> Variable:
        name = f"f_{hint}_{next(self._temp_counter)}"
        variable = Variable(name, BitVectorType(width, signed=False))
        self.target.add_variable(variable)
        return variable

    def _copy_glue(self, operation: Operation) -> None:
        self.target.add_operation(
            Operation(
                kind=operation.kind,
                operands=operation.operands,
                destination=operation.destination,
                carry_in=operation.carry_in,
                name=operation.name,
                origin=operation.origin,
                attributes=dict(operation.attributes),
            )
        )
        self.statistics.glue_operations_created += 1

    def _copy_additive(
        self, operation: Operation, fragments: Optional[List[Fragment]]
    ) -> None:
        """Copy an unfragmented additive operation, annotating its mobility."""
        attributes = dict(operation.attributes)
        if fragments:
            attributes["asap"] = fragments[0].asap
            attributes["alap"] = fragments[0].alap
        copied = Operation(
            kind=operation.kind,
            operands=operation.operands,
            destination=operation.destination,
            carry_in=operation.carry_in,
            name=operation.name,
            origin=operation.origin,
            attributes=attributes,
        )
        self.target.add_operation(copied)
        self.statistics.additive_operations_in += 1
        self.statistics.additive_operations_out += 1
        if fragments:
            self.result.fragment_operations[fragments[0]] = copied

    # ------------------------------------------------------------------
    def _operand_slice(self, operand: Operand, bits: BitRange) -> Operand:
        """The slice of an operand feeding a fragment covering *bits*.

        Operands were normalised to the operation width by the kernel
        extraction, so the slice exists; defensive clamping covers operands
        that are nevertheless narrower (their high bits read as zero).
        """
        if bits.lo >= operand.width:
            # Fragment lies entirely above this operand: contribute zeros.
            from ..ir.values import Constant, operand_of

            return operand_of(Constant(0, BitVectorType(bits.width, signed=False)))
        hi = min(bits.hi, operand.width - 1)
        return operand.subrange(BitRange(bits.lo, hi))

    def _emit_fragments(self, operation: Operation, fragments: List[Fragment]) -> None:
        self.statistics.additive_operations_in += 1
        self.statistics.fragmented_operations += 1
        carry_source: Optional[Operand] = operation.carry_in
        destination_variable = operation.destination.variable
        for fragment in fragments:
            is_last = fragment.index == len(fragments) - 1
            data_bits = fragment.destination_bits()
            left = self._operand_slice(operation.operands[0], fragment.bits)
            right = self._operand_slice(operation.operands[1], fragment.bits)
            attributes = {
                "asap": fragment.asap,
                "alap": fragment.alap,
                "fragment_bits": (fragment.bits.lo, fragment.bits.hi),
                "parent": operation.name,
            }
            if is_last:
                destination = Destination(destination_variable, data_bits)
                emitted = make_binary(
                    OpKind.ADD,
                    left,
                    right,
                    destination,
                    name=f"{operation.name}_f{fragment.index}",
                    carry_in=carry_source,
                    origin=operation.origin,
                    fragment_index=fragment.index,
                    attributes=attributes,
                )
                self.target.add_operation(emitted)
            else:
                temp = self._fresh_variable(
                    fragment.width + 1, f"{operation.name}_f{fragment.index}"
                )
                emitted = make_binary(
                    OpKind.ADD,
                    left,
                    right,
                    Destination(temp, temp.full_range()),
                    name=f"{operation.name}_f{fragment.index}",
                    carry_in=carry_source,
                    origin=operation.origin,
                    fragment_index=fragment.index,
                    attributes=attributes,
                )
                self.target.add_operation(emitted)
                # Forward the data bits into the destination slice (pure wiring).
                self.target.add_operation(
                    make_unary(
                        OpKind.MOVE,
                        temp.slice(fragment.width - 1, 0),
                        Destination(destination_variable, data_bits),
                        name=f"{operation.name}_f{fragment.index}_data",
                        origin=operation.origin,
                        attributes={"asap": fragment.asap, "alap": fragment.alap},
                    )
                )
                self.statistics.glue_operations_created += 1
                carry_source = temp.bit(fragment.width)
                self.statistics.carry_bits_created += 1
            self.statistics.additive_operations_out += 1
            self.result.fragment_operations[fragment] = emitted


def rewrite_specification(fragmentation: FragmentationResult) -> RewriteResult:
    """Build the optimized specification from a fragmentation result."""
    return SpecificationRewriter(fragmentation).rewrite()
