"""Phase 3 -- fragmentation of operations.

The clock-cycle budget estimated in phase 2 (a number of chained 1-bit
additions per cycle) is usually smaller than the execution time of the widest
operations, so those operations must be broken up into fragments that can be
scheduled in different -- possibly non-consecutive -- cycles.

The paper determines the fragments from the **bit-level ASAP and ALAP
schedules** of every operation bit (Section 3.3):

* a bit whose ASAP and ALAP cycles coincide is already scheduled;
* an operation with bits in different cycles must be broken up;
* operations whose bits have different ASAP/ALAP pairs are also broken up so
  that no mobility is lost;
* the number of fragments equals the number of distinct (ASAP, ALAP) pairs
  among the operation's bits, and each fragment's width is the number of bits
  sharing that pair.

Two algorithms are provided:

* :func:`compute_bit_schedule` + :func:`fragment_specification` -- the
  bit-accurate version, which reproduces the worked example of Fig. 3 (B is
  broken into B1..0, B2, B4..3 and B5);
* :func:`fragment_widths_simple` -- the literal transcription of the
  per-operation pseudo-code printed in the paper, used by the mobility
  ablation benchmark to show what is lost when the chaining-aware bit-level
  schedule is replaced by the simpler fill-from-both-ends heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir.dfg import BitDependencyGraph, BitNode
from ..ir.operations import Operation
from ..ir.spec import Specification
from ..ir.types import BitRange


class FragmentationError(ValueError):
    """Raised when no feasible bit-level schedule exists for the given budget."""


@dataclass(frozen=True)
class BitSlot:
    """Placement of one result bit: clock cycle plus chained depth inside it.

    ``offset`` counts the chained 1-bit additions used up to and including the
    bit within its cycle, so it never exceeds the per-cycle budget.
    """

    cycle: int
    offset: int


@dataclass
class BitSchedule:
    """Bit-level ASAP and ALAP schedules of every additive operation bit."""

    latency: int
    chained_bits_per_cycle: int
    asap: Dict[BitNode, BitSlot] = field(default_factory=dict)
    alap: Dict[BitNode, BitSlot] = field(default_factory=dict)

    def asap_cycle(self, node: BitNode) -> int:
        return self.asap[node].cycle

    def alap_cycle(self, node: BitNode) -> int:
        return self.alap[node].cycle

    def mobility(self, node: BitNode) -> int:
        """Number of candidate cycles for the bit (1 = already scheduled)."""
        return self.alap[node].cycle - self.asap[node].cycle + 1

    def is_feasible(self) -> bool:
        """True when every bit has a non-empty mobility window inside [1, latency]."""
        for node in self.asap:
            if self.asap[node].cycle > self.latency:
                return False
            if self.alap[node].cycle < 1:
                return False
            if self.asap[node].cycle > self.alap[node].cycle:
                return False
        return True


def _forward_schedule(
    graph: BitDependencyGraph, budget: int
) -> Dict[BitNode, BitSlot]:
    """As-soon-as-possible placement under the chained-bits budget."""
    slots: Dict[BitNode, BitSlot] = {}
    for node in graph.topological_order():
        cost = graph.node_cost(node)
        predecessors = graph.predecessors(node)
        cycle = 1
        if predecessors:
            cycle = max(slots[p].cycle for p in predecessors)
        chained_before = 0
        for predecessor in predecessors:
            slot = slots[predecessor]
            if slot.cycle == cycle:
                chained_before = max(chained_before, slot.offset)
        if chained_before + cost > budget:
            cycle += 1
            chained_before = 0
        slots[node] = BitSlot(cycle, chained_before + cost)
    return slots


def _backward_schedule(
    graph: BitDependencyGraph, budget: int, latency: int
) -> Dict[BitNode, BitSlot]:
    """As-late-as-possible placement, mirror image of the forward pass.

    ``offset`` here counts the chained bits *from the bit to the end of its
    cycle* (including the bit itself); it is reported in forward convention
    (distance from the start of the cycle) when stored in the returned slots
    so that both schedules use the same units.
    """
    reverse_offsets: Dict[BitNode, int] = {}
    cycles: Dict[BitNode, int] = {}
    order = list(reversed(graph.topological_order()))
    for node in order:
        cost = graph.node_cost(node)
        successors = graph.successors(node)
        cycle = latency
        if successors:
            cycle = min(cycles[s] for s in successors)
        chained_after = 0
        for successor in successors:
            if cycles[successor] == cycle:
                chained_after = max(chained_after, reverse_offsets[successor])
        if chained_after + cost > budget:
            cycle -= 1
            chained_after = 0
        cycles[node] = cycle
        reverse_offsets[node] = chained_after + cost
    slots: Dict[BitNode, BitSlot] = {}
    for node in order:
        forward_offset = budget - reverse_offsets[node] + graph.node_cost(node)
        slots[node] = BitSlot(cycles[node], forward_offset)
    return slots


def compute_bit_schedule(
    specification: Specification,
    latency: int,
    chained_bits_per_cycle: int,
    graph: Optional[BitDependencyGraph] = None,
) -> BitSchedule:
    """Compute the bit-level ASAP/ALAP schedules under the given budget."""
    if latency <= 0:
        raise FragmentationError(f"latency must be positive, got {latency}")
    if chained_bits_per_cycle <= 0:
        raise FragmentationError(
            f"chained-bit budget must be positive, got {chained_bits_per_cycle}"
        )
    if graph is None:
        graph = specification.bit_dependency_graph()
    schedule = BitSchedule(latency=latency, chained_bits_per_cycle=chained_bits_per_cycle)
    schedule.asap = _forward_schedule(graph, chained_bits_per_cycle)
    schedule.alap = _backward_schedule(graph, chained_bits_per_cycle, latency)
    return schedule


class IncrementalBitScheduler:
    """ASAP/ALAP bit schedules re-relaxed incrementally across budgets.

    The budget search probes the same bit graph under many candidate budgets.
    A full recomputation per candidate walks every node and hashes every
    :class:`BitNode` lookup; this scheduler instead

    * flattens the graph once into the index-based
      :meth:`~repro.ir.dfg.BitDependencyGraph.dense_view` (no hashing in the
      relaxation loops), and
    * between consecutive probes only re-relaxes the nodes whose *slack
      actually changed*: a node whose predecessors kept their slots and whose
      cycle-overflow decision (``chained_before + cost > budget``) is the
      same under the new budget provably keeps its slot, so whole untouched
      regions of the graph are skipped.

    The produced slots are bit-for-bit identical to
    :func:`_forward_schedule` / :func:`_backward_schedule`; the equivalence
    is pinned by the property tests in ``tests/core/test_fragmentation.py``.
    """

    def __init__(self, graph: BitDependencyGraph, latency: int) -> None:
        self.graph = graph
        self.latency = latency
        order, predecessors, successors, costs = graph.dense_view()
        self._order = order
        self._preds = predecessors
        self._succs = successors
        self._costs = costs
        count = len(order)
        # Forward (ASAP) state of the previous probe.
        self._fwd_budget: Optional[int] = None
        self._fwd_cycle = [0] * count
        self._fwd_offset = [0] * count
        self._fwd_base = [0] * count  # chained bits before the node in its cycle
        # Backward (ALAP) state of the previous probe.
        self._bwd_budget: Optional[int] = None
        self._bwd_cycle = [0] * count
        self._bwd_tail = [0] * count  # chained bits from the node to cycle end
        self._bwd_base = [0] * count  # chained bits after the node in its cycle

    # -- forward -------------------------------------------------------
    def _forward_full(self, budget: int) -> None:
        preds, costs = self._preds, self._costs
        cycles, offsets, bases = self._fwd_cycle, self._fwd_offset, self._fwd_base
        for index in range(len(self._order)):
            cost = costs[index]
            cycle = 1
            chained = 0
            for p in preds[index]:
                p_cycle = cycles[p]
                if p_cycle > cycle:
                    cycle = p_cycle
            for p in preds[index]:
                if cycles[p] == cycle and offsets[p] > chained:
                    chained = offsets[p]
            bases[index] = chained
            if chained + cost > budget:
                cycle += 1
                chained = 0
            cycles[index] = cycle
            offsets[index] = chained + cost

    def _forward_incremental(self, budget: int) -> None:
        previous = self._fwd_budget
        preds, costs = self._preds, self._costs
        cycles, offsets, bases = self._fwd_cycle, self._fwd_offset, self._fwd_base
        changed = bytearray(len(self._order))
        for index in range(len(self._order)):
            cost = costs[index]
            node_preds = preds[index]
            dirty = False
            for p in node_preds:
                if changed[p]:
                    dirty = True
                    break
            if not dirty:
                # Predecessor slots are untouched, so the chained depth in
                # front of this node is exactly the recorded one; the slot
                # can only move if the overflow decision flips with the
                # budget.
                base = bases[index]
                if (base + cost > budget) == (base + cost > previous):
                    continue
                chained = base
                cycle = cycles[index] - (1 if base + cost > previous else 0)
            else:
                cycle = 1
                chained = 0
                for p in node_preds:
                    p_cycle = cycles[p]
                    if p_cycle > cycle:
                        cycle = p_cycle
                for p in node_preds:
                    if cycles[p] == cycle and offsets[p] > chained:
                        chained = offsets[p]
                bases[index] = chained
            new_cycle = cycle
            new_chained = chained
            if new_chained + cost > budget:
                new_cycle += 1
                new_chained = 0
            new_offset = new_chained + cost
            if new_cycle != cycles[index] or new_offset != offsets[index]:
                cycles[index] = new_cycle
                offsets[index] = new_offset
                changed[index] = 1

    def forward(self, budget: int) -> None:
        if self._fwd_budget is None:
            self._forward_full(budget)
        elif self._fwd_budget != budget:
            self._forward_incremental(budget)
        self._fwd_budget = budget

    # -- backward ------------------------------------------------------
    def _backward_full(self, budget: int) -> None:
        succs, costs = self._succs, self._costs
        cycles, tails, bases = self._bwd_cycle, self._bwd_tail, self._bwd_base
        latency = self.latency
        for index in range(len(self._order) - 1, -1, -1):
            cost = costs[index]
            cycle = latency
            chained = 0
            node_succs = succs[index]
            if node_succs:
                for s in node_succs:
                    s_cycle = cycles[s]
                    if s_cycle < cycle:
                        cycle = s_cycle
                for s in node_succs:
                    if cycles[s] == cycle and tails[s] > chained:
                        chained = tails[s]
            bases[index] = chained
            if chained + cost > budget:
                cycle -= 1
                chained = 0
            cycles[index] = cycle
            tails[index] = chained + cost

    def _backward_incremental(self, budget: int) -> None:
        previous = self._bwd_budget
        succs, costs = self._succs, self._costs
        cycles, tails, bases = self._bwd_cycle, self._bwd_tail, self._bwd_base
        latency = self.latency
        changed = bytearray(len(self._order))
        for index in range(len(self._order) - 1, -1, -1):
            cost = costs[index]
            node_succs = succs[index]
            dirty = False
            for s in node_succs:
                if changed[s]:
                    dirty = True
                    break
            if not dirty:
                base = bases[index]
                if (base + cost > budget) == (base + cost > previous):
                    continue
                chained = base
                cycle = cycles[index] + (1 if base + cost > previous else 0)
            else:
                cycle = latency
                chained = 0
                if node_succs:
                    for s in node_succs:
                        s_cycle = cycles[s]
                        if s_cycle < cycle:
                            cycle = s_cycle
                    for s in node_succs:
                        if cycles[s] == cycle and tails[s] > chained:
                            chained = tails[s]
                bases[index] = chained
            new_cycle = cycle
            new_chained = chained
            if new_chained + cost > budget:
                new_cycle -= 1
                new_chained = 0
            new_tail = new_chained + cost
            if new_cycle != cycles[index] or new_tail != tails[index]:
                cycles[index] = new_cycle
                tails[index] = new_tail
                changed[index] = 1

    def backward(self, budget: int) -> None:
        if self._bwd_budget is None:
            self._backward_full(budget)
        elif self._bwd_budget != budget:
            self._backward_incremental(budget)
        self._bwd_budget = budget

    # -- queries -------------------------------------------------------
    def is_feasible(self, budget: int) -> bool:
        """Mirror of :meth:`BitSchedule.is_feasible` for one candidate budget."""
        self.forward(budget)
        latency = self.latency
        fwd = self._fwd_cycle
        for index in range(len(self._order)):
            if fwd[index] > latency:
                return False
        self.backward(budget)
        bwd = self._bwd_cycle
        for index in range(len(self._order)):
            if bwd[index] < 1 or fwd[index] > bwd[index]:
                return False
        return True

    def bit_schedule(self, budget: int) -> BitSchedule:
        """The :class:`BitSchedule` of *budget*, identical to the full passes."""
        self.forward(budget)
        self.backward(budget)
        schedule = BitSchedule(latency=self.latency, chained_bits_per_cycle=budget)
        order = self._order
        costs = self._costs
        fwd_cycle, fwd_offset = self._fwd_cycle, self._fwd_offset
        bwd_cycle, bwd_tail = self._bwd_cycle, self._bwd_tail
        asap = schedule.asap
        alap = schedule.alap
        for index, node in enumerate(order):
            asap[node] = BitSlot(fwd_cycle[index], fwd_offset[index])
            alap[node] = BitSlot(
                bwd_cycle[index], budget - bwd_tail[index] + costs[index]
            )
        return schedule


def minimum_feasible_budget(
    specification: Specification,
    latency: int,
    starting_budget: int,
    search_limit: int = 4096,
    graph: Optional[BitDependencyGraph] = None,
) -> Tuple[int, BitSchedule, BitDependencyGraph]:
    """Smallest chained-bit budget >= *starting_budget* with a feasible schedule.

    Phase 2's estimate ``ceil(critical_path / latency)`` is occasionally one
    or two bits short because cycle boundaries quantise the chains; the
    transformation relaxes the budget upward from the estimate exactly as a
    designer would relax the clock until the ASAP schedule fits the latency.

    The search used to probe every candidate budget with two full schedule
    recomputations.  It now binary-searches between the estimate and the
    critical depth (a budget that packs the whole critical path into cycle 1
    is always feasible), probing candidates through an
    :class:`IncrementalBitScheduler` so each probe only re-relaxes the bits
    whose slack the budget change actually moved.  A final downward walk
    guards the exact "smallest feasible" contract of the legacy linear scan.
    """
    if graph is None:
        graph = specification.bit_dependency_graph()
    start = max(1, starting_budget)
    limit = start + search_limit  # first budget the legacy scan never probed
    scheduler = IncrementalBitScheduler(graph, latency)
    if scheduler.is_feasible(start):
        return start, scheduler.bit_schedule(start), graph
    # A budget the length of the whole critical path always fits (every bit
    # lands in cycle 1 forward and cycle `latency` backward).
    high = min(max(start + 1, graph.critical_depth()), limit - 1)
    if not scheduler.is_feasible(high):
        # Monotonicity safety net: scan the remaining window linearly, the
        # legacy contract, before giving up with the legacy error.
        budget = high + 1
        while budget < limit:
            if scheduler.is_feasible(budget):
                high = budget
                break
            budget += 1
        else:
            raise FragmentationError(
                f"no feasible chained-bit budget found below {limit} "
                f"for latency {latency}"
            )
    else:
        low = start  # known infeasible
        while high - low > 1:
            middle = (low + high) // 2
            if scheduler.is_feasible(middle):
                high = middle
            else:
                low = middle
    # The incremental probes make the confirmation walk cheap; it pins the
    # result to the smallest feasible budget even if feasibility were ever
    # non-monotone in the budget.
    while high - 1 > start and scheduler.is_feasible(high - 1):
        high -= 1
    return high, scheduler.bit_schedule(high), graph


@dataclass(frozen=True)
class Fragment:
    """One fragment of an original operation.

    ``bits`` is expressed relative to the operation's result (bit 0 = the
    operation's least significant result bit); ``asap``/``alap`` delimit the
    fragment's mobility in cycles.  All bits inside one fragment share the same
    (ASAP, ALAP) pair by construction, so no mobility is lost by fragmenting.
    """

    operation: Operation
    index: int
    bits: BitRange
    asap: int
    alap: int

    @property
    def width(self) -> int:
        return self.bits.width

    @property
    def mobility(self) -> int:
        return self.alap - self.asap + 1

    @property
    def is_scheduled(self) -> bool:
        """True when ASAP and ALAP coincide (the fragment is already placed)."""
        return self.asap == self.alap

    def destination_bits(self) -> BitRange:
        """The fragment's bits in destination-variable coordinates."""
        base = self.operation.destination.range.lo
        return self.bits.shifted(base)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.operation.name}{self.bits} "
            f"[asap={self.asap}, alap={self.alap}]"
        )


@dataclass
class FragmentationResult:
    """Fragments of every additive operation plus the schedules behind them."""

    specification: Specification
    latency: int
    chained_bits_per_cycle: int
    schedule: BitSchedule
    fragments: Dict[Operation, List[Fragment]] = field(default_factory=dict)

    def all_fragments(self) -> List[Fragment]:
        return [fragment for group in self.fragments.values() for fragment in group]

    def fragment_count(self) -> int:
        return len(self.all_fragments())

    def fragmented_operations(self) -> List[Operation]:
        """Operations that were actually broken into more than one fragment."""
        return [
            operation
            for operation, group in self.fragments.items()
            if len(group) > 1
        ]

    def operation_growth(self) -> float:
        """Relative growth in additive operation count caused by fragmentation."""
        original = len(self.fragments)
        if original == 0:
            return 0.0
        return (self.fragment_count() - original) / original


def fragments_of_operation(
    operation: Operation, schedule: BitSchedule, graph: BitDependencyGraph
) -> List[Fragment]:
    """Group an operation's result bits into fragments by (ASAP, ALAP) pair.

    Bits are walked from least to most significant; a new fragment starts
    whenever the (ASAP, ALAP) pair changes.  Because carry chains make both
    schedules monotonically non-decreasing along the bit index, each pair
    occupies a contiguous run of bits and the fragments come out LSB-first.
    """
    fragments: List[Fragment] = []
    current_pair: Optional[Tuple[int, int]] = None
    run_start = 0
    width = operation.width
    for bit in range(width):
        node = graph.node(operation, bit)
        pair = (schedule.asap_cycle(node), schedule.alap_cycle(node))
        if current_pair is None:
            current_pair = pair
            run_start = bit
        elif pair != current_pair:
            fragments.append(
                Fragment(
                    operation=operation,
                    index=len(fragments),
                    bits=BitRange(run_start, bit - 1),
                    asap=current_pair[0],
                    alap=current_pair[1],
                )
            )
            current_pair = pair
            run_start = bit
    if current_pair is not None:
        fragments.append(
            Fragment(
                operation=operation,
                index=len(fragments),
                bits=BitRange(run_start, width - 1),
                asap=current_pair[0],
                alap=current_pair[1],
            )
        )
    return fragments


def fragment_specification(
    specification: Specification,
    latency: int,
    chained_bits_per_cycle: int,
) -> FragmentationResult:
    """Run the bit-level fragmentation of every additive operation."""
    budget, schedule, graph = minimum_feasible_budget(
        specification,
        latency,
        chained_bits_per_cycle,
        graph=specification.bit_dependency_graph(),
    )
    result = FragmentationResult(
        specification=specification,
        latency=latency,
        chained_bits_per_cycle=budget,
        schedule=schedule,
    )
    for operation in specification.operations:
        if not operation.is_additive:
            continue
        result.fragments[operation] = fragments_of_operation(operation, schedule, graph)
    return result


# ----------------------------------------------------------------------
# The paper's per-operation pseudo-code (used by the mobility ablation)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SimpleFragment:
    """Fragment produced by the paper's simplified fill-from-both-ends rule."""

    size: int
    asap: int
    alap: int


def fragment_widths_simple(
    width: int, asap: int, alap: int, n_bits: int
) -> List[SimpleFragment]:
    """Literal transcription of the fragmentation pseudo-code in Section 3.3.

    The operation's bits are poured greedily into cycles from ``asap``
    forward (the ASAP fill) and from ``alap`` backward (the ALAP fill); the
    fragments are then read off by repeatedly matching the two fills and
    taking the minimum, so every fragment gets the (ASAP, ALAP) pair of the
    cycles it was matched against.
    """
    if width <= 0:
        raise FragmentationError(f"operation width must be positive, got {width}")
    if n_bits <= 0:
        raise FragmentationError(f"chained-bit budget must be positive, got {n_bits}")
    if alap < asap:
        raise FragmentationError(f"ALAP cycle {alap} earlier than ASAP cycle {asap}")
    if width > n_bits * (alap - asap + 1):
        raise FragmentationError(
            f"a {width}-bit operation cannot fit {alap - asap + 1} cycle(s) of "
            f"{n_bits} chained bits"
        )
    sched_asap: Dict[int, int] = {}
    sched_alap: Dict[int, int] = {}
    remaining = width
    i, j = asap, alap
    while remaining > 0:
        amount = n_bits if remaining > n_bits else remaining
        sched_asap[i] = sched_asap.get(i, 0) + amount
        sched_alap[j] = sched_alap.get(j, 0) + amount
        remaining -= n_bits
        i += 1
        j -= 1
    fragments: List[SimpleFragment] = []
    i, j = asap, asap
    total = 0
    while total < width:
        while sched_asap.get(i, 0) == 0:
            i += 1
        while sched_alap.get(j, 0) == 0:
            j += 1
        matched = min(sched_asap[i], sched_alap[j])
        sched_asap[i] -= matched
        sched_alap[j] -= matched
        fragments.append(SimpleFragment(size=matched, asap=i, alap=j))
        total += matched
    return fragments
