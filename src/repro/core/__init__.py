"""The paper's contribution: the presynthesis behavioural transformation.

Phase 1 (operative kernel extraction), phase 2 (clock-cycle estimation) and
phase 3 (fragmentation of operations), plus the rewrite that materialises the
optimized specification and the orchestrating :class:`BehaviouralTransformer`.
"""

from .fragmentation import (
    BitSchedule,
    BitSlot,
    Fragment,
    FragmentationError,
    FragmentationResult,
    SimpleFragment,
    compute_bit_schedule,
    fragment_specification,
    fragment_widths_simple,
    fragments_of_operation,
    minimum_feasible_budget,
)
from .kernel import ExtractionResult, ExtractionStatistics, KernelExtractor, extract_kernel
from .rewrite import (
    RewriteResult,
    RewriteStatistics,
    SpecificationRewriter,
    rewrite_specification,
)
from .timing import (
    CycleEstimate,
    TimingError,
    critical_path_bits,
    critical_path_by_walk,
    estimate_cycle_budget,
    operation_execution_bits,
    operation_mobility_cycles,
    path_execution_time,
)
from .transform import (
    BehaviouralTransformer,
    TransformOptions,
    TransformResult,
    transform,
)

__all__ = [
    "BehaviouralTransformer",
    "BitSchedule",
    "BitSlot",
    "CycleEstimate",
    "ExtractionResult",
    "ExtractionStatistics",
    "Fragment",
    "FragmentationError",
    "FragmentationResult",
    "KernelExtractor",
    "RewriteResult",
    "RewriteStatistics",
    "SimpleFragment",
    "SpecificationRewriter",
    "TimingError",
    "TransformOptions",
    "TransformResult",
    "compute_bit_schedule",
    "critical_path_bits",
    "critical_path_by_walk",
    "estimate_cycle_budget",
    "extract_kernel",
    "fragment_specification",
    "fragment_widths_simple",
    "fragments_of_operation",
    "minimum_feasible_budget",
    "operation_execution_bits",
    "operation_mobility_cycles",
    "path_execution_time",
    "rewrite_specification",
    "transform",
]
