"""Phase 2 -- estimation of the clock cycle duration.

The second phase of the optimization (Section 3.2 of the paper) identifies
the critical path of the behavioural description, measures it in **chained
1-bit additions**, and divides it by the latency to obtain the per-cycle
chained-bit budget::

    cycle_duration = ceil(execution_time(critical_path) / latency)

Three equivalent measurements are implemented:

* :func:`path_execution_time` -- the literal transcription of the path-walk
  algorithm printed in the paper (walk the path from output to input, start
  from the width of the last operation, add one per operation crossed plus the
  number of truncated least-significant bits when an operation is wider than
  its successor);
* :func:`critical_path_dag` -- the same metric computed by a single
  topological-order longest-path pass over the operation DFG (no path
  enumeration): additive operations are linked through glue logic into a
  contracted adjacency view, producer->consumer bit-truncation weights are
  memoized per edge, and one backward sweep yields the maximum over *all*
  paths in O(V+E) instead of O(paths x length);
* :func:`critical_path_bits` -- the bit-level longest arrival depth over the
  :class:`~repro.ir.dfg.BitDependencyGraph`, which accounts for the rippling
  effect exactly (Fig. 3 b: the F-H / G-H paths of 9 chained bits beat the
  B-C-E path that has more operations).

``critical_path_dag`` and the walker agree on every DFG by construction
(the property tests in ``tests/core/test_timing.py`` check this on random
graphs and on the paper workloads); :func:`critical_path_by_walk` therefore
only enumerates paths when explicitly asked to and falls back to the exact
DAG pass when the enumeration would be truncated.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.dfg import DataFlowGraph
from ..ir.operations import Operation, OpKind, is_glue
from ..ir.spec import Specification


class TimingError(ValueError):
    """Raised for invalid latencies or malformed paths."""


class PathLimitWarning(RuntimeWarning):
    """Emitted when path enumeration hits its limit and the DAG pass takes over."""


def operation_execution_bits(operation: Operation) -> int:
    """Execution time of one operation in chained 1-bit additions.

    Additive operations take as many chained bit-delays as their carry chain
    is long (the width of the widest operand); pure carry-out bits beyond the
    operand width are free.  Glue logic costs nothing, as in the paper.
    Multiplications, which only survive to this phase in the *original*
    (non-extracted) specification, are priced at the ripple depth of an array
    multiplier, ``m + n - 1``.
    """
    if is_glue(operation.kind):
        return 0
    if operation.kind is OpKind.MUL:
        left = operation.operands[0].width
        right = operation.operands[1].width
        return left + right - 1
    if operation.kind in (OpKind.MAX, OpKind.MIN):
        return operation.max_operand_width() + 1
    return max(operation.max_operand_width(), 1)


def _truncated_right(producer: Operation, consumer: Operation, graph: DataFlowGraph) -> int:
    """Least-significant result bits of *producer* not consumed by *consumer*.

    This is the ``truncated_right(ope)`` quantity of the paper's path
    algorithm: when an operation is wider than its successor (the successor
    reads only the high part of its result), the successor's ripple cannot
    start until those truncated low bits have been produced, so they add to
    the path execution time.
    """
    lowest_consumed: Optional[int] = None
    for edge in graph.in_edges(consumer):
        if edge.producer is not producer:
            continue
        relative_low = edge.bits.lo - producer.destination.range.lo
        if lowest_consumed is None or relative_low < lowest_consumed:
            lowest_consumed = relative_low
    if lowest_consumed is None:
        return 0
    return max(0, lowest_consumed)


def path_execution_time(path: Sequence[Operation], graph: DataFlowGraph) -> int:
    """Execution time of one DFG path, per the paper's Section 3.2 algorithm.

    Non-additive (glue) operations on the path are skipped, matching the
    paper's convention of measuring paths in chained 1-bit additions only.
    """
    additive_path = [op for op in path if not is_glue(op.kind)]
    if not additive_path:
        return 0
    time = operation_execution_bits(additive_path[-1])
    for index in range(len(additive_path) - 2, -1, -1):
        current = additive_path[index]
        successor = additive_path[index + 1]
        current_width = operation_execution_bits(current)
        successor_width = operation_execution_bits(successor)
        if current_width <= successor_width:
            time += 1
        else:
            time += 1 + _truncated_right(current, successor, graph)
    return time


def critical_path_dag(
    specification: Specification, graph: Optional[DataFlowGraph] = None
) -> int:
    """Critical path length by a single topological longest-path pass.

    Computes exactly the maximum of :func:`path_execution_time` over *all*
    source-to-sink paths of the DFG, without enumerating any of them:

    * glue operations are contracted away (they cost nothing and merely
      forward values), leaving a weighted adjacency between additive
      operations: crossing from additive ``u`` to the next additive ``v`` on
      a path costs ``1`` plus, when ``u`` rippled wider than ``v`` and feeds
      it directly, the truncated low bits ``v`` must wait for;
    * the truncation weight of each direct producer->consumer pair is
      computed once and memoized;
    * one backward sweep over the cached topological order then relaxes
      ``suffix(u) = max(exec(u) if u can end a path, w(u, v) + suffix(v))``.

    An additive operation may only *terminate* a measured path when some
    DFG path continues from it to a sink through glue alone (otherwise every
    enumerated path would cross a further additive operation), which the
    pass tracks with one reverse sweep over the glue operations.
    """
    if graph is None:
        graph = specification.dataflow_graph()
    order = graph.topological_order()
    additive = [op for op in order if not is_glue(op.kind)]
    if not additive:
        return 0

    exec_bits = {op: operation_execution_bits(op) for op in additive}

    # Which glue operations reach a sink without crossing an additive op.
    glue_ends: Dict[Operation, bool] = {}
    # Additive operations reachable from each glue op through glue alone.
    glue_next: Dict[Operation, Tuple[Operation, ...]] = {}
    for op in reversed(order):
        if not is_glue(op.kind):
            continue
        successors = graph.successors(op)
        ends = not successors
        following: List[Operation] = []
        for successor in successors:
            if is_glue(successor.kind):
                ends = ends or glue_ends[successor]
                for nxt in glue_next[successor]:
                    if nxt not in following:
                        following.append(nxt)
            elif successor not in following:
                following.append(successor)
        glue_ends[op] = ends
        glue_next[op] = tuple(following)

    # Memoized truncation weight of direct additive->additive edges.
    truncation: Dict[Tuple[int, int], int] = {}

    def edge_weight(producer: Operation, consumer: Operation, direct: bool) -> int:
        if not direct or exec_bits[producer] <= exec_bits[consumer]:
            return 1
        key = (producer.uid, consumer.uid)
        weight = truncation.get(key)
        if weight is None:
            weight = 1 + _truncated_right(producer, consumer, graph)
            truncation[key] = weight
        return weight

    suffix: Dict[Operation, int] = {}
    for op in reversed(order):
        if is_glue(op.kind):
            continue
        successors = graph.successors(op)
        can_end = not successors
        # Next additive operations on any path out of *op*: the direct ones
        # (truncation applies) and those reached through glue (weight 1).
        best: Optional[int] = None
        for successor in successors:
            if is_glue(successor.kind):
                can_end = can_end or glue_ends[successor]
                for nxt in glue_next[successor]:
                    candidate = edge_weight(op, nxt, direct=False) + suffix[nxt]
                    if best is None or candidate > best:
                        best = candidate
            else:
                candidate = edge_weight(op, successor, direct=True) + suffix[successor]
                if best is None or candidate > best:
                    best = candidate
        if can_end and (best is None or exec_bits[op] > best):
            best = exec_bits[op]
        suffix[op] = best if best is not None else exec_bits[op]
    return max(suffix.values())


def critical_path_by_walk(
    specification: Specification,
    path_limit: int = 20000,
    on_limit: str = "fallback",
) -> int:
    """Critical path length via explicit path enumeration (paper's algorithm).

    Historically this silently returned the maximum over the first
    ``path_limit`` paths -- an *undercount* on large specifications.  The
    enumeration now reports truncation and ``on_limit`` decides the outcome:

    * ``"fallback"`` (default) -- warn (:class:`PathLimitWarning`) and return
      the exact result of the O(V+E) DAG pass instead;
    * ``"raise"`` -- raise :class:`TimingError`;
    * ``"truncate"`` -- the legacy undercounting walker, kept only so tests
      can cross-check the enumeration against :func:`critical_path_dag` on
      graphs known to fit the limit.
    """
    if on_limit not in ("fallback", "raise", "truncate"):
        raise ValueError(
            f"on_limit must be 'fallback', 'raise' or 'truncate', got {on_limit!r}"
        )
    graph = specification.dataflow_graph()
    paths, truncated = graph.enumerate_paths(limit=path_limit)
    if truncated and on_limit != "truncate":
        if on_limit == "raise":
            raise TimingError(
                f"{specification.name} has more than {path_limit} source-to-sink "
                "paths; the enumerated maximum would undercount the critical "
                "path (use critical_path_dag or on_limit='fallback')"
            )
        warnings.warn(
            f"{specification.name}: path enumeration truncated at {path_limit} "
            "paths; falling back to the exact single-pass DAG computation",
            PathLimitWarning,
            stacklevel=2,
        )
        return critical_path_dag(specification, graph)
    best = 0
    for path in paths:
        best = max(best, path_execution_time(path, graph))
    return best


def critical_path_bits(specification: Specification) -> int:
    """Critical path length in chained 1-bit additions (bit-accurate)."""
    return specification.bit_dependency_graph().critical_depth()


@dataclass(frozen=True)
class CycleEstimate:
    """Result of the clock-cycle estimation phase."""

    critical_path_bits: int
    latency: int
    chained_bits_per_cycle: int

    @property
    def minimum_latency(self) -> int:
        """Cycles needed if every cycle packed exactly the budget."""
        if self.chained_bits_per_cycle == 0:
            return 1
        return math.ceil(self.critical_path_bits / self.chained_bits_per_cycle)

    def cycle_length_ns(self, delta_ns: float, overhead_ns: float = 0.0) -> float:
        """Convert the chained-bit budget to nanoseconds."""
        return self.chained_bits_per_cycle * delta_ns + overhead_ns


def estimate_cycle_budget(
    specification: Specification,
    latency: int,
    critical_bits: Optional[int] = None,
) -> CycleEstimate:
    """Phase 2: ``cycle_duration = ceil(critical_path / latency)``.

    Parameters
    ----------
    specification:
        The kernel-extracted specification (phase 1 output).
    latency:
        The number of clock cycles the circuit must fit in (the paper's
        lambda), imposed by the time-constrained scheduling problem.
    critical_bits:
        Precomputed critical path length, if available.
    """
    if latency <= 0:
        raise TimingError(f"latency must be a positive cycle count, got {latency}")
    if critical_bits is None:
        critical_bits = critical_path_bits(specification)
    if critical_bits == 0:
        return CycleEstimate(0, latency, 0)
    budget = math.ceil(critical_bits / latency)
    return CycleEstimate(critical_bits, latency, budget)


def operation_mobility_cycles(
    specification: Specification, latency: int
) -> Dict[Operation, range]:
    """Coarse operation-level ASAP/ALAP mobility (in cycles) for reporting.

    This is the conventional operation-level mobility (each additive
    operation occupies one cycle), used only for descriptive statistics; the
    fragmentation phase uses the bit-level schedules instead.
    """
    graph = specification.dataflow_graph()
    order = graph.topological_order()
    asap: Dict[Operation, int] = {}
    for operation in order:
        predecessors = graph.predecessors(operation)
        level = 1
        if predecessors:
            level = max(asap[p] + (0 if is_glue(p.kind) else 1) for p in predecessors)
            level = max(level, 1)
        asap[operation] = level
    depth = max(asap.values()) if asap else 1
    horizon = max(latency, depth)
    alap: Dict[Operation, int] = {}
    for operation in reversed(order):
        successors = graph.successors(operation)
        if not successors:
            alap[operation] = horizon
        else:
            alap[operation] = min(
                alap[s] - (0 if is_glue(operation.kind) else 1) for s in successors
            )
    return {
        operation: range(asap[operation], max(asap[operation], alap[operation]) + 1)
        for operation in order
    }
