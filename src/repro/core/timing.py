"""Phase 2 -- estimation of the clock cycle duration.

The second phase of the optimization (Section 3.2 of the paper) identifies
the critical path of the behavioural description, measures it in **chained
1-bit additions**, and divides it by the latency to obtain the per-cycle
chained-bit budget::

    cycle_duration = ceil(execution_time(critical_path) / latency)

Two equivalent measurements are implemented:

* :func:`path_execution_time` -- the literal transcription of the path-walk
  algorithm printed in the paper (walk the path from output to input, start
  from the width of the last operation, add one per operation crossed plus the
  number of truncated least-significant bits when an operation is wider than
  its successor);
* :func:`critical_path_bits` -- the bit-level longest arrival depth over the
  :class:`~repro.ir.dfg.BitDependencyGraph`, which accounts for the rippling
  effect exactly (Fig. 3 b: the F-H / G-H paths of 9 chained bits beat the
  B-C-E path that has more operations).

The two agree on well-formed additive DFGs; the property tests in
``tests/core/test_timing.py`` check the relationship on random graphs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..ir.dfg import BitDependencyGraph, DataFlowGraph
from ..ir.operations import Operation, OpKind, is_glue
from ..ir.spec import Specification


class TimingError(ValueError):
    """Raised for invalid latencies or malformed paths."""


def operation_execution_bits(operation: Operation) -> int:
    """Execution time of one operation in chained 1-bit additions.

    Additive operations take as many chained bit-delays as their carry chain
    is long (the width of the widest operand); pure carry-out bits beyond the
    operand width are free.  Glue logic costs nothing, as in the paper.
    Multiplications, which only survive to this phase in the *original*
    (non-extracted) specification, are priced at the ripple depth of an array
    multiplier, ``m + n - 1``.
    """
    if is_glue(operation.kind):
        return 0
    if operation.kind is OpKind.MUL:
        left = operation.operands[0].width
        right = operation.operands[1].width
        return left + right - 1
    if operation.kind in (OpKind.MAX, OpKind.MIN):
        return operation.max_operand_width() + 1
    return max(operation.max_operand_width(), 1)


def _truncated_right(producer: Operation, consumer: Operation, graph: DataFlowGraph) -> int:
    """Least-significant result bits of *producer* not consumed by *consumer*.

    This is the ``truncated_right(ope)`` quantity of the paper's path
    algorithm: when an operation is wider than its successor (the successor
    reads only the high part of its result), the successor's ripple cannot
    start until those truncated low bits have been produced, so they add to
    the path execution time.
    """
    lowest_consumed: Optional[int] = None
    for edge in graph.in_edges(consumer):
        if edge.producer is not producer:
            continue
        relative_low = edge.bits.lo - producer.destination.range.lo
        if lowest_consumed is None or relative_low < lowest_consumed:
            lowest_consumed = relative_low
    if lowest_consumed is None:
        return 0
    return max(0, lowest_consumed)


def path_execution_time(path: Sequence[Operation], graph: DataFlowGraph) -> int:
    """Execution time of one DFG path, per the paper's Section 3.2 algorithm.

    Non-additive (glue) operations on the path are skipped, matching the
    paper's convention of measuring paths in chained 1-bit additions only.
    """
    additive_path = [op for op in path if not is_glue(op.kind)]
    if not additive_path:
        return 0
    time = operation_execution_bits(additive_path[-1])
    for index in range(len(additive_path) - 2, -1, -1):
        current = additive_path[index]
        successor = additive_path[index + 1]
        current_width = operation_execution_bits(current)
        successor_width = operation_execution_bits(successor)
        if current_width <= successor_width:
            time += 1
        else:
            time += 1 + _truncated_right(current, successor, graph)
    return time


def critical_path_by_walk(specification: Specification, path_limit: int = 20000) -> int:
    """Critical path length via explicit path enumeration (paper's algorithm)."""
    graph = DataFlowGraph(specification)
    best = 0
    for path in graph.all_paths(limit=path_limit):
        best = max(best, path_execution_time(path, graph))
    return best


def critical_path_bits(specification: Specification) -> int:
    """Critical path length in chained 1-bit additions (bit-accurate)."""
    return BitDependencyGraph(specification).critical_depth()


@dataclass(frozen=True)
class CycleEstimate:
    """Result of the clock-cycle estimation phase."""

    critical_path_bits: int
    latency: int
    chained_bits_per_cycle: int

    @property
    def minimum_latency(self) -> int:
        """Cycles needed if every cycle packed exactly the budget."""
        if self.chained_bits_per_cycle == 0:
            return 1
        return math.ceil(self.critical_path_bits / self.chained_bits_per_cycle)

    def cycle_length_ns(self, delta_ns: float, overhead_ns: float = 0.0) -> float:
        """Convert the chained-bit budget to nanoseconds."""
        return self.chained_bits_per_cycle * delta_ns + overhead_ns


def estimate_cycle_budget(
    specification: Specification,
    latency: int,
    critical_bits: Optional[int] = None,
) -> CycleEstimate:
    """Phase 2: ``cycle_duration = ceil(critical_path / latency)``.

    Parameters
    ----------
    specification:
        The kernel-extracted specification (phase 1 output).
    latency:
        The number of clock cycles the circuit must fit in (the paper's
        lambda), imposed by the time-constrained scheduling problem.
    critical_bits:
        Precomputed critical path length, if available.
    """
    if latency <= 0:
        raise TimingError(f"latency must be a positive cycle count, got {latency}")
    if critical_bits is None:
        critical_bits = critical_path_bits(specification)
    if critical_bits == 0:
        return CycleEstimate(0, latency, 0)
    budget = math.ceil(critical_bits / latency)
    return CycleEstimate(critical_bits, latency, budget)


def operation_mobility_cycles(
    specification: Specification, latency: int
) -> Dict[Operation, range]:
    """Coarse operation-level ASAP/ALAP mobility (in cycles) for reporting.

    This is the conventional operation-level mobility (each additive
    operation occupies one cycle), used only for descriptive statistics; the
    fragmentation phase uses the bit-level schedules instead.
    """
    graph = DataFlowGraph(specification)
    order = graph.topological_order()
    asap: Dict[Operation, int] = {}
    for operation in order:
        predecessors = graph.predecessors(operation)
        level = 1
        if predecessors:
            level = max(asap[p] + (0 if is_glue(p.kind) else 1) for p in predecessors)
            level = max(level, 1)
        asap[operation] = level
    depth = max(asap.values()) if asap else 1
    horizon = max(latency, depth)
    alap: Dict[Operation, int] = {}
    for operation in reversed(order):
        successors = graph.successors(operation)
        if not successors:
            alap[operation] = horizon
        else:
            alap[operation] = min(
                alap[s] - (0 if is_glue(operation.kind) else 1) for s in successors
            )
    return {
        operation: range(asap[operation], max(asap[operation], alap[operation]) + 1)
        for operation in order
    }
