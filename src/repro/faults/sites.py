"""Named fault sites and the :func:`site` hook threaded through the runtime.

A *fault site* is a named, documented place in the execution substrate where
the chaos suite may inject a failure: the top of a sweep point, each pipeline
pass, every workspace write/read.  The catalogue below
(:data:`SITE_REGISTRY`) is the single source of truth -- a
:class:`~repro.faults.plan.FaultPlan` naming an unknown site, or a kind the
site does not support, is rejected at construction.  The chaos test suite
iterates this registry so every ``site x kind`` pair is provably exercised
(the runtime analogue of ``repro check --mutate``'s escape gate).

The hook itself is a data filter::

    payload = faults.site("workspace.write_object", key=address, payload=raw)

With no plan installed it returns *payload* untouched at the cost of one
global load.  With a plan installed it may raise :class:`InjectedFault`,
sleep (``hang``), SIGKILL the process (``kill``), or return a deterministically
corrupted payload (``torn-write`` / ``bit-flip``).
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from . import plan as _plan
from .plan import InjectedFault

__all__ = ["FaultSite", "SITE_REGISTRY", "site"]


@dataclass(frozen=True)
class FaultSite:
    """A registered injection point: name, supported kinds, description."""

    name: str
    kinds: Tuple[str, ...]
    description: str


def _registry(*sites: FaultSite) -> Dict[str, FaultSite]:
    registry: Dict[str, FaultSite] = {}
    for entry in sites:
        for kind in entry.kinds:
            if kind not in _plan.FAULT_KINDS:
                raise _plan.FaultError(
                    f"site {entry.name!r} lists unknown kind {kind!r}"
                )
        registry[entry.name] = entry
    return registry


#: The fault-site catalogue.  Keep DESIGN.md's table in sync when editing.
SITE_REGISTRY: Dict[str, FaultSite] = _registry(
    FaultSite(
        "sweep.point",
        ("raise", "hang", "kill"),
        "Start of one sweep point's pipeline run (key: point label). "
        "`kill` SIGKILLs the executing process -- only meaningful under the "
        "process executor, where it drills pool-worker death.",
    ),
    FaultSite(
        "pipeline.pass",
        ("raise", "hang"),
        "Before each pipeline pass body (key: pass name). `hang` here is "
        "what the heartbeat watchdog exists to catch.",
    ),
    FaultSite(
        "workspace.write_object",
        ("raise", "torn-write", "bit-flip"),
        "Serialized row bytes about to hit the content-addressed store "
        "(key: object address).",
    ),
    FaultSite(
        "workspace.write_manifest",
        ("raise", "torn-write", "kill"),
        "Serialized manifest bytes about to be written (key: workspace "
        "root). `kill` simulates SIGKILL mid-save; the journal must cover "
        "the rows the lost manifest would have recorded.",
    ),
    FaultSite(
        "workspace.journal.append",
        ("raise", "torn-write"),
        "One journal line about to be appended to the write-ahead log "
        "(key: point id).",
    ),
    FaultSite(
        "workspace.load_object",
        ("raise", "bit-flip"),
        "Row bytes just read back from the store (key: object address). "
        "`bit-flip` models at-rest corruption the loader must quarantine.",
    ),
)


def site(name: str, key: Optional[str] = None, payload: bytes = b"") -> bytes:
    """Consult the active fault plan at site *name*; filter *payload*.

    Returns *payload* (possibly corrupted).  May raise
    :class:`InjectedFault`, sleep, or SIGKILL the process, depending on the
    matched rule's kind.  With no plan installed this is a no-op.
    """
    active = _plan.active_plan()
    if active is None:
        return payload
    if name not in SITE_REGISTRY:
        raise _plan.FaultError(f"unregistered fault site {name!r}")
    claimed = active.claim(name, key)
    if claimed is None:
        return payload
    rule, occurrence = claimed
    if rule.kind == "raise":
        raise InjectedFault(name, key, occurrence)
    if rule.kind == "hang":
        time.sleep(rule.hang_s)
        return payload
    if rule.kind == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
        # Unreachable in practice; keeps the type checker honest.
        raise InjectedFault(name, key, occurrence)
    return active.corrupt(rule, name, key, occurrence, payload)
