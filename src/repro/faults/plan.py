"""Deterministic fault plans: what to break, where, and how many times.

A :class:`FaultPlan` is a small, serializable list of :class:`FaultRule`
objects, each naming a registered fault site (see
:mod:`repro.faults.sites`), a fault kind, and how many matching occurrences
to corrupt.  Plans are **deterministic**: the same plan over the same run
triggers at exactly the same occurrences, and data corruptions (torn writes,
bit flips) are derived from the plan seed plus the site/key/occurrence
coordinates, never from a live RNG.  That is what lets the chaos suite
assert exact outcomes ("the second write of this object is torn, the study
still completes") instead of statistically hoping for coverage.

Plans are installed process-globally (:func:`install` / the
:func:`injecting` context manager) and consulted by the
:func:`repro.faults.sites.site` hooks threaded through the sweep engine, the
pipeline and the workspace.  ``FaultPlan.to_dict``/``from_dict`` round-trips
a plan so the process-executor sweep can arm it inside pool workers.
"""

from __future__ import annotations

import contextlib
import hashlib
import threading
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence

__all__ = [
    "FAULT_KINDS",
    "FaultError",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "active_plan",
    "injecting",
    "install",
    "uninstall",
]

#: Every fault kind the harness can inject.  ``raise`` and ``hang`` corrupt
#: control flow, ``kill`` SIGKILLs the current process (worker-death drills),
#: ``torn-write`` truncates a payload mid-write and ``bit-flip`` flips one
#: deterministic bit of a payload (storage corruption drills).
FAULT_KINDS = ("raise", "hang", "kill", "torn-write", "bit-flip")

#: The kinds that act on a byte payload rather than on control flow.
DATA_KINDS = ("torn-write", "bit-flip")


class FaultError(ValueError):
    """Raised for malformed fault plans or unregistered sites."""


class InjectedFault(RuntimeError):
    """The exception thrown by ``raise``-kind injections.

    Deliberately **not** an :class:`OSError`: recovery code that tolerates
    I/O errors must still see injected faults, so an injection can never be
    silently absorbed by a handler it was not aimed at.
    """

    def __init__(self, site: str, key: Optional[str], occurrence: int) -> None:
        super().__init__(
            f"injected fault at site {site!r}"
            + (f" (key {key!r})" if key else "")
            + f", occurrence {occurrence}"
        )
        self.site = site
        self.key = key
        self.occurrence = occurrence


@dataclass(frozen=True)
class FaultRule:
    """One injection: a site, a kind, and which occurrences to hit.

    Parameters
    ----------
    site:
        Name of a registered fault site (see
        :data:`repro.faults.sites.SITE_REGISTRY`).
    kind:
        One of :data:`FAULT_KINDS`; must be supported by the site.
    times:
        Trigger on the first *times* matching occurrences (then go quiet).
        ``None`` triggers on every matching occurrence.
    match:
        Substring filter on the site's key (a point id, an object address, a
        pass name); ``None`` matches every key.
    hang_s:
        Sleep duration of ``hang``-kind injections.
    skip:
        Let the first *skip* matching occurrences pass unharmed before the
        rule starts firing -- how a scenario targets "the manifest save
        *after* the first row", not the run-start bookkeeping save.
    """

    site: str
    kind: str
    times: Optional[int] = 1
    match: Optional[str] = None
    hang_s: float = 30.0
    skip: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultError(
                f"unknown fault kind {self.kind!r}: expected one of {FAULT_KINDS}"
            )
        if self.times is not None and self.times < 1:
            raise FaultError("times must be >= 1 (or None for every occurrence)")
        if self.hang_s <= 0:
            raise FaultError("hang_s must be positive")
        if self.skip < 0:
            raise FaultError("skip must be >= 0")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "site": self.site,
            "kind": self.kind,
            "times": self.times,
            "match": self.match,
            "hang_s": self.hang_s,
            "skip": self.skip,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultRule":
        return cls(**data)


class FaultPlan:
    """A seeded, deterministic list of fault rules with firing counters.

    Thread-safe: concurrent sweep workers consulting the plan see a single
    consistent occurrence count per rule, so ``times=1`` means *one* firing
    across the whole process, whatever the interleaving.
    """

    def __init__(self, rules: Sequence[FaultRule], seed: int = 0) -> None:
        from .sites import SITE_REGISTRY

        self.rules: List[FaultRule] = list(rules)
        self.seed = seed
        for rule in self.rules:
            registered = SITE_REGISTRY.get(rule.site)
            if registered is None:
                known = ", ".join(sorted(SITE_REGISTRY))
                raise FaultError(
                    f"unregistered fault site {rule.site!r}: expected one of {known}"
                )
            if rule.kind not in registered.kinds:
                raise FaultError(
                    f"site {rule.site!r} does not support kind {rule.kind!r} "
                    f"(supported: {', '.join(registered.kinds)})"
                )
        self._seen = [0] * len(self.rules)
        self._fired = [0] * len(self.rules)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def fired(self) -> Dict[int, int]:
        """Per-rule firing counts so far (rule index -> count)."""
        with self._lock:
            return {i: n for i, n in enumerate(self._fired) if n}

    def claim(self, site: str, key: Optional[str]) -> Optional[tuple]:
        """The (rule, occurrence) to fire at this site visit, or ``None``.

        Claiming is atomic: the matching rule's occurrence counter advances
        under the lock and each occurrence number is handed out exactly once,
        so two concurrent visits can never both fire a ``times=1`` rule.
        """
        for index, rule in enumerate(self.rules):
            if rule.site != site:
                continue
            if rule.match is not None and rule.match not in (key or ""):
                continue
            with self._lock:
                self._seen[index] += 1
                occurrence = self._seen[index]
                if occurrence <= rule.skip:
                    continue
                if rule.times is not None and occurrence > rule.skip + rule.times:
                    continue
                self._fired[index] += 1
            return rule, occurrence
        return None

    def corrupt(
        self, rule: FaultRule, site: str, key: Optional[str], occurrence: int,
        payload: bytes,
    ) -> bytes:
        """Deterministically corrupt *payload* per the rule's data kind."""
        if rule.kind == "torn-write":
            # A torn write leaves a strict prefix behind -- what a crash
            # mid-write (or a full disk) actually produces.
            return payload[: max(1, len(payload) // 2)]
        if rule.kind == "bit-flip":
            if not payload:
                return payload
            digest = hashlib.sha256(
                f"{self.seed}:{site}:{key}:{occurrence}".encode("utf-8")
            ).hexdigest()
            bit = int(digest, 16) % (len(payload) * 8)
            flipped = bytearray(payload)
            flipped[bit // 8] ^= 1 << (bit % 8)
            return bytes(flipped)
        raise FaultError(f"kind {rule.kind!r} does not corrupt data")

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Serializable form (firing counters are *not* carried over)."""
        return {
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        return cls(
            [FaultRule.from_dict(rule) for rule in data.get("rules", [])],
            seed=data.get("seed", 0),
        )


#: The process-global active plan consulted by every site hook.  ``None``
#: (the overwhelmingly common case) short-circuits the hooks to a single
#: attribute load, so production runs pay effectively nothing.
_ACTIVE: Optional[FaultPlan] = None
_ACTIVE_LOCK = threading.Lock()


def install(plan: FaultPlan) -> None:
    """Install *plan* as the process-global active plan."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = plan


def uninstall() -> None:
    """Remove the active plan (idempotent)."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = None


def active_plan() -> Optional[FaultPlan]:
    """The currently installed plan, or ``None``."""
    return _ACTIVE


@contextlib.contextmanager
def injecting(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Context manager: install *plan* for the duration of the block."""
    install(plan)
    try:
        yield plan
    finally:
        uninstall()
