"""Deterministic fault injection for the experiment-execution substrate.

``repro.faults`` is the runtime analogue of ``repro check --mutate``: a
seeded harness that breaks the sweep engine, the pipeline and the workspace
in every registered way and lets the chaos suite assert that each breakage
is either retried to success or surfaced as a coded error row with the
workspace still resumable.

Usage::

    from repro import faults

    plan = faults.FaultPlan(
        [faults.FaultRule("sweep.point", "raise", times=1)], seed=7
    )
    with faults.injecting(plan):
        result = run_study(study, engine, workspace)

See :data:`repro.faults.sites.SITE_REGISTRY` for the site catalogue and
DESIGN.md's "Fault-site catalogue" section for the prose version.
"""

from .plan import (
    FAULT_KINDS,
    FaultError,
    FaultPlan,
    FaultRule,
    InjectedFault,
    active_plan,
    injecting,
    install,
    uninstall,
)
from .sites import SITE_REGISTRY, FaultSite, site

__all__ = [
    "FAULT_KINDS",
    "FaultError",
    "FaultPlan",
    "FaultRule",
    "FaultSite",
    "InjectedFault",
    "SITE_REGISTRY",
    "active_plan",
    "injecting",
    "install",
    "site",
    "uninstall",
]
