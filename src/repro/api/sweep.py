"""Streaming parallel sweep engine: fan configs across worker pools.

:class:`SweepEngine` takes :class:`~repro.api.config.FlowConfig` objects and
runs each through a :class:`~repro.api.pipeline.Pipeline`, optionally in
parallel.  Three executors are supported:

* ``"serial"`` -- plain loop, no pool (the default when ``max_workers`` is
  unset or 1);
* ``"thread"`` -- a :class:`concurrent.futures.ThreadPoolExecutor` sharing
  one pipeline and cache; full artifacts are returned;
* ``"process"`` -- a :class:`concurrent.futures.ProcessPoolExecutor` for
  CPU-bound sweeps.  Configs must be self-contained (a ``workload`` or
  ``spec_text`` source, no injected specification or library override)
  because each worker rebuilds its pipeline from the serialized config;
  workers return the JSON metric report, not full artifacts.

The engine is **streaming**: :meth:`SweepEngine.submit` returns a
:class:`SweepRun` handle whose :meth:`~SweepRun.as_completed` iterator yields
:class:`SweepOutcome` objects as points finish (completion order), with an
optional per-outcome progress callback and cooperative cancellation
(:meth:`SweepRun.cancel` -- in-flight points finish, unstarted points come
back with ``cancelled=True``).  The classic batch :meth:`SweepEngine.run` is
kept as a shim over ``submit``: it drains the stream and returns outcomes in
the order the configs were given, whatever order the workers finished in, so
batch sweeps stay deterministic.

Fault isolation
---------------

Per-config failures never abort the sweep by default: each point runs under
a :class:`~repro.api.resilience.RetryPolicy` (merged from the engine default
and the config's ``retries``/``timeout_s``/``on_error`` execution fields)
and a failing point is retried with deterministic exponential backoff, then
surfaced as a structured outcome carrying a stable ``RUN0xx`` error code,
the exception chain and the per-attempt history.  The policy's wall-clock
timeout is enforced for every executor: serial/thread attempts run on a
watchdog-supervised daemon thread (heartbeat staleness distinguishes a
*hung* point, ``RUN004``, from a merely slow one, ``RUN002``), while the
process executor tracks per-future deadlines and kills the pool's workers
when one expires -- the innocent bystanders of the rebuilt pool are
resubmitted without consuming an attempt.  A worker process dying for any
other reason (OOM kill, SIGKILL, crash) breaks the pool; every unfinished
point is charged one ``RUN003`` attempt (the pool cannot say which task
killed the worker), the pool is rebuilt, and points with attempts remaining
are retried on fresh workers.  ``on_error="raise"`` converts the first
exhausted point into a :class:`SweepPointError` that aborts the stream.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    CancelledError,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .. import faults
from ..ir.spec import Specification
from ..util import paused_gc
from . import resilience
from .artifacts import RunArtifact, build_timing_report
from .config import FlowConfig
from .passes import DEFAULT_PASSES
from .pipeline import Pipeline
from .resilience import AttemptRecord, RetryPolicy

_EXECUTORS = ("serial", "thread", "process")

#: Default chunk size of batched sweeps (``latency_sweep``, the CLI, the perf
#: harness).  Streaming ``submit`` calls keep per-point granularity (chunk 1)
#: unless the engine or the configs opt into batching.
DEFAULT_SWEEP_CHUNK = 8

#: Poll resolution of the watchdog loops (seconds).  Bounds how late a
#: timeout can fire; small enough to be invisible next to real pipeline runs.
_WATCHDOG_TICK_S = 0.02


@dataclass
class SweepOutcome:
    """The result of one config within a sweep.

    ``cancelled`` marks points that never ran because the sweep was
    cooperatively cancelled; they carry neither a report nor an error and
    count as not-``ok``.  Failed points carry a stable ``error_code`` from
    :data:`repro.api.resilience.RUN_CODE_REGISTRY`, the compact exception
    chain, and one :class:`~repro.api.resilience.AttemptRecord` per try
    (successful final attempts included).
    """

    index: int
    config: FlowConfig
    report: Optional[Dict[str, Any]] = None
    artifact: Optional[RunArtifact] = None
    error: Optional[str] = None
    error_code: Optional[str] = None
    error_chain: List[str] = field(default_factory=list)
    attempts: List[AttemptRecord] = field(default_factory=list)
    elapsed_s: float = 0.0
    cancelled: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None and not self.cancelled

    @property
    def attempts_made(self) -> int:
        return len(self.attempts)


class SweepPointError(RuntimeError):
    """Raised (``on_error="raise"``) when a point exhausts its attempts.

    Carries the failed :class:`SweepOutcome`; the stream is cancelled before
    the raise, so in-flight points finish but nothing new starts.
    """

    def __init__(self, outcome: SweepOutcome) -> None:
        config = outcome.config
        super().__init__(
            f"sweep point #{outcome.index} "
            f"({config.workload or 'inline spec'}, latency {config.latency}) "
            f"failed [{outcome.error_code}] after "
            f"{outcome.attempts_made} attempt(s): {outcome.error}"
        )
        self.outcome = outcome


class _AttemptTimeout(Exception):
    """Internal: the watchdog expired an attempt's wall-clock budget."""


class _AttemptHang(Exception):
    """Internal: the watchdog saw a stale heartbeat (hung point)."""


#: Progress callback invoked once per completed outcome, in completion order.
ProgressFn = Callable[[SweepOutcome], None]


def _point_key(index: int, config: FlowConfig) -> str:
    """Stable per-point key: fault-site key and backoff-jitter seed."""
    return (
        f"{index}:{config.workload or 'spec'}"
        f":l{config.latency}:{config.mode.value}"
    )


def _run_config_in_worker(
    config_dict: Dict[str, Any],
    cache_dir: Optional[str] = None,
    stop_after: Optional[str] = None,
    fault_plan: Optional[Dict[str, Any]] = None,
    point_key: Optional[str] = None,
) -> Dict[str, Any]:
    """Process-pool entry point: rebuild the config, run, return the report.

    When the parent pipeline has a disk-backed cache, its directory is
    forwarded so workers share the on-disk tier (its writes are atomic).
    The elapsed time is measured here, in the worker, so it reflects the
    point's actual run time rather than how long the parent waited on the
    future.

    ``fault_plan`` arms the parent's fault plan inside the worker (chaos
    runs only); it is shipped exclusively with a point's *first* attempt, so
    a ``kill``-kind rule fires once instead of re-arming in every fresh
    worker a retry lands on.
    """
    from .cache import ResultCache

    config = FlowConfig.from_dict(config_dict)
    if fault_plan is not None:
        faults.install(faults.FaultPlan.from_dict(fault_plan))
    else:
        # Fork-started workers inherit the parent's installed plan as a
        # module global, counters rewound to the fork point -- a retry
        # landing on a fresh worker would re-arm and re-fire a kill-kind
        # rule forever.  Retries run unarmed by contract: clear it.
        faults.uninstall()
    try:
        faults.site("sweep.point", key=point_key)
        cache = ResultCache(directory=cache_dir) if cache_dir is not None else None
        started = time.perf_counter()
        artifact = Pipeline(cache=cache).run(config, stop_after=stop_after)
        report = artifact.report
        if report is None and stop_after is not None:
            report = build_timing_report(artifact)
        assert report is not None
        return {"report": report, "elapsed_s": time.perf_counter() - started}
    finally:
        faults.uninstall()


def _run_chunk_in_worker(
    config_dicts: List[Dict[str, Any]],
    cache_dir: Optional[str] = None,
    stop_after: Optional[str] = None,
    point_keys: Optional[List[str]] = None,
) -> List[Dict[str, Any]]:
    """Process-pool entry point of one chunked batch: N points, one task.

    The pipeline (and its disk-cache handle) is built once per chunk and the
    points run back to back under one GC pause, so a chunk pays the worker
    dispatch, unpickling and interpreter fixed costs once instead of once
    per point.  Failures stay per point: a raising point contributes an
    error payload in its slot and the rest of the chunk still runs.  Chunked
    process sweeps only engage for plain policies (single attempt, no
    timeout), so there is no retry bookkeeping to honour here.
    """
    from .cache import ResultCache

    # Same contract as single-point workers: fork-inherited fault plans are
    # cleared (chunked sweeps never ship one).
    faults.uninstall()
    cache = ResultCache(directory=cache_dir) if cache_dir is not None else None
    pipeline = Pipeline(cache=cache)
    results: List[Dict[str, Any]] = []
    with paused_gc():
        for position, config_dict in enumerate(config_dicts):
            started = time.perf_counter()
            try:
                faults.site(
                    "sweep.point",
                    key=point_keys[position] if point_keys else None,
                )
                config = FlowConfig.from_dict(config_dict)
                artifact = pipeline.run(config, stop_after=stop_after)
                report = artifact.report
                if report is None and stop_after is not None:
                    report = build_timing_report(artifact)
                assert report is not None
                results.append(
                    {
                        "report": report,
                        "elapsed_s": time.perf_counter() - started,
                    }
                )
            except Exception as error:  # noqa: BLE001 - per-point isolation
                results.append(
                    {
                        "error": resilience.format_exception(error),
                        "error_chain": resilience.exception_chain(error),
                        "elapsed_s": time.perf_counter() - started,
                    }
                )
    return results


@dataclass
class _ProcessPointState:
    """Book-keeping of one point under the process executor's retry loop."""

    index: int
    config: FlowConfig
    policy: RetryPolicy
    key: str
    attempt: int = 0
    attempts: List[AttemptRecord] = field(default_factory=list)
    ready_at: float = 0.0
    started_total: float = 0.0


class SweepRun:
    """Handle over one in-flight sweep: stream, collect or cancel it.

    Created by :meth:`SweepEngine.submit`; not instantiated directly.  The
    underlying worker pool (if any) is opened lazily by the first
    :meth:`as_completed` pull and closed when the stream is exhausted or the
    iterator is dropped -- dropping it mid-stream implicitly cancels the
    queued points (in-flight ones finish), so abandoning a sweep never runs
    the rest of it in the background.
    """

    def __init__(
        self,
        engine: "SweepEngine",
        configs: List[FlowConfig],
        specifications: Optional[List[Optional[Specification]]],
        on_outcome: Optional[ProgressFn] = None,
    ) -> None:
        self._engine = engine
        self._configs = configs
        self._specifications = specifications
        self._on_outcome = on_outcome
        #: Guard consulted by worker tasks; also set by the stream's cleanup
        #: paths (normal exhaustion included, where it is a no-op).
        self._cancel_event = threading.Event()
        #: Whether cancellation was actually *requested* -- by cancel() or
        #: by dropping the stream mid-sweep; never set by a normal drain.
        self._cancel_requested = False
        self._outcomes: Dict[int, SweepOutcome] = {}
        self._stream: Optional[Iterator[SweepOutcome]] = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._configs)

    @property
    def cancelled(self) -> bool:
        """Whether cancellation was requested (explicitly, or by dropping
        the stream mid-sweep).  ``False`` after a normal complete drain."""
        return self._cancel_requested

    def cancel(self) -> None:
        """Request cooperative cancellation.

        Points already running finish normally (and are yielded as usual);
        points not yet started are yielded as ``cancelled`` outcomes without
        running.  Safe to call from a progress callback or another thread.
        """
        self._cancel_requested = True
        self._cancel_event.set()

    # ------------------------------------------------------------------
    def as_completed(self) -> Iterator[SweepOutcome]:
        """Yield outcomes as points finish (completion order).

        The stream is shared: repeated calls continue where the previous
        consumer stopped, and :meth:`results` drains whatever is left.

        A failed outcome whose merged policy says ``on_error="raise"``
        aborts the stream: the outcome is yielded (and reported to the
        progress callback) first, then :class:`SweepPointError` is raised
        and the remaining points are cancelled.
        """
        if self._stream is None:
            self._stream = self._make_stream()
        try:
            while True:
                try:
                    outcome = next(self._stream)
                except StopIteration:
                    return
                yield outcome
                if (
                    outcome.error is not None
                    and not outcome.cancelled
                    and self._engine.policy_for(outcome.config).on_error == "raise"
                ):
                    self.cancel()
                    self._stream.close()
                    raise SweepPointError(outcome)
        except GeneratorExit:
            # The consumer dropped this iterator: close the underlying
            # stream too (its finally blocks cancel queued work and shut the
            # pool down) instead of leaving it to run until garbage
            # collection.
            self._cancel_requested = True
            self._cancel_event.set()
            self._stream.close()
            raise

    def results(self) -> List[SweepOutcome]:
        """Drain the stream and return outcomes in input (index) order.

        Points whose outcomes were never observed (the stream was closed
        mid-sweep) are reported as cancelled.
        """
        for _ in self.as_completed():
            pass
        outcomes = []
        for index in range(len(self._configs)):
            outcome = self._outcomes.get(index)
            if outcome is None:
                outcome = self._outcomes[index] = self._cancelled_outcome(index)
            outcomes.append(outcome)
        return outcomes

    # ------------------------------------------------------------------
    def _emit(self, outcome: SweepOutcome) -> SweepOutcome:
        self._outcomes[outcome.index] = outcome
        if self._on_outcome is not None:
            self._on_outcome(outcome)
        return outcome

    def _cancelled_outcome(self, index: int) -> SweepOutcome:
        return SweepOutcome(
            index=index, config=self._configs[index], cancelled=True
        )

    def _make_stream(self) -> Iterator[SweepOutcome]:
        if not self._configs:
            return iter(())
        engine = self._engine
        if engine.executor == "process":
            return self._stream_process()
        workers = engine._effective_workers(len(self._configs))
        if engine.executor == "serial" or workers == 1:
            return self._stream_serial()
        return self._stream_threads(workers)

    def _stream_serial(self) -> Iterator[SweepOutcome]:
        chunk = self._engine.chunk_for(self._configs)
        if chunk <= 1:
            for index in range(len(self._configs)):
                if self._cancel_event.is_set():
                    yield self._emit(self._cancelled_outcome(index))
                    continue
                yield self._emit(
                    self._engine._run_point(
                        index,
                        self._configs[index],
                        self._specifications,
                        self._cancel_event,
                    )
                )
            return
        # Chunked batch execution: run *chunk* consecutive points under one
        # GC pause (see repro.util.paused_gc), then emit their outcomes.
        # Emission -- and with it the progress callback -- happens at chunk
        # granularity, which is why streaming submit() defaults to chunk 1;
        # cancellation is still honoured between points inside a chunk.
        total = len(self._configs)
        start = 0
        while start < total:
            stop = min(start + chunk, total)
            buffered: List[SweepOutcome] = []
            with paused_gc():
                for index in range(start, stop):
                    if self._cancel_event.is_set():
                        buffered.append(self._cancelled_outcome(index))
                        continue
                    buffered.append(
                        self._engine._run_point(
                            index,
                            self._configs[index],
                            self._specifications,
                            self._cancel_event,
                        )
                    )
            for outcome in buffered:
                yield self._emit(outcome)
            start = stop

    def _guarded_run_one(self, index: int) -> SweepOutcome:
        """Thread-pool task: honour cancellation at the last moment."""
        if self._cancel_event.is_set():
            return self._cancelled_outcome(index)
        return self._engine._run_point(
            index, self._configs[index], self._specifications, self._cancel_event
        )

    def _stream_threads(self, workers: int) -> Iterator[SweepOutcome]:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            try:
                pending = {
                    pool.submit(self._guarded_run_one, index)
                    for index in range(len(self._configs))
                }
                interrupted = False
                while pending:
                    try:
                        done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    except KeyboardInterrupt:
                        # Ctrl-C flush: cancel queued points (the guard turns
                        # them into immediate cancelled returns), let in-flight
                        # points finish, yield everything so the consumer can
                        # persist it, then re-raise.  A second Ctrl-C during
                        # the drain aborts it.
                        self._cancel_requested = True
                        self._cancel_event.set()
                        done, pending = wait(pending)
                        interrupted = True
                    for future in done:
                        yield self._emit(future.result())
                    if interrupted:
                        raise KeyboardInterrupt
            finally:
                # Reached on normal exhaustion (harmless: nothing queued) and
                # on GeneratorExit when the consumer drops the iterator:
                # without this, the pool's shutdown would run every queued
                # point to completion in the background.  The guard turns
                # them into immediate cancelled returns instead.
                self._cancel_event.set()

    # ------------------------------------------------------------------
    # Process executor, chunked fast path: N plain points per worker task.
    # ------------------------------------------------------------------
    def _stream_process_chunked(self, chunk: int) -> Iterator[SweepOutcome]:
        engine = self._engine
        configs = self._configs
        cache = engine.pipeline.cache
        cache_dir = (
            str(cache.directory) if cache is not None and cache.directory else None
        )
        # Build every named workload once in the parent before the pool
        # starts: fork-started workers then inherit the parsed, frozen
        # specification (and its graph/validity caches) through the
        # workload memo instead of re-parsing it per point.
        for config in configs:
            if config.workload is not None:
                try:
                    config.resolve_specification()
                except Exception:  # noqa: BLE001 - workers surface it per point
                    pass
        ranges = [
            (start, min(start + chunk, len(configs)))
            for start in range(0, len(configs), chunk)
        ]
        workers = engine._effective_workers(len(ranges))
        pool = ProcessPoolExecutor(max_workers=workers)
        future_range: Dict[Any, Tuple[int, int]] = {}
        try:
            for start, stop in ranges:
                future = pool.submit(
                    _run_chunk_in_worker,
                    [config.to_dict() for config in configs[start:stop]],
                    cache_dir,
                    engine.stop_after,
                    [
                        _point_key(index, configs[index])
                        for index in range(start, stop)
                    ],
                )
                future_range[future] = (start, stop)
            while future_range:
                if self._cancel_event.is_set():
                    for future, (start, stop) in list(future_range.items()):
                        if future.cancel():
                            del future_range[future]
                            for index in range(start, stop):
                                yield self._emit(self._cancelled_outcome(index))
                    if not future_range:
                        break
                done, _ = wait(
                    set(future_range),
                    timeout=_WATCHDOG_TICK_S,
                    return_when=FIRST_COMPLETED,
                )
                for future in done:
                    start, stop = future_range.pop(future)
                    try:
                        results = future.result()
                    except CancelledError:
                        for index in range(start, stop):
                            yield self._emit(self._cancelled_outcome(index))
                    except Exception as error:  # noqa: BLE001 - worker died
                        # A dead worker (or a shipping failure) dooms the
                        # whole chunk; plain policies have no retries, so
                        # every point of the chunk is surfaced as failed.
                        broken = isinstance(error, BrokenExecutor)
                        code = "RUN003" if broken else "RUN001"
                        message = (
                            "worker process died (pool broken or worker killed)"
                            if broken
                            else resilience.format_exception(error)
                        )
                        for index in range(start, stop):
                            yield self._emit(
                                SweepOutcome(
                                    index=index,
                                    config=configs[index],
                                    error=message,
                                    error_code=code,
                                    error_chain=[message],
                                    attempts=[
                                        AttemptRecord(
                                            attempt=1, error_code=code, error=message
                                        )
                                    ],
                                )
                            )
                    else:
                        for offset, payload in enumerate(results):
                            index = start + offset
                            elapsed = payload.get("elapsed_s", 0.0)
                            if "error" in payload:
                                yield self._emit(
                                    SweepOutcome(
                                        index=index,
                                        config=configs[index],
                                        error=payload["error"],
                                        error_code="RUN001",
                                        error_chain=list(
                                            payload.get("error_chain") or []
                                        ),
                                        attempts=[
                                            AttemptRecord(
                                                attempt=1,
                                                error_code="RUN001",
                                                error=payload["error"],
                                                elapsed_s=elapsed,
                                            )
                                        ],
                                        elapsed_s=elapsed,
                                    )
                                )
                            else:
                                yield self._emit(
                                    SweepOutcome(
                                        index=index,
                                        config=configs[index],
                                        report=payload["report"],
                                        attempts=[
                                            AttemptRecord(
                                                attempt=1, elapsed_s=elapsed
                                            )
                                        ],
                                        elapsed_s=elapsed,
                                    )
                                )
        finally:
            self._cancel_event.set()
            for future in future_range:
                future.cancel()
            pool.shutdown(wait=False)

    # ------------------------------------------------------------------
    # Process executor: retry loop with deadlines and pool-rebuild recovery.
    # ------------------------------------------------------------------
    def _stream_process(self) -> Iterator[SweepOutcome]:
        engine = self._engine
        configs = self._configs
        chunk = engine.chunk_for(configs)
        if (
            chunk > 1
            and faults.active_plan() is None
            and all(
                engine.policy_for(config).max_attempts == 1
                and engine.policy_for(config).timeout_s is None
                and engine.policy_for(config).heartbeat_timeout_s is None
                for config in configs
            )
        ):
            # Plain policies (one attempt, no watchdog) take the chunked
            # fast path: N points per worker task instead of one.  Points
            # with retries or timeouts keep the per-point machinery below --
            # its deadlines and attempt accounting are per point by
            # contract, which a multi-point task cannot honour.
            yield from self._stream_process_chunked(chunk)
            return
        workers = engine._effective_workers(len(configs))
        cache = engine.pipeline.cache
        cache_dir = (
            str(cache.directory) if cache is not None and cache.directory else None
        )
        plan = faults.active_plan()
        plan_dict = plan.to_dict() if plan is not None else None

        states: Dict[int, _ProcessPointState] = {
            index: _ProcessPointState(
                index=index,
                config=config,
                policy=engine.policy_for(config),
                key=_point_key(index, config),
                started_total=time.perf_counter(),
            )
            for index, config in enumerate(configs)
        }
        pool: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(
            max_workers=workers
        )
        future_index: Dict[Any, int] = {}
        run_started: Dict[int, float] = {}  # index -> monotonic start-of-run
        backoff: List[int] = []  # indices waiting out their backoff delay

        def submit(index: int) -> None:
            state = states[index]
            state.attempt += 1
            ship = plan_dict if (plan_dict is not None and state.attempt == 1) else None
            future = pool.submit(
                _run_config_in_worker,
                state.config.to_dict(),
                cache_dir,
                engine.stop_after,
                ship,
                state.key,
            )
            future_index[future] = index

        def final_error(state: _ProcessPointState, code: str, message: str) -> SweepOutcome:
            return SweepOutcome(
                index=state.index,
                config=state.config,
                error=message,
                error_code=code,
                error_chain=[message],
                attempts=list(state.attempts),
                elapsed_s=time.perf_counter() - state.started_total,
            )

        def record_failure(
            state: _ProcessPointState, code: str, message: str
        ) -> Optional[SweepOutcome]:
            """Charge one failed attempt; requeue or finalize the point."""
            state.attempts.append(
                AttemptRecord(
                    attempt=state.attempt,
                    error_code=code,
                    error=message,
                    elapsed_s=time.monotonic() - run_started.get(state.index, time.monotonic()),
                )
            )
            if state.attempt < state.policy.max_attempts:
                state.ready_at = time.monotonic() + state.policy.delay_for(
                    state.key, state.attempt + 1
                )
                backoff.append(state.index)
                return None
            return final_error(state, code, message)

        def rebuild_pool() -> None:
            nonlocal pool
            if pool is not None:
                pool.shutdown(wait=False)
            pool = ProcessPoolExecutor(max_workers=workers)
            run_started.clear()

        try:
            for index in range(len(configs)):
                submit(index)
            while future_index or backoff:
                now = time.monotonic()
                if self._cancel_event.is_set():
                    # Workers cannot see the event; revoke whatever the pool
                    # has not started yet (running futures finish normally),
                    # and drop every backoff-parked retry.
                    for future, index in list(future_index.items()):
                        if future.cancel():
                            del future_index[future]
                            yield self._emit(self._cancelled_outcome(index))
                    for index in backoff:
                        yield self._emit(self._cancelled_outcome(index))
                    backoff = []
                    if not future_index:
                        break
                # Resubmit points whose backoff delay has elapsed.
                for index in list(backoff):
                    if states[index].ready_at <= now:
                        backoff.remove(index)
                        submit(index)
                if not future_index:
                    # Everything is parked on backoff; sleep until the next
                    # retry comes due (tick-bounded so cancel stays live).
                    due = min(states[i].ready_at for i in backoff)
                    time.sleep(max(0.0, min(due - now, _WATCHDOG_TICK_S)))
                    continue

                try:
                    done, _ = wait(
                        set(future_index),
                        timeout=_WATCHDOG_TICK_S,
                        return_when=FIRST_COMPLETED,
                    )
                except KeyboardInterrupt:
                    # Ctrl-C flush, process flavour: revoke what the pool has
                    # not started, wait out the in-flight futures, yield their
                    # results (no retries during a flush), then re-raise.
                    self._cancel_requested = True
                    self._cancel_event.set()
                    for future, index in list(future_index.items()):
                        if future.cancel():
                            del future_index[future]
                            yield self._emit(self._cancelled_outcome(index))
                    for index in backoff:
                        yield self._emit(self._cancelled_outcome(index))
                    backoff = []
                    done, _ = wait(set(future_index))
                    for future in done:
                        index = future_index.pop(future)
                        state = states[index]
                        try:
                            result = future.result()
                        except CancelledError:
                            yield self._emit(self._cancelled_outcome(index))
                        except Exception as error:  # noqa: BLE001
                            yield self._emit(
                                final_error(
                                    state,
                                    "RUN001",
                                    resilience.format_exception(error),
                                )
                            )
                        else:
                            state.attempts.append(
                                AttemptRecord(
                                    attempt=state.attempt,
                                    elapsed_s=result["elapsed_s"],
                                )
                            )
                            yield self._emit(
                                SweepOutcome(
                                    index=index,
                                    config=state.config,
                                    report=result["report"],
                                    attempts=list(state.attempts),
                                    elapsed_s=result["elapsed_s"],
                                )
                            )
                    raise KeyboardInterrupt from None
                now = time.monotonic()
                pool_broken = False
                for future in done:
                    index = future_index.pop(future)
                    state = states[index]
                    try:
                        result = future.result()
                    except CancelledError:
                        yield self._emit(self._cancelled_outcome(index))
                    except BrokenExecutor:
                        # A worker process died.  The pool cannot attribute
                        # the death to a task, so *every* unfinished point is
                        # charged one RUN003 attempt below.
                        pool_broken = True
                        outcome = record_failure(
                            state,
                            "RUN003",
                            "worker process died (pool broken or worker killed)",
                        )
                        if outcome is not None:
                            yield self._emit(outcome)
                    except Exception as error:  # noqa: BLE001 - per-point isolation
                        outcome = record_failure(
                            state, "RUN001", resilience.format_exception(error)
                        )
                        if outcome is not None:
                            outcome.error_chain = resilience.exception_chain(error)
                            yield self._emit(outcome)
                    else:
                        run_elapsed = result["elapsed_s"]
                        state.attempts.append(
                            AttemptRecord(attempt=state.attempt, elapsed_s=run_elapsed)
                        )
                        yield self._emit(
                            SweepOutcome(
                                index=index,
                                config=state.config,
                                report=result["report"],
                                attempts=list(state.attempts),
                                elapsed_s=run_elapsed,
                            )
                        )
                if pool_broken:
                    # Everything still in flight is doomed: charge RUN003,
                    # rebuild the pool, retry what has attempts left.
                    doomed = list(future_index.items())
                    future_index.clear()
                    for _future, index in doomed:
                        outcome = record_failure(
                            states[index],
                            "RUN003",
                            "worker process died (pool broken or worker killed)",
                        )
                        if outcome is not None:
                            yield self._emit(outcome)
                    rebuild_pool()
                    continue

                # Per-future wall-clock deadlines.  The clock starts when the
                # future is observed *running* (not when queued), so points
                # waiting behind a slow sweep never time out spuriously.
                victim: Optional[int] = None
                for future, index in future_index.items():
                    state = states[index]
                    if state.policy.timeout_s is None:
                        continue
                    started = run_started.get(index)
                    if started is None:
                        if future.running():
                            run_started[index] = now
                        continue
                    if now - started > state.policy.timeout_s:
                        victim = index
                        break
                if victim is not None:
                    # A worker is stuck past its budget.  Processes cannot be
                    # interrupted cooperatively, so kill the pool's workers:
                    # the victim is charged a RUN002 attempt; innocent
                    # bystanders are resubmitted with their attempt refunded.
                    victim_state = states[victim]
                    assert pool is not None
                    for process in list(getattr(pool, "_processes", {}).values()):
                        process.kill()
                    pool.shutdown(wait=False)
                    survivors = [i for i in future_index.values() if i != victim]
                    future_index.clear()
                    outcome = record_failure(
                        victim_state,
                        "RUN002",
                        f"point exceeded its wall-clock timeout "
                        f"({victim_state.policy.timeout_s:g}s)",
                    )
                    if outcome is not None:
                        yield self._emit(outcome)
                    rebuild_pool()
                    for index in survivors:
                        states[index].attempt -= 1  # not their fault
                        submit(index)
        finally:
            # Dropped mid-stream: revoke queued work so the pool's shutdown
            # does not run the rest of the sweep unobserved.
            self._cancel_event.set()
            for future in future_index:
                future.cancel()
            if pool is not None:
                pool.shutdown(wait=False)


class SweepEngine:
    """Fan configs across workers; stream or batch-collect the outcomes.

    Parameters
    ----------
    pipeline:
        The pipeline to run (serial/thread executors).  Defaults to a stock
        :class:`Pipeline`; give it a cache to dedupe repeated points.
    max_workers:
        Pool width; ``None`` picks ``min(8, cpu_count)`` for pooled
        executors.
    executor:
        ``"serial"``, ``"thread"`` or ``"process"`` (see module docs).
    stop_after:
        Stop every point's pipeline after this pass.  ``stop_after="time"``
        is the latency-sweep fast path: points skip allocation and binding,
        and outcome reports degrade to the timing-only rows of
        :func:`~repro.api.artifacts.build_timing_report` (identical keys and
        values for everything a timing sweep reads; no area columns).
    retry:
        Default :class:`~repro.api.resilience.RetryPolicy` for every point.
        A config's ``retries``/``timeout_s``/``on_error`` execution fields
        override the corresponding policy fields per point
        (:meth:`policy_for`).  ``None`` means the stock policy: one attempt,
        no timeout, failures recorded in the outcome.
    """

    def __init__(
        self,
        pipeline: Optional[Pipeline] = None,
        max_workers: Optional[int] = None,
        executor: str = "serial",
        stop_after: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        chunk: Optional[int] = None,
    ) -> None:
        if executor not in _EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}: expected one of {_EXECUTORS}"
            )
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if chunk is not None and chunk < 1:
            raise ValueError("chunk must be >= 1")
        self.pipeline = pipeline if pipeline is not None else Pipeline()
        self.max_workers = max_workers
        self.executor = executor
        self.stop_after = stop_after
        self.retry = retry
        self.chunk = chunk

    # ------------------------------------------------------------------
    def chunk_for(self, configs: Sequence[FlowConfig]) -> int:
        """The effective batch-chunk size of one sweep.

        The engine's explicit ``chunk`` wins; otherwise the first config
        carrying a ``sweep_chunk`` execution field decides; otherwise points
        run one per task (per-point streaming, the historical behaviour).
        """
        if self.chunk is not None:
            return self.chunk
        for config in configs:
            declared = getattr(config, "sweep_chunk", None)
            if declared is not None:
                return int(declared)
        return 1

    def _effective_workers(self, jobs: int) -> int:
        if self.max_workers is not None:
            return max(1, min(self.max_workers, jobs))
        return max(1, min(8, os.cpu_count() or 1, jobs))

    def policy_for(self, config: FlowConfig) -> RetryPolicy:
        """The merged retry policy of one point.

        Starts from the engine default and overlays the config's execution
        fields: ``retries`` extra attempts (``max_attempts = retries + 1``),
        ``timeout_s``, ``on_error``.
        """
        policy = self.retry if self.retry is not None else RetryPolicy()
        overrides: Dict[str, Any] = {}
        if config.retries is not None:
            overrides["max_attempts"] = config.retries + 1
        if config.timeout_s is not None:
            overrides["timeout_s"] = float(config.timeout_s)
        if config.on_error is not None:
            overrides["on_error"] = config.on_error
        return policy.replace(**overrides) if overrides else policy

    # ------------------------------------------------------------------
    def submit(
        self,
        configs: Sequence[FlowConfig],
        specifications: Optional[Sequence[Optional[Specification]]] = None,
        on_outcome: Optional[ProgressFn] = None,
    ) -> SweepRun:
        """Validate the point list and return a streaming :class:`SweepRun`.

        ``specifications`` optionally injects one in-memory specification per
        config (serial and thread executors only).  ``on_outcome`` is called
        once per completed outcome, in completion order, before the outcome
        is yielded -- the progress hook of workspaces and CLIs.  Nothing runs
        until the returned handle is iterated (or :meth:`SweepRun.results`
        drains it).
        """
        configs = list(configs)
        spec_list: Optional[List[Optional[Specification]]] = None
        if specifications is not None:
            spec_list = list(specifications)
            if len(spec_list) != len(configs):
                raise ValueError("specifications must align with configs")

        if self.executor == "process":
            if spec_list is not None and any(
                spec is not None for spec in spec_list
            ):
                raise ValueError(
                    "the process executor cannot ship in-memory specifications; "
                    "use workload/spec_text sources or the thread executor"
                )
            if self.pipeline.library is not None:
                raise ValueError(
                    "the process executor cannot ship a library override; "
                    "encode adder/multiplier styles in the configs instead"
                )
            if self.pipeline.passes != list(DEFAULT_PASSES):
                raise ValueError(
                    "the process executor cannot ship a customized pass list "
                    "(workers rebuild the stock pipeline); use the thread or "
                    "serial executor for pass experiments"
                )
            for config in configs:
                if not config.has_source:
                    raise ValueError(
                        "process-executor sweeps need self-contained configs "
                        "(workload or spec_text); "
                        f"config for latency {config.latency} has neither"
                    )
        return SweepRun(self, configs, spec_list, on_outcome=on_outcome)

    def run(
        self,
        configs: Sequence[FlowConfig],
        specifications: Optional[Sequence[Optional[Specification]]] = None,
    ) -> List[SweepOutcome]:
        """Run every config; outcomes are ordered like the input list.

        Back-compat batch shim over :meth:`submit`: drains the stream and
        restores input order, so results are deterministic whatever order
        the workers finished in.
        """
        return self.submit(configs, specifications).results()

    # ------------------------------------------------------------------
    # Serial/thread execution: retry loop around a watchdog-supervised
    # attempt.
    # ------------------------------------------------------------------
    def _attempt_once(
        self,
        index: int,
        config: FlowConfig,
        spec: Optional[Specification],
        key: str,
    ) -> Tuple[Optional[Dict[str, Any]], Optional[RunArtifact]]:
        """One try of one point: fault site, pipeline run, report."""
        faults.site("sweep.point", key=key)
        artifact = self.pipeline.run(
            config, specification=spec, stop_after=self.stop_after
        )
        report = artifact.report
        if report is None and self.stop_after is not None:
            report = build_timing_report(artifact)
        return report, artifact

    def _attempt_supervised(
        self,
        index: int,
        config: FlowConfig,
        spec: Optional[Specification],
        key: str,
        policy: RetryPolicy,
    ) -> Tuple[Optional[Dict[str, Any]], Optional[RunArtifact]]:
        """Run one attempt under the wall-clock/heartbeat watchdog.

        The attempt body runs on a fresh daemon thread; this thread joins it
        in short slices, checking the body's heartbeat and the deadline.  On
        expiry the body thread is *abandoned* (Python threads cannot be
        killed) -- it keeps running to completion in the background, its
        result discarded; the daemon flag keeps it from blocking process
        exit.  Raises :class:`_AttemptTimeout` / :class:`_AttemptHang`.
        """
        box: Dict[str, Any] = {}
        ready = threading.Event()

        def runner() -> None:
            resilience.heartbeat()
            ready.set()
            try:
                box["value"] = self._attempt_once(index, config, spec, key)
            except BaseException as error:  # noqa: BLE001 - crosses threads
                box["error"] = error
            finally:
                resilience.clear_heartbeat(threading.get_ident())

        thread = threading.Thread(
            target=runner, daemon=True, name=f"sweep-attempt-{index}"
        )
        thread.start()
        ready.wait()
        assert thread.ident is not None
        deadline = (
            time.monotonic() + policy.timeout_s if policy.timeout_s is not None else None
        )
        heartbeat_limit = policy.effective_heartbeat_timeout_s
        while thread.is_alive():
            thread.join(_WATCHDOG_TICK_S)
            if not thread.is_alive():
                break
            now = time.monotonic()
            beat = resilience.last_heartbeat(thread.ident)
            if (
                heartbeat_limit is not None
                and beat is not None
                and now - beat > heartbeat_limit
            ):
                raise _AttemptHang(
                    f"no heartbeat for {now - beat:.2f}s "
                    f"(limit {heartbeat_limit:g}s); point presumed hung"
                )
            if deadline is not None and now >= deadline:
                raise _AttemptTimeout(
                    f"point exceeded its wall-clock timeout ({policy.timeout_s:g}s)"
                )
        if "error" in box:
            raise box["error"]
        return box["value"]

    def _run_point(
        self,
        index: int,
        config: FlowConfig,
        specifications: Optional[Sequence[Optional[Specification]]],
        cancel_event: Optional[threading.Event] = None,
    ) -> SweepOutcome:
        """Retry loop of one point (serial and thread executors)."""
        spec = specifications[index] if specifications is not None else None
        policy = self.policy_for(config)
        key = _point_key(index, config)
        supervised = (
            policy.timeout_s is not None
            or policy.heartbeat_timeout_s is not None
        )
        attempts: List[AttemptRecord] = []
        started_total = time.perf_counter()
        last_code = "RUN001"
        last_message = "point never ran"
        last_chain: List[str] = []
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                delay = policy.delay_for(key, attempt)
                if delay > 0:
                    if cancel_event is not None:
                        cancel_event.wait(delay)
                    else:
                        time.sleep(delay)
                if cancel_event is not None and cancel_event.is_set():
                    # Cancelled while backing off: report what happened so
                    # far instead of silently pretending the point never ran.
                    break
            attempt_started = time.perf_counter()
            try:
                if supervised:
                    report, artifact = self._attempt_supervised(
                        index, config, spec, key, policy
                    )
                else:
                    report, artifact = self._attempt_once(index, config, spec, key)
            except _AttemptTimeout as error:
                last_code, last_message, last_chain = (
                    "RUN002",
                    str(error),
                    [str(error)],
                )
            except _AttemptHang as error:
                last_code, last_message, last_chain = (
                    "RUN004",
                    str(error),
                    [str(error)],
                )
            except Exception as error:  # noqa: BLE001 - per-point isolation
                last_code = "RUN001"
                last_message = resilience.format_exception(error)
                last_chain = resilience.exception_chain(error)
            else:
                attempts.append(
                    AttemptRecord(
                        attempt=attempt,
                        elapsed_s=time.perf_counter() - attempt_started,
                    )
                )
                return SweepOutcome(
                    index=index,
                    config=config,
                    report=report,
                    artifact=artifact,
                    attempts=attempts,
                    elapsed_s=time.perf_counter() - started_total,
                )
            attempts.append(
                AttemptRecord(
                    attempt=attempt,
                    error_code=last_code,
                    error=last_message,
                    elapsed_s=time.perf_counter() - attempt_started,
                )
            )
        return SweepOutcome(
            index=index,
            config=config,
            error=last_message,
            error_code=last_code,
            error_chain=last_chain,
            attempts=attempts,
            elapsed_s=time.perf_counter() - started_total,
        )

    # ------------------------------------------------------------------
    def reports(
        self,
        configs: Sequence[FlowConfig],
        specifications: Optional[Sequence[Optional[Specification]]] = None,
    ) -> List[Dict[str, Any]]:
        """Run and return just the metric reports, raising on any failure."""
        outcomes = self.run(configs, specifications)
        failed = [outcome for outcome in outcomes if not outcome.ok]
        if failed:
            details = "; ".join(
                f"#{outcome.index} ({outcome.config.workload or 'inline spec'}, "
                f"latency {outcome.config.latency}): "
                f"{'cancelled' if outcome.cancelled else outcome.error}"
                for outcome in failed
            )
            raise RuntimeError(f"{len(failed)} sweep point(s) failed: {details}")
        reportless = [outcome for outcome in outcomes if outcome.report is None]
        if reportless:
            # Succeeded but produced no report: the pipeline is missing its
            # report pass.  Dropping these would silently mispair positional
            # consumers, so fail loudly instead.
            raise RuntimeError(
                f"{len(reportless)} sweep point(s) completed without a report "
                "(does the engine's pipeline still include the report pass?)"
            )
        return [outcome.report for outcome in outcomes]
