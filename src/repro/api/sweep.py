"""Parallel sweep engine: fan a list of configs across worker pools.

:class:`SweepEngine` takes a list of :class:`~repro.api.config.FlowConfig`
objects and runs each through a :class:`~repro.api.pipeline.Pipeline`,
optionally in parallel.  Three executors are supported:

* ``"serial"`` -- plain loop, no pool (the default when ``max_workers`` is
  unset or 1);
* ``"thread"`` -- a :class:`concurrent.futures.ThreadPoolExecutor` sharing
  one pipeline and cache; full artifacts are returned;
* ``"process"`` -- a :class:`concurrent.futures.ProcessPoolExecutor` for
  CPU-bound sweeps.  Configs must be self-contained (a ``workload`` or
  ``spec_text`` source, no injected specification or library override)
  because each worker rebuilds its pipeline from the serialized config;
  workers return the JSON metric report, not full artifacts.

Results always come back in the order the configs were given, whatever order
the workers finished in, so sweeps are deterministic.  Per-config failures
are captured in the outcome (``error``) instead of aborting the whole sweep.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..ir.spec import Specification
from .artifacts import RunArtifact, build_timing_report
from .config import FlowConfig
from .passes import DEFAULT_PASSES
from .pipeline import Pipeline

_EXECUTORS = ("serial", "thread", "process")


@dataclass
class SweepOutcome:
    """The result of one config within a sweep."""

    index: int
    config: FlowConfig
    report: Optional[Dict[str, Any]] = None
    artifact: Optional[RunArtifact] = None
    error: Optional[str] = None
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


def _run_config_in_worker(
    config_dict: Dict[str, Any],
    cache_dir: Optional[str] = None,
    stop_after: Optional[str] = None,
) -> Dict[str, Any]:
    """Process-pool entry point: rebuild the config, run, return the report.

    When the parent pipeline has a disk-backed cache, its directory is
    forwarded so workers share the on-disk tier (its writes are atomic).
    The elapsed time is measured here, in the worker, so it reflects the
    point's actual run time rather than how long the parent waited on the
    future.
    """
    from .cache import ResultCache

    config = FlowConfig.from_dict(config_dict)
    cache = ResultCache(directory=cache_dir) if cache_dir is not None else None
    started = time.perf_counter()
    artifact = Pipeline(cache=cache).run(config, stop_after=stop_after)
    report = artifact.report
    if report is None and stop_after is not None:
        report = build_timing_report(artifact)
    assert report is not None
    return {"report": report, "elapsed_s": time.perf_counter() - started}


class SweepEngine:
    """Fan configs across workers and collect ordered outcomes.

    Parameters
    ----------
    pipeline:
        The pipeline to run (serial/thread executors).  Defaults to a stock
        :class:`Pipeline`; give it a cache to dedupe repeated points.
    max_workers:
        Pool width; ``None`` picks ``min(8, cpu_count)`` for pooled
        executors.
    executor:
        ``"serial"``, ``"thread"`` or ``"process"`` (see module docs).
    stop_after:
        Stop every point's pipeline after this pass.  ``stop_after="time"``
        is the latency-sweep fast path: points skip allocation and binding,
        and outcome reports degrade to the timing-only rows of
        :func:`~repro.api.artifacts.build_timing_report` (identical keys and
        values for everything a timing sweep reads; no area columns).
    """

    def __init__(
        self,
        pipeline: Optional[Pipeline] = None,
        max_workers: Optional[int] = None,
        executor: str = "serial",
        stop_after: Optional[str] = None,
    ) -> None:
        if executor not in _EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}: expected one of {_EXECUTORS}"
            )
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.pipeline = pipeline if pipeline is not None else Pipeline()
        self.max_workers = max_workers
        self.executor = executor
        self.stop_after = stop_after

    # ------------------------------------------------------------------
    def _effective_workers(self, jobs: int) -> int:
        if self.max_workers is not None:
            return max(1, min(self.max_workers, jobs))
        return max(1, min(8, os.cpu_count() or 1, jobs))

    def run(
        self,
        configs: Sequence[FlowConfig],
        specifications: Optional[Sequence[Optional[Specification]]] = None,
    ) -> List[SweepOutcome]:
        """Run every config; outcomes are ordered like the input list.

        ``specifications`` optionally injects one in-memory specification per
        config (serial and thread executors only).
        """
        configs = list(configs)
        if specifications is not None:
            specifications = list(specifications)
            if len(specifications) != len(configs):
                raise ValueError("specifications must align with configs")
        if not configs:
            return []

        if self.executor == "process":
            if specifications is not None and any(
                spec is not None for spec in specifications
            ):
                raise ValueError(
                    "the process executor cannot ship in-memory specifications; "
                    "use workload/spec_text sources or the thread executor"
                )
            if self.pipeline.library is not None:
                raise ValueError(
                    "the process executor cannot ship a library override; "
                    "encode adder/multiplier styles in the configs instead"
                )
            if self.pipeline.passes != list(DEFAULT_PASSES):
                raise ValueError(
                    "the process executor cannot ship a customized pass list "
                    "(workers rebuild the stock pipeline); use the thread or "
                    "serial executor for pass experiments"
                )
            for config in configs:
                if not config.has_source:
                    raise ValueError(
                        "process-executor sweeps need self-contained configs "
                        "(workload or spec_text); "
                        f"config for latency {config.latency} has neither"
                    )
            return self._run_process(configs)

        workers = self._effective_workers(len(configs))
        if self.executor == "serial" or workers == 1:
            return [
                self._run_one(index, config, specifications)
                for index, config in enumerate(configs)
            ]
        return self._run_threads(configs, specifications, workers)

    # ------------------------------------------------------------------
    def _run_one(
        self,
        index: int,
        config: FlowConfig,
        specifications: Optional[Sequence[Optional[Specification]]],
    ) -> SweepOutcome:
        spec = specifications[index] if specifications is not None else None
        started = time.perf_counter()
        try:
            artifact = self.pipeline.run(
                config, specification=spec, stop_after=self.stop_after
            )
            report = artifact.report
            if report is None and self.stop_after is not None:
                report = build_timing_report(artifact)
            return SweepOutcome(
                index=index,
                config=config,
                report=report,
                artifact=artifact,
                elapsed_s=time.perf_counter() - started,
            )
        except Exception as error:  # noqa: BLE001 - per-point isolation
            return SweepOutcome(
                index=index,
                config=config,
                error=f"{type(error).__name__}: {error}",
                elapsed_s=time.perf_counter() - started,
            )

    def _run_threads(
        self,
        configs: Sequence[FlowConfig],
        specifications: Optional[Sequence[Optional[Specification]]],
        workers: int,
    ) -> List[SweepOutcome]:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(self._run_one, index, config, specifications)
                for index, config in enumerate(configs)
            ]
            return [future.result() for future in futures]

    def _run_process(self, configs: Sequence[FlowConfig]) -> List[SweepOutcome]:
        workers = self._effective_workers(len(configs))
        outcomes: List[SweepOutcome] = []
        cache = self.pipeline.cache
        cache_dir = (
            str(cache.directory) if cache is not None and cache.directory else None
        )
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _run_config_in_worker, config.to_dict(), cache_dir, self.stop_after
                )
                for config in configs
            ]
            for index, (config, future) in enumerate(zip(configs, futures)):
                try:
                    result = future.result()
                    outcomes.append(
                        SweepOutcome(
                            index=index,
                            config=config,
                            report=result["report"],
                            elapsed_s=result["elapsed_s"],
                        )
                    )
                except Exception as error:  # noqa: BLE001 - per-point isolation
                    outcomes.append(
                        SweepOutcome(
                            index=index,
                            config=config,
                            error=f"{type(error).__name__}: {error}",
                        )
                    )
        return outcomes

    # ------------------------------------------------------------------
    def reports(
        self,
        configs: Sequence[FlowConfig],
        specifications: Optional[Sequence[Optional[Specification]]] = None,
    ) -> List[Dict[str, Any]]:
        """Run and return just the metric reports, raising on any failure."""
        outcomes = self.run(configs, specifications)
        failed = [outcome for outcome in outcomes if not outcome.ok]
        if failed:
            details = "; ".join(
                f"#{outcome.index} ({outcome.config.workload or 'inline spec'}, "
                f"latency {outcome.config.latency}): {outcome.error}"
                for outcome in failed
            )
            raise RuntimeError(f"{len(failed)} sweep point(s) failed: {details}")
        reportless = [outcome for outcome in outcomes if outcome.report is None]
        if reportless:
            # Succeeded but produced no report: the pipeline is missing its
            # report pass.  Dropping these would silently mispair positional
            # consumers, so fail loudly instead.
            raise RuntimeError(
                f"{len(reportless)} sweep point(s) completed without a report "
                "(does the engine's pipeline still include the report pass?)"
            )
        return [outcome.report for outcome in outcomes]
