"""Streaming parallel sweep engine: fan configs across worker pools.

:class:`SweepEngine` takes :class:`~repro.api.config.FlowConfig` objects and
runs each through a :class:`~repro.api.pipeline.Pipeline`, optionally in
parallel.  Three executors are supported:

* ``"serial"`` -- plain loop, no pool (the default when ``max_workers`` is
  unset or 1);
* ``"thread"`` -- a :class:`concurrent.futures.ThreadPoolExecutor` sharing
  one pipeline and cache; full artifacts are returned;
* ``"process"`` -- a :class:`concurrent.futures.ProcessPoolExecutor` for
  CPU-bound sweeps.  Configs must be self-contained (a ``workload`` or
  ``spec_text`` source, no injected specification or library override)
  because each worker rebuilds its pipeline from the serialized config;
  workers return the JSON metric report, not full artifacts.

The engine is **streaming**: :meth:`SweepEngine.submit` returns a
:class:`SweepRun` handle whose :meth:`~SweepRun.as_completed` iterator yields
:class:`SweepOutcome` objects as points finish (completion order), with an
optional per-outcome progress callback and cooperative cancellation
(:meth:`SweepRun.cancel` -- in-flight points finish, unstarted points come
back with ``cancelled=True``).  The classic batch :meth:`SweepEngine.run` is
kept as a shim over ``submit``: it drains the stream and returns outcomes in
the order the configs were given, whatever order the workers finished in, so
batch sweeps stay deterministic.  Per-config failures are captured in the
outcome (``error``) instead of aborting the whole sweep.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
)

from ..ir.spec import Specification
from .artifacts import RunArtifact, build_timing_report
from .config import FlowConfig
from .passes import DEFAULT_PASSES
from .pipeline import Pipeline

_EXECUTORS = ("serial", "thread", "process")


@dataclass
class SweepOutcome:
    """The result of one config within a sweep.

    ``cancelled`` marks points that never ran because the sweep was
    cooperatively cancelled; they carry neither a report nor an error and
    count as not-``ok``.
    """

    index: int
    config: FlowConfig
    report: Optional[Dict[str, Any]] = None
    artifact: Optional[RunArtifact] = None
    error: Optional[str] = None
    elapsed_s: float = 0.0
    cancelled: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None and not self.cancelled


#: Progress callback invoked once per completed outcome, in completion order.
ProgressFn = Callable[[SweepOutcome], None]


def _run_config_in_worker(
    config_dict: Dict[str, Any],
    cache_dir: Optional[str] = None,
    stop_after: Optional[str] = None,
) -> Dict[str, Any]:
    """Process-pool entry point: rebuild the config, run, return the report.

    When the parent pipeline has a disk-backed cache, its directory is
    forwarded so workers share the on-disk tier (its writes are atomic).
    The elapsed time is measured here, in the worker, so it reflects the
    point's actual run time rather than how long the parent waited on the
    future.
    """
    from .cache import ResultCache

    config = FlowConfig.from_dict(config_dict)
    cache = ResultCache(directory=cache_dir) if cache_dir is not None else None
    started = time.perf_counter()
    artifact = Pipeline(cache=cache).run(config, stop_after=stop_after)
    report = artifact.report
    if report is None and stop_after is not None:
        report = build_timing_report(artifact)
    assert report is not None
    return {"report": report, "elapsed_s": time.perf_counter() - started}


class SweepRun:
    """Handle over one in-flight sweep: stream, collect or cancel it.

    Created by :meth:`SweepEngine.submit`; not instantiated directly.  The
    underlying worker pool (if any) is opened lazily by the first
    :meth:`as_completed` pull and closed when the stream is exhausted or the
    iterator is dropped -- dropping it mid-stream implicitly cancels the
    queued points (in-flight ones finish), so abandoning a sweep never runs
    the rest of it in the background.
    """

    def __init__(
        self,
        engine: "SweepEngine",
        configs: List[FlowConfig],
        specifications: Optional[List[Optional[Specification]]],
        on_outcome: Optional[ProgressFn] = None,
    ) -> None:
        self._engine = engine
        self._configs = configs
        self._specifications = specifications
        self._on_outcome = on_outcome
        #: Guard consulted by worker tasks; also set by the stream's cleanup
        #: paths (normal exhaustion included, where it is a no-op).
        self._cancel_event = threading.Event()
        #: Whether cancellation was actually *requested* -- by cancel() or
        #: by dropping the stream mid-sweep; never set by a normal drain.
        self._cancel_requested = False
        self._outcomes: Dict[int, SweepOutcome] = {}
        self._stream: Optional[Iterator[SweepOutcome]] = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._configs)

    @property
    def cancelled(self) -> bool:
        """Whether cancellation was requested (explicitly, or by dropping
        the stream mid-sweep).  ``False`` after a normal complete drain."""
        return self._cancel_requested

    def cancel(self) -> None:
        """Request cooperative cancellation.

        Points already running finish normally (and are yielded as usual);
        points not yet started are yielded as ``cancelled`` outcomes without
        running.  Safe to call from a progress callback or another thread.
        """
        self._cancel_requested = True
        self._cancel_event.set()

    # ------------------------------------------------------------------
    def as_completed(self) -> Iterator[SweepOutcome]:
        """Yield outcomes as points finish (completion order).

        The stream is shared: repeated calls continue where the previous
        consumer stopped, and :meth:`results` drains whatever is left.
        """
        if self._stream is None:
            self._stream = self._make_stream()
        try:
            while True:
                try:
                    outcome = next(self._stream)
                except StopIteration:
                    return
                yield outcome
        except GeneratorExit:
            # The consumer dropped this iterator: close the underlying
            # stream too (its finally blocks cancel queued work and shut the
            # pool down) instead of leaving it to run until garbage
            # collection.
            self._cancel_requested = True
            self._cancel_event.set()
            self._stream.close()
            raise

    def results(self) -> List[SweepOutcome]:
        """Drain the stream and return outcomes in input (index) order.

        Points whose outcomes were never observed (the stream was closed
        mid-sweep) are reported as cancelled.
        """
        for _ in self.as_completed():
            pass
        outcomes = []
        for index in range(len(self._configs)):
            outcome = self._outcomes.get(index)
            if outcome is None:
                outcome = self._outcomes[index] = self._cancelled_outcome(index)
            outcomes.append(outcome)
        return outcomes

    # ------------------------------------------------------------------
    def _emit(self, outcome: SweepOutcome) -> SweepOutcome:
        self._outcomes[outcome.index] = outcome
        if self._on_outcome is not None:
            self._on_outcome(outcome)
        return outcome

    def _cancelled_outcome(self, index: int) -> SweepOutcome:
        return SweepOutcome(
            index=index, config=self._configs[index], cancelled=True
        )

    def _make_stream(self) -> Iterator[SweepOutcome]:
        if not self._configs:
            return iter(())
        engine = self._engine
        if engine.executor == "process":
            return self._stream_process()
        workers = engine._effective_workers(len(self._configs))
        if engine.executor == "serial" or workers == 1:
            return self._stream_serial()
        return self._stream_threads(workers)

    def _stream_serial(self) -> Iterator[SweepOutcome]:
        for index in range(len(self._configs)):
            if self._cancel_event.is_set():
                yield self._emit(self._cancelled_outcome(index))
                continue
            yield self._emit(
                self._engine._run_one(
                    index, self._configs[index], self._specifications
                )
            )

    def _guarded_run_one(self, index: int) -> SweepOutcome:
        """Thread-pool task: honour cancellation at the last moment."""
        if self._cancel_event.is_set():
            return self._cancelled_outcome(index)
        return self._engine._run_one(
            index, self._configs[index], self._specifications
        )

    def _stream_threads(self, workers: int) -> Iterator[SweepOutcome]:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            try:
                pending = {
                    pool.submit(self._guarded_run_one, index)
                    for index in range(len(self._configs))
                }
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        yield self._emit(future.result())
            finally:
                # Reached on normal exhaustion (harmless: nothing queued) and
                # on GeneratorExit when the consumer drops the iterator:
                # without this, the pool's shutdown would run every queued
                # point to completion in the background.  The guard turns
                # them into immediate cancelled returns instead.
                self._cancel_event.set()

    def _stream_process(self) -> Iterator[SweepOutcome]:
        engine = self._engine
        workers = engine._effective_workers(len(self._configs))
        cache = engine.pipeline.cache
        cache_dir = (
            str(cache.directory) if cache is not None and cache.directory else None
        )
        with ProcessPoolExecutor(max_workers=workers) as pool:
            future_index = {
                pool.submit(
                    _run_config_in_worker,
                    config.to_dict(),
                    cache_dir,
                    engine.stop_after,
                ): index
                for index, config in enumerate(self._configs)
            }
            pending = set(future_index)
            try:
                while pending:
                    if self._cancel_event.is_set():
                        # Workers cannot see the event; revoke whatever the
                        # pool has not started yet.  Futures already running
                        # finish.
                        for future in pending:
                            future.cancel()
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        index = future_index[future]
                        if future.cancelled():
                            yield self._emit(self._cancelled_outcome(index))
                            continue
                        try:
                            result = future.result()
                            outcome = SweepOutcome(
                                index=index,
                                config=self._configs[index],
                                report=result["report"],
                                elapsed_s=result["elapsed_s"],
                            )
                        except Exception as error:  # noqa: BLE001 - per-point isolation
                            outcome = SweepOutcome(
                                index=index,
                                config=self._configs[index],
                                error=f"{type(error).__name__}: {error}",
                            )
                        yield self._emit(outcome)
            finally:
                # Dropped mid-stream: revoke queued work so the pool's
                # shutdown does not run the rest of the sweep unobserved.
                self._cancel_event.set()
                for future in pending:
                    future.cancel()


class SweepEngine:
    """Fan configs across workers; stream or batch-collect the outcomes.

    Parameters
    ----------
    pipeline:
        The pipeline to run (serial/thread executors).  Defaults to a stock
        :class:`Pipeline`; give it a cache to dedupe repeated points.
    max_workers:
        Pool width; ``None`` picks ``min(8, cpu_count)`` for pooled
        executors.
    executor:
        ``"serial"``, ``"thread"`` or ``"process"`` (see module docs).
    stop_after:
        Stop every point's pipeline after this pass.  ``stop_after="time"``
        is the latency-sweep fast path: points skip allocation and binding,
        and outcome reports degrade to the timing-only rows of
        :func:`~repro.api.artifacts.build_timing_report` (identical keys and
        values for everything a timing sweep reads; no area columns).
    """

    def __init__(
        self,
        pipeline: Optional[Pipeline] = None,
        max_workers: Optional[int] = None,
        executor: str = "serial",
        stop_after: Optional[str] = None,
    ) -> None:
        if executor not in _EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}: expected one of {_EXECUTORS}"
            )
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.pipeline = pipeline if pipeline is not None else Pipeline()
        self.max_workers = max_workers
        self.executor = executor
        self.stop_after = stop_after

    # ------------------------------------------------------------------
    def _effective_workers(self, jobs: int) -> int:
        if self.max_workers is not None:
            return max(1, min(self.max_workers, jobs))
        return max(1, min(8, os.cpu_count() or 1, jobs))

    # ------------------------------------------------------------------
    def submit(
        self,
        configs: Sequence[FlowConfig],
        specifications: Optional[Sequence[Optional[Specification]]] = None,
        on_outcome: Optional[ProgressFn] = None,
    ) -> SweepRun:
        """Validate the point list and return a streaming :class:`SweepRun`.

        ``specifications`` optionally injects one in-memory specification per
        config (serial and thread executors only).  ``on_outcome`` is called
        once per completed outcome, in completion order, before the outcome
        is yielded -- the progress hook of workspaces and CLIs.  Nothing runs
        until the returned handle is iterated (or :meth:`SweepRun.results`
        drains it).
        """
        configs = list(configs)
        spec_list: Optional[List[Optional[Specification]]] = None
        if specifications is not None:
            spec_list = list(specifications)
            if len(spec_list) != len(configs):
                raise ValueError("specifications must align with configs")

        if self.executor == "process":
            if spec_list is not None and any(
                spec is not None for spec in spec_list
            ):
                raise ValueError(
                    "the process executor cannot ship in-memory specifications; "
                    "use workload/spec_text sources or the thread executor"
                )
            if self.pipeline.library is not None:
                raise ValueError(
                    "the process executor cannot ship a library override; "
                    "encode adder/multiplier styles in the configs instead"
                )
            if self.pipeline.passes != list(DEFAULT_PASSES):
                raise ValueError(
                    "the process executor cannot ship a customized pass list "
                    "(workers rebuild the stock pipeline); use the thread or "
                    "serial executor for pass experiments"
                )
            for config in configs:
                if not config.has_source:
                    raise ValueError(
                        "process-executor sweeps need self-contained configs "
                        "(workload or spec_text); "
                        f"config for latency {config.latency} has neither"
                    )
        return SweepRun(self, configs, spec_list, on_outcome=on_outcome)

    def run(
        self,
        configs: Sequence[FlowConfig],
        specifications: Optional[Sequence[Optional[Specification]]] = None,
    ) -> List[SweepOutcome]:
        """Run every config; outcomes are ordered like the input list.

        Back-compat batch shim over :meth:`submit`: drains the stream and
        restores input order, so results are deterministic whatever order
        the workers finished in.
        """
        return self.submit(configs, specifications).results()

    # ------------------------------------------------------------------
    def _run_one(
        self,
        index: int,
        config: FlowConfig,
        specifications: Optional[Sequence[Optional[Specification]]],
    ) -> SweepOutcome:
        spec = specifications[index] if specifications is not None else None
        started = time.perf_counter()
        try:
            artifact = self.pipeline.run(
                config, specification=spec, stop_after=self.stop_after
            )
            report = artifact.report
            if report is None and self.stop_after is not None:
                report = build_timing_report(artifact)
            return SweepOutcome(
                index=index,
                config=config,
                report=report,
                artifact=artifact,
                elapsed_s=time.perf_counter() - started,
            )
        except Exception as error:  # noqa: BLE001 - per-point isolation
            return SweepOutcome(
                index=index,
                config=config,
                error=f"{type(error).__name__}: {error}",
                elapsed_s=time.perf_counter() - started,
            )

    # ------------------------------------------------------------------
    def reports(
        self,
        configs: Sequence[FlowConfig],
        specifications: Optional[Sequence[Optional[Specification]]] = None,
    ) -> List[Dict[str, Any]]:
        """Run and return just the metric reports, raising on any failure."""
        outcomes = self.run(configs, specifications)
        failed = [outcome for outcome in outcomes if not outcome.ok]
        if failed:
            details = "; ".join(
                f"#{outcome.index} ({outcome.config.workload or 'inline spec'}, "
                f"latency {outcome.config.latency}): "
                f"{'cancelled' if outcome.cancelled else outcome.error}"
                for outcome in failed
            )
            raise RuntimeError(f"{len(failed)} sweep point(s) failed: {details}")
        reportless = [outcome for outcome in outcomes if outcome.report is None]
        if reportless:
            # Succeeded but produced no report: the pipeline is missing its
            # report pass.  Dropping these would silently mispair positional
            # consumers, so fail loudly instead.
            raise RuntimeError(
                f"{len(reportless)} sweep point(s) completed without a report "
                "(does the engine's pipeline still include the report pass?)"
            )
        return [outcome.report for outcome in outcomes]
