"""Declarative flow configuration.

:class:`FlowConfig` is the serializable description of one synthesis run: the
specification source, the latency constraint, the flow mode, the technology
library knobs and the transformation/scheduler options.  It is frozen and
hashable, round-trips losslessly through ``dict``/JSON, and its
:meth:`~FlowConfig.content_hash` keys the result cache and the sweep engine.

Specification sources
---------------------

A config names its specification in one of two serializable ways:

* ``workload`` -- a named workload.  Either one of the registered benchmark
  names (see :func:`available_workloads`) or a parametric family:
  ``"chain:<n>:<w>"`` (a chain of *n* chained *w*-bit additions, the paper's
  running example) and ``"tree:<n>:<w>"`` (a balanced addition tree).
* ``spec_text`` -- a behavioural specification in the textual language of
  :mod:`repro.ir.parser`.

Callers holding an in-memory :class:`~repro.ir.spec.Specification` can skip
both and pass it directly to :meth:`repro.api.Pipeline.run`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Union

from ..hls.flow import FlowMode
from ..hls.scheduling.policy import PolicyError, SchedulerPolicy
from ..ir.spec import Specification
from ..techlib.adders import AdderStyle
from ..techlib.library import TechnologyLibrary, default_library
from ..techlib.multipliers import MultiplierStyle
from ..util import coerce_enum


class ConfigError(ValueError):
    """Raised for invalid or unserializable flow configurations."""


def _coerce_enum(enum_cls, value, what: str):
    """Coerce into *enum_cls*, reporting failures as :class:`ConfigError`."""
    try:
        return coerce_enum(enum_cls, value, what)
    except ValueError as error:
        raise ConfigError(str(error)) from None


def available_workloads() -> Dict[str, Callable[[], Specification]]:
    """All registered workload factories, by name."""
    from ..workloads import ALL_WORKLOADS

    return dict(ALL_WORKLOADS)


#: Memoized workload specifications, by name.  Workload factories are
#: deterministic and the flow never mutates an input specification, so every
#: sweep point naming the same workload shares one instance -- which is what
#: lets the specification-level graph and validation caches amortize across a
#: whole latency sweep instead of being rebuilt per point.  Cached instances
#: are frozen, so a caller trying to mutate one gets a loud error instead of
#: silently poisoning the cache.
_RESOLVED_WORKLOADS: Dict[str, Specification] = {}


def clear_workload_cache() -> None:
    """Drop the memoized workload specifications (test isolation hook)."""
    _RESOLVED_WORKLOADS.clear()


def resolve_workload(name: str) -> Specification:
    """Build the specification a workload name stands for.

    Accepts the registered benchmark names plus the parametric families
    ``chain:<n>:<w>`` and ``tree:<n>:<w>``.  Resolved specifications are
    memoized by name, shared between callers and **frozen** -- mutating one
    raises; build a fresh instance through
    :data:`~repro.workloads.ALL_WORKLOADS` to create a variant.
    """
    from ..workloads import ALL_WORKLOADS, addition_chain, addition_tree

    cached = _RESOLVED_WORKLOADS.get(name)
    if cached is not None:
        return cached
    if name in ALL_WORKLOADS:
        specification = ALL_WORKLOADS[name]()
    else:
        parts = name.split(":")
        if len(parts) == 3 and parts[0] in ("chain", "tree"):
            family, count, width = parts
            try:
                count_i, width_i = int(count), int(width)
            except ValueError:
                raise ConfigError(
                    f"malformed parametric workload {name!r}: "
                    f"expected {family}:<count>:<width> with integer parameters"
                ) from None
            factory = addition_chain if family == "chain" else addition_tree
            specification = factory(count_i, width_i)
        else:
            known = ", ".join(sorted(ALL_WORKLOADS))
            raise ConfigError(
                f"unknown workload {name!r}: expected one of {known}, "
                "or a parametric chain:<n>:<w> / tree:<n>:<w>"
            )
    _RESOLVED_WORKLOADS[name] = specification.freeze()
    return specification


@dataclass(frozen=True)
class FlowConfig:
    """A complete, serializable description of one synthesis run.

    Parameters
    ----------
    latency:
        Circuit latency in cycles (the paper's lambda).  Must be >= 1.
    mode:
        Flow to run: ``conventional``, ``fragmented`` or ``blc`` (a
        :class:`~repro.hls.flow.FlowMode` or its string name).
    workload / spec_text:
        Serializable specification source (at most one; see module docs).
    adder_style / multiplier_style:
        Functional-unit architectures of the technology library.
    chained_bits_per_cycle:
        Explicit per-cycle chained-bit budget.  ``None`` derives it (from the
        transformation for the fragmented flow).  Must be positive when set.
        Migrating into ``scheduler``: this flat field is kept as a mirror of
        ``scheduler.chained_bits_per_cycle`` for compatibility.
    balance_fragments:
        Whether the fragment scheduler balances addition bits across cycles.
        Like ``chained_bits_per_cycle``, a compatibility mirror of
        ``scheduler.balance_fragments``.
    scheduler:
        The nested :class:`~repro.hls.scheduling.policy.SchedulerPolicy`
        describing how the schedule is constructed: the paper's deterministic
        heuristics (``policy="paper"``, the default) or beam/multi-start
        search (``policy="search"``) with its weights and seeds.  Accepts a
        policy object or its dictionary form; ``None`` builds one from the
        flat mirror fields.  After construction the mirrors and the policy
        always agree -- conflicting explicit values raise.  A paper policy
        with default search knobs serializes in the legacy flat encoding
        inside :meth:`semantic_dict`, so pre-search configs keep their
        content hashes; search policies are new content (new hashes).  The
        ``blc`` flow has no scheduling freedom, so it rejects
        ``policy="search"``.
    transform:
        Whether to run the presynthesis transformation before scheduling.
        ``None`` derives it from the mode: the fragmented flow transforms,
        the others synthesize the specification as given.  Set it to
        ``False`` to fragment-schedule an already-transformed specification.
    validate_input / validate_output:
        Structurally validate the input specification (the validate pass)
        and the transformed specification (inside the transform pass).
    check_equivalence / equivalence_vectors / equivalence_seed:
        Co-simulate the transformed specification against the original:
        whether to check, how many random vectors to draw, and the stimulus
        seed.  All three are part of the content hash, so runs differing
        only in their verification regime never share cache entries.
    emit / emit_check:
        Run the RTL emission pass after allocation: lower the bound datapath
        into a structural sequential design (:mod:`repro.rtl.emit`) and
        stamp its structural statistics (gate count, FSM states, mux depth)
        into the report.  ``emit_check`` additionally co-simulates the
        emitted design cycle-accurately against the batch-interpreter
        oracle on the equivalence stimulus set and fails the run on any
        mismatch.  Both are content-hashed, so emitted and non-emitted runs
        never share cache entries.
    check / check_level:
        Run the static verification pass (:mod:`repro.check`) after emission:
        independent checkers re-derive the invariants of every IR level the
        run produced and any diagnostic of warning severity or worse fails
        the run.  ``check_level`` restricts checking to the levels up to and
        including the named one (``spec``, ``schedule``, ``allocation`` or
        ``netlist``); ``netlist`` requires ``emit`` because only an emitted
        run carries a gate-level design.  Both fields are content-hashed, so
        checked and unchecked runs never share cache entries.
    label:
        Free-form tag carried into reports (sweep annotations).
    retries / timeout_s / on_error:
        Per-point execution policy consumed by the sweep engine: extra
        attempts after a failure, a wall-clock budget per attempt, and the
        disposition of a point whose attempts are exhausted (``record`` /
        ``skip`` / ``raise``).  These are **execution** fields, not semantic
        ones: they say how hard to try, never what to compute, so they are
        excluded from :meth:`content_hash` (see :meth:`semantic_dict`) --
        a retried run shares cache entries and workspace rows with a plain
        one.  ``None`` defers to the engine/study default.
    sweep_chunk:
        Batch-chunk size consumed by the sweep engine: how many points run
        per batched task (serial GC-paused chunks, or one process-pool task
        per chunk).  An execution field like the retry policy -- it changes
        how a sweep is dispatched, never what any point computes -- so it is
        excluded from :meth:`content_hash`.  ``None`` defers to the engine
        default (per-point streaming).
    equivalence_chunk_lanes:
        Lane count of one batch-engine equivalence chunk (the bound on
        big-int plane width during the transform pass's co-simulation).
        Results are bit-identical for any chunk size -- chunks are compared
        in vector order -- so this is an execution field too, excluded from
        :meth:`content_hash`.  ``None`` uses the engine default
        (:data:`repro.simulation.equivalence.BATCH_CHUNK_LANES`).
    engine:
        Bit-plane evaluation core used wherever the run simulates (the
        transform pass's equivalence check and the emit pass's
        co-simulation): ``"auto"`` (compiled plan, backend chosen by lane
        count), ``"bigint"``, ``"numpy"``, or ``"legacy"`` for the
        pre-plan loops.  Every choice is bit-identical -- pinned by the
        cross-engine property suite -- so this too is an execution field,
        excluded from :meth:`content_hash`.  ``None`` defers to the
        ``REPRO_ENGINE`` environment variable, then ``"auto"``.
    """

    latency: int
    mode: FlowMode = FlowMode.CONVENTIONAL
    workload: Optional[str] = None
    spec_text: Optional[str] = None
    adder_style: AdderStyle = AdderStyle.RIPPLE_CARRY
    multiplier_style: MultiplierStyle = MultiplierStyle.ARRAY
    chained_bits_per_cycle: Optional[int] = None
    balance_fragments: bool = True
    scheduler: Optional[Union[SchedulerPolicy, Dict[str, Any]]] = None
    transform: Optional[bool] = None
    validate_input: bool = True
    validate_output: bool = True
    check_equivalence: bool = False
    equivalence_vectors: int = 50
    equivalence_seed: int = 2005
    emit: bool = False
    emit_check: bool = False
    check: bool = False
    check_level: Optional[str] = None
    label: Optional[str] = None
    retries: Optional[int] = None
    timeout_s: Optional[float] = None
    on_error: Optional[str] = None
    sweep_chunk: Optional[int] = None
    equivalence_chunk_lanes: Optional[int] = None
    engine: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "mode", FlowMode.coerce(self.mode))
        object.__setattr__(
            self, "adder_style", _coerce_enum(AdderStyle, self.adder_style, "adder style")
        )
        object.__setattr__(
            self,
            "multiplier_style",
            _coerce_enum(MultiplierStyle, self.multiplier_style, "multiplier style"),
        )
        if not isinstance(self.latency, int) or self.latency < 1:
            raise ConfigError(f"latency must be a positive integer, got {self.latency!r}")
        if self.chained_bits_per_cycle is not None and self.chained_bits_per_cycle <= 0:
            raise ConfigError(
                "chained_bits_per_cycle must be positive when given, got "
                f"{self.chained_bits_per_cycle!r} (use None to derive it)"
            )
        if self.workload is not None and self.spec_text is not None:
            raise ConfigError(
                "give either a workload name or spec_text, not both "
                f"(workload={self.workload!r})"
            )
        if self.equivalence_vectors < 1:
            raise ConfigError("equivalence_vectors must be >= 1")
        if not isinstance(self.equivalence_seed, int) or isinstance(
            self.equivalence_seed, bool
        ):
            raise ConfigError(
                f"equivalence_seed must be an integer, got {self.equivalence_seed!r}"
            )
        if self.emit_check and not self.emit:
            raise ConfigError(
                "emit_check=True requires emit=True (there is no emitted "
                "design to verify otherwise)"
            )
        if self.check_level is not None:
            from ..check import LEVELS

            if not self.check:
                raise ConfigError(
                    f"check_level={self.check_level!r} requires check=True "
                    "(there is nothing to restrict otherwise)"
                )
            if self.check_level not in LEVELS:
                raise ConfigError(
                    f"unknown check_level {self.check_level!r}; expected one "
                    f"of {', '.join(LEVELS)}"
                )
            if self.check_level == "netlist" and not self.emit:
                raise ConfigError(
                    "check_level='netlist' requires emit=True (there is no "
                    "emitted design to check otherwise)"
                )
        if self.retries is not None and (
            not isinstance(self.retries, int)
            or isinstance(self.retries, bool)
            or self.retries < 0
        ):
            raise ConfigError(
                f"retries must be a non-negative integer, got {self.retries!r}"
            )
        if self.timeout_s is not None and not (
            isinstance(self.timeout_s, (int, float))
            and not isinstance(self.timeout_s, bool)
            and self.timeout_s > 0
        ):
            raise ConfigError(
                f"timeout_s must be a positive number, got {self.timeout_s!r}"
            )
        if self.on_error is not None and self.on_error not in (
            "record",
            "skip",
            "raise",
        ):
            raise ConfigError(
                "on_error must be 'record', 'skip' or 'raise', got "
                f"{self.on_error!r}"
            )
        for name in ("sweep_chunk", "equivalence_chunk_lanes"):
            value = getattr(self, name)
            if value is not None and (
                not isinstance(value, int)
                or isinstance(value, bool)
                or value < 1
            ):
                raise ConfigError(
                    f"{name} must be a positive integer, got {value!r} "
                    "(use None for the default)"
                )
        if self.engine is not None and self.engine not in (
            "auto",
            "bigint",
            "numpy",
            "legacy",
        ):
            raise ConfigError(
                "engine must be 'auto', 'bigint', 'numpy' or 'legacy', got "
                f"{self.engine!r}"
            )
        self._resolve_scheduler()

    def _resolve_scheduler(self) -> None:
        """Fold the flat mirror fields and the nested policy into one truth.

        After this runs, ``scheduler`` is always a :class:`SchedulerPolicy`
        and the flat ``chained_bits_per_cycle`` / ``balance_fragments``
        mirrors equal its fields, so legacy attribute reads, dataclass
        equality and both serializations stay consistent.  Explicitly
        conflicting values (flat budget != policy budget) raise; a flat
        ``balance_fragments=False`` is an explicit disable and folds in.
        """
        policy = self.scheduler
        try:
            if isinstance(policy, dict):
                policy = SchedulerPolicy.from_dict(policy)
            if policy is None:
                policy = SchedulerPolicy(
                    chained_bits_per_cycle=self.chained_bits_per_cycle,
                    balance_fragments=self.balance_fragments,
                )
            else:
                flat_bits = self.chained_bits_per_cycle
                if (
                    flat_bits is not None
                    and policy.chained_bits_per_cycle is not None
                    and flat_bits != policy.chained_bits_per_cycle
                ):
                    raise ConfigError(
                        f"chained_bits_per_cycle={flat_bits} conflicts with "
                        f"scheduler.chained_bits_per_cycle="
                        f"{policy.chained_bits_per_cycle}; set it in one place"
                    )
                merged_bits = (
                    policy.chained_bits_per_cycle
                    if policy.chained_bits_per_cycle is not None
                    else flat_bits
                )
                merged_balance = policy.balance_fragments and self.balance_fragments
                if (
                    merged_bits != policy.chained_bits_per_cycle
                    or merged_balance != policy.balance_fragments
                ):
                    policy = policy.replace(
                        chained_bits_per_cycle=merged_bits,
                        balance_fragments=merged_balance,
                    )
        except PolicyError as error:
            raise ConfigError(str(error)) from None
        if policy.search_enabled and self.mode is FlowMode.BLC:
            raise ConfigError(
                'scheduler.policy="search" is not available for the blc flow '
                "(full chaining leaves no scheduling freedom to search over)"
            )
        object.__setattr__(self, "scheduler", policy)
        object.__setattr__(
            self, "chained_bits_per_cycle", policy.chained_bits_per_cycle
        )
        object.__setattr__(self, "balance_fragments", policy.balance_fragments)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def wants_transform(self) -> bool:
        """Whether the pipeline's transform pass runs for this config."""
        if self.transform is not None:
            return self.transform
        return self.mode is FlowMode.FRAGMENTED

    @property
    def has_source(self) -> bool:
        return self.workload is not None or self.spec_text is not None

    @property
    def scheduler_policy(self) -> SchedulerPolicy:
        """The resolved scheduler policy (always set after construction)."""
        policy = self.scheduler
        assert isinstance(policy, SchedulerPolicy)
        return policy

    def build_library(self) -> TechnologyLibrary:
        """The technology library this config describes."""
        library = default_library()
        if self.adder_style is not library.adder_style:
            library = library.with_adder_style(self.adder_style)
        if self.multiplier_style is not library.multiplier_style:
            library = library.with_multiplier_style(self.multiplier_style)
        return library

    def resolve_specification(self) -> Specification:
        """Build the specification from the serializable source."""
        if self.workload is not None:
            return resolve_workload(self.workload)
        if self.spec_text is not None:
            from ..ir.parser import parse_specification

            return parse_specification(self.spec_text)
        raise ConfigError(
            "config has no specification source: set workload or spec_text, "
            "or pass a Specification to Pipeline.run()"
        )

    def replace(self, **changes: Any) -> "FlowConfig":
        """A copy of the config with *changes* applied (validated again).

        The nested policy and its flat mirrors are kept coherent: changing
        ``scheduler`` carries its budget/balance into the mirrors, and
        changing a mirror rebuilds the policy around the new value (so
        ``replace(chained_bits_per_cycle=None)`` genuinely clears the budget
        instead of resurrecting the old policy's value).
        """
        try:
            if "scheduler" in changes:
                policy = changes["scheduler"]
                if isinstance(policy, dict):
                    policy = SchedulerPolicy.from_dict(policy)
                if policy is None:
                    policy = SchedulerPolicy()
                changes["scheduler"] = policy
                changes.setdefault(
                    "chained_bits_per_cycle", policy.chained_bits_per_cycle
                )
                changes.setdefault("balance_fragments", policy.balance_fragments)
            elif "chained_bits_per_cycle" in changes or "balance_fragments" in changes:
                changes["scheduler"] = self.scheduler_policy.replace(
                    chained_bits_per_cycle=changes.get(
                        "chained_bits_per_cycle", self.chained_bits_per_cycle
                    ),
                    balance_fragments=changes.get(
                        "balance_fragments", self.balance_fragments
                    ),
                )
        except PolicyError as error:
            raise ConfigError(str(error)) from None
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable dictionary (enums become their string values)."""
        data = dataclasses.asdict(self)
        data["mode"] = self.mode.value
        data["adder_style"] = self.adder_style.value
        data["multiplier_style"] = self.multiplier_style.value
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FlowConfig":
        """Inverse of :meth:`to_dict`; unknown keys are rejected.

        Accepts two deprecated spellings with a :class:`DeprecationWarning`:
        the pre-pipeline ``chained_bits_override`` alias, and flat scheduler
        knobs (a non-null ``chained_bits_per_cycle`` or a disabled
        ``balance_fragments``) without a nested ``scheduler`` object.  Both
        map onto the policy with unchanged content hashes.
        """
        data = dict(data)
        if "chained_bits_override" in data:
            warnings.warn(
                "FlowConfig key 'chained_bits_override' is deprecated; use "
                "scheduler.chained_bits_per_cycle",
                DeprecationWarning,
                stacklevel=2,
            )
            override = data.pop("chained_bits_override")
            existing = data.get("chained_bits_per_cycle")
            if existing is not None and override is not None and existing != override:
                raise ConfigError(
                    f"chained_bits_override={override!r} conflicts with "
                    f"chained_bits_per_cycle={existing!r}"
                )
            if override is not None:
                data["chained_bits_per_cycle"] = override
        if "scheduler" not in data and (
            data.get("chained_bits_per_cycle") is not None
            or data.get("balance_fragments") is False
        ):
            warnings.warn(
                "flat FlowConfig scheduler knobs (chained_bits_per_cycle, "
                "balance_fragments) are deprecated; nest them under "
                "'scheduler'",
                DeprecationWarning,
                stacklevel=2,
            )
        field_names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - field_names
        if unknown:
            raise ConfigError(
                f"unknown FlowConfig keys {sorted(unknown)}; "
                f"valid keys are {sorted(field_names)}"
            )
        if "latency" not in data:
            raise ConfigError("FlowConfig dictionary is missing 'latency'")
        return cls(**data)

    #: Fields that steer *how* a point executes (retry/timeout policy), not
    #: *what* it computes.  Excluded from the semantic view and the content
    #: hash so execution-policy changes never invalidate caches or stored
    #: workspace rows.
    EXECUTION_FIELDS = (
        "retries",
        "timeout_s",
        "on_error",
        "sweep_chunk",
        "equivalence_chunk_lanes",
        "engine",
    )

    def semantic_dict(self) -> Dict[str, Any]:
        """:meth:`to_dict` minus the execution-policy fields.

        This is the identity of the *result*: the workspace stores and
        compares this view, and :meth:`content_hash` digests it, so two
        configs differing only in retry policy are the same experiment.

        A paper policy whose search knobs all sit at their defaults is
        serialized in the **legacy flat encoding** -- the nested ``scheduler``
        object is dropped, leaving exactly the pre-search dictionary.  That
        pins the content hash of every historically expressible config, so
        result-cache entries and stored workspace rows stay valid.  Search
        policies are new experiments and keep the nested object (new hashes).
        """
        data = self.to_dict()
        for name in self.EXECUTION_FIELDS:
            data.pop(name, None)
        policy = self.scheduler_policy
        if policy.policy == "paper" and policy.is_paper_search_surface():
            data.pop("scheduler", None)
        return data

    def to_json(self, **dumps_kwargs: Any) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "FlowConfig":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ConfigError("FlowConfig JSON must encode an object")
        return cls.from_dict(data)

    def content_hash(self) -> str:
        """A stable digest of the config content, used as the cache key.

        Computed once per instance and cached: the config is frozen, and the
        result cache, the sweep engine and every report row consult the hash
        repeatedly, so re-serializing the whole config to JSON on each lookup
        was measurable overhead at sweep scale.

        The digest covers :meth:`semantic_dict`, not the full dictionary:
        execution-policy fields (``retries``/``timeout_s``/``on_error``)
        change how stubbornly a point runs, never its result, so they must
        not split the cache.
        """
        cached = getattr(self, "_content_hash", None)
        if cached is None:
            semantic = json.dumps(self.semantic_dict(), sort_keys=True)
            cached = hashlib.sha256(semantic.encode("utf-8")).hexdigest()
            object.__setattr__(self, "_content_hash", cached)
        return cached


def specification_fingerprint(specification: Specification) -> str:
    """A stable digest of a specification, for cache keys of in-memory specs."""
    return hashlib.sha256(specification.describe().encode("utf-8")).hexdigest()
