"""The composable passes of the synthesis pipeline.

Each pass is a named function ``(RunArtifact) -> None`` that reads the
artifact slots filled by its predecessors and fills its own.  The default
sequence mirrors the paper's flow::

    parse -> validate -> transform -> schedule -> time -> allocate -> emit
        -> check -> report

(the ``emit`` pass lowers the bound datapath to structural RTL and the
``check`` pass statically verifies every produced IR level; each only runs
when the config's ``emit`` / ``check`` flag asks for it)

Passes are deliberately thin: they delegate to the same primitives the legacy
:func:`repro.hls.flow.synthesize` facade composes, so the pipeline and the
facade cannot drift apart numerically.  Callers swap a pass (for example an
alternative scheduler) with :meth:`repro.api.Pipeline.replace_pass`.
"""

from __future__ import annotations

from typing import Callable, Tuple

from ..core.transform import TransformOptions, transform
from ..hls.datapath import build_datapath
from ..hls.flow import FlowMode, SynthesisResult, run_schedule_with_policy, run_timing
from ..ir.validate import require_valid
from .artifacts import RunArtifact, build_report

#: The signature every pass implements.
PassFn = Callable[[RunArtifact], None]


def parse_pass(artifact: RunArtifact) -> None:
    """Resolve the specification from the config's serializable source.

    A specification injected by ``Pipeline.run(..., specification=...)`` is
    already present and wins over the config source.
    """
    if artifact.specification is None:
        artifact.specification = artifact.config.resolve_specification()
    if artifact.working_specification is None:
        artifact.working_specification = artifact.specification


def validate_pass(artifact: RunArtifact) -> None:
    """Structurally validate the input specification."""
    if artifact.config.validate_input:
        require_valid(artifact.require("specification"))


def transform_pass(artifact: RunArtifact) -> None:
    """Run the paper's presynthesis transformation when the config asks for it.

    Fills ``transform_result``, rebinds ``working_specification`` to the
    optimized specification, and records the per-cycle chained-bit budget the
    scheduler must honour.  For flows that skip the transformation the pass
    only forwards an explicit budget from the config.
    """
    config = artifact.config
    if not config.wants_transform:
        artifact.budget = config.chained_bits_per_cycle
        return
    options = TransformOptions(
        check_equivalence=config.check_equivalence,
        equivalence_vectors=config.equivalence_vectors,
        equivalence_seed=config.equivalence_seed,
        equivalence_chunk_lanes=config.equivalence_chunk_lanes,
        equivalence_backend=config.engine,
        chained_bits_override=config.chained_bits_per_cycle,
        validate_input=False,  # the validate pass handles the input
        validate_output=config.validate_output,
    )
    result = transform(artifact.require("specification"), config.latency, options)
    artifact.transform_result = result
    artifact.working_specification = result.transformed
    if config.chained_bits_per_cycle is not None:
        artifact.budget = config.chained_bits_per_cycle
    else:
        artifact.budget = result.chained_bits_per_cycle


def schedule_pass(artifact: RunArtifact) -> None:
    """Schedule the working specification under the config's scheduler policy.

    The paper policy takes the historical deterministic path; a search policy
    runs the beam/multi-start construction and records the winning start's
    provenance in the ``search`` slot (surfaced as ``search_*`` report keys).
    """
    config = artifact.config
    schedule, budget_used, provenance = run_schedule_with_policy(
        artifact.require("working_specification"),
        config.latency,
        artifact.library,
        config.mode,
        policy=config.scheduler_policy,
        chained_bits_per_cycle=artifact.budget,
    )
    artifact.schedule = schedule
    artifact.search = provenance
    if budget_used is not None:
        artifact.budget = budget_used


def time_pass(artifact: RunArtifact) -> None:
    """Timing analysis: operation-level or bit-level, depending on the mode."""
    artifact.timing = run_timing(
        artifact.require("schedule"), artifact.library, artifact.config.mode
    )


def allocate_pass(artifact: RunArtifact) -> None:
    """Allocation, binding and datapath assembly."""
    artifact.datapath = build_datapath(artifact.require("schedule"), artifact.library)


def emit_pass(artifact: RunArtifact) -> None:
    """Lower the bound datapath to a structural RTL design (opt-in).

    Runs only when the config's ``emit`` flag is set.  With ``emit_check``
    the emitted design is additionally batch co-simulated against the
    :class:`~repro.simulation.batch.BatchInterpreter` oracle on the
    equivalence stimulus set (``equivalence_vectors`` random vectors plus
    the corner set, seeded by ``equivalence_seed``); a mismatch raises.
    """
    config = artifact.config
    if not config.emit:
        return
    from ..rtl.emit import EmissionError, emit_design, verify_emission

    emission = emit_design(
        artifact.require("schedule"),
        artifact.library,
        datapath=artifact.require("datapath"),
    )
    artifact.emission = emission
    if config.emit_check:
        check = verify_emission(
            emission.design,
            artifact.require("working_specification"),
            random_count=config.equivalence_vectors,
            seed=config.equivalence_seed,
            backend=config.engine,
        )
        emission.check = check
        if not check.equivalent:
            raise EmissionError(
                "emitted design disagrees with the batch-interpreter oracle:\n"
                + check.summary()
            )


def check_pass(artifact: RunArtifact) -> None:
    """Statically verify every IR level the run produced (opt-in).

    Runs only when the config's ``check`` flag is set.  The independent
    checkers of :mod:`repro.check` re-derive each level's invariants and the
    resulting :class:`~repro.check.CheckReport` lands in the ``check`` slot;
    any diagnostic of warning severity or worse fails the run with a
    :class:`~repro.check.CheckError` listing the findings.
    """
    config = artifact.config
    if not config.check:
        return
    from ..check import CheckError, check_artifact

    report = check_artifact(artifact, level=config.check_level)
    artifact.check = report
    if not report.clean:
        raise CheckError(
            "static verification failed:\n" + report.render_text()
        )


def report_pass(artifact: RunArtifact) -> None:
    """Assemble the backward-compatible result object and the metric row."""
    config = artifact.config
    budget = artifact.budget if config.mode is not FlowMode.CONVENTIONAL else None
    artifact.synthesis = SynthesisResult(
        specification=artifact.require("working_specification"),
        latency=config.latency,
        mode=config.mode,
        schedule=artifact.require("schedule"),
        timing=artifact.require("timing"),
        datapath=artifact.require("datapath"),
        library=artifact.library,
        chained_bits_per_cycle=budget,
    )
    artifact.report = build_report(artifact)


#: The canonical pass sequence, in execution order.
DEFAULT_PASSES: Tuple[Tuple[str, PassFn], ...] = (
    ("parse", parse_pass),
    ("validate", validate_pass),
    ("transform", transform_pass),
    ("schedule", schedule_pass),
    ("time", time_pass),
    ("allocate", allocate_pass),
    ("emit", emit_pass),
    ("check", check_pass),
    ("report", report_pass),
)
