"""Declarative experiment matrices over :class:`~repro.api.config.FlowConfig`.

A :class:`Study` describes a whole family of flow runs -- a paper table, a
latency sweep, an ablation grid -- as *one* declarative object instead of an
ad-hoc config list.  It starts from a base field dictionary and grows by
composable expansions:

* :meth:`Study.grid` -- cartesian product over named ``FlowConfig`` fields
  (the first keyword is the slowest-varying axis);
* :meth:`Study.cases` -- multiply by an explicit list of per-point override
  dictionaries (each case may set any config field, including ``label``);
* :meth:`Study.zipped` -- zip equal-length axes into lockstep cases.

Expansion is lazy and deterministic: :meth:`Study.points` always returns the
same :class:`StudyPoint` list in the same order, and every point carries a
**stable id** derived from its config's :meth:`~FlowConfig.content_hash`, so
a point means the same thing across processes, machines and re-runs.  That
id is what the on-disk :class:`~repro.api.workspace.Workspace` keys its
artifact store by.

The paper's experiment matrices are re-declared here as named built-in
studies -- ``table1``/``table2``/``table3`` (the area/cycle tables) and
``fig4-chain``/``fig4-motivational``/``fig4-adpcm`` (the latency sweeps) --
which the CLI, the analysis helpers, the benchmarks and the examples all
consume instead of private config lists (see :func:`builtin_study`).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..hls.flow import FlowMode
from ..hls.scheduling.policy import SchedulerPolicy
from .config import ConfigError, FlowConfig
from .resilience import RetryPolicy

__all__ = [
    "BUILTIN_STUDIES",
    "Study",
    "StudyError",
    "StudyPoint",
    "available_studies",
    "build_rows",
    "builtin_study",
    "fig4_study",
    "scheduler_tuning_study",
    "study_from_dict",
    "table_points",
    "table_study",
]


def _jsonable(value: Any) -> Any:
    """Convert config-field values to their wire form, recursively.

    Nested :class:`SchedulerPolicy` objects serialize to their dictionary
    form so a study declaration dumps to canonical JSON deterministically --
    the server's job digest hashes that JSON, and ``FlowConfig`` coerces the
    dictionaries back, so the round trip resolves identical point ids.
    """
    if isinstance(value, SchedulerPolicy):
        return value.to_dict()
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


class StudyError(ValueError):
    """Raised for malformed study declarations or unknown study names."""


class StudyPoint:
    """One expanded point of a study: a stable id plus its config.

    The id is derived from the config's content hash (prefixed with the
    human-readable source/mode/latency coordinates), so it is stable across
    processes and identical configs in different studies share it.
    """

    __slots__ = ("index", "point_id", "config")

    def __init__(self, index: int, point_id: str, config: FlowConfig) -> None:
        self.index = index
        self.point_id = point_id
        self.config = config

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StudyPoint({self.index}, {self.point_id!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, StudyPoint)
            and self.index == other.index
            and self.point_id == other.point_id
            and self.config == other.config
        )

    def __hash__(self) -> int:
        return hash((self.index, self.point_id))


def point_id_for(config: FlowConfig) -> str:
    """The stable point id of one config (see :class:`StudyPoint`)."""
    source = config.workload if config.workload is not None else "spec"
    safe = source.replace(":", "-").replace("/", "-")
    return (
        f"{safe}-{config.mode.value}-l{config.latency}-"
        f"{config.content_hash()[:12]}"
    )


#: Row layouts a study can declare for :func:`build_rows` (``"raw"`` returns
#: the reports untouched).
ROW_KINDS = ("raw", "table", "fig4")


class Study:
    """A declarative, expandable experiment matrix.

    Parameters
    ----------
    name:
        Identifier of the study; keys the workspace manifest.
    base:
        ``FlowConfig`` field defaults shared by every point.
    description:
        One-line human description (shown by ``repro study list``).
    stop_after:
        Pipeline truncation every point runs with (``"time"`` for latency
        sweeps that never pay for allocation; ``None`` for full runs).
    row_kind:
        How :meth:`rows` folds the point reports into presentation rows:
        ``"table"`` pairs (conventional, fragmented) reports into the paper's
        table columns, ``"fig4"`` into sweep rows, ``"raw"`` returns the
        reports as-is.
    retry:
        Default :class:`~repro.api.resilience.RetryPolicy` of every point
        when the study runs through :meth:`Workspace.run_study` without an
        explicit engine.  Execution policy, not semantics: it never changes
        point ids or stored rows.  Per-point ``retries``/``timeout_s``/
        ``on_error`` config fields still override it.

    Studies are immutable: every expansion method returns a new study, so a
    built-in declaration can be safely specialized (``study.grid(...)``)
    without mutating the registry.
    """

    __slots__ = ("name", "description", "base", "stop_after", "row_kind",
                 "retry", "_expansions", "_points")

    def __init__(
        self,
        name: str,
        base: Optional[Dict[str, Any]] = None,
        description: str = "",
        stop_after: Optional[str] = None,
        row_kind: str = "raw",
        retry: Optional[RetryPolicy] = None,
        _expansions: Tuple[Tuple[str, Any], ...] = (),
    ) -> None:
        if not name:
            raise StudyError("study name must be non-empty")
        if row_kind not in ROW_KINDS:
            raise StudyError(
                f"unknown row kind {row_kind!r}: expected one of {ROW_KINDS}"
            )
        if retry is not None and not isinstance(retry, RetryPolicy):
            raise StudyError(
                f"retry must be a RetryPolicy, got {type(retry).__name__}"
            )
        self.name = name
        self.description = description
        self.base = dict(base or {})
        self.stop_after = stop_after
        self.row_kind = row_kind
        self.retry = retry
        self._expansions = _expansions
        self._points: Optional[List[StudyPoint]] = None

    # ------------------------------------------------------------------
    # Expansion (each returns a new study)
    # ------------------------------------------------------------------
    def _extend(self, expansion: Tuple[str, Any]) -> "Study":
        return Study(
            self.name,
            base=self.base,
            description=self.description,
            stop_after=self.stop_after,
            row_kind=self.row_kind,
            retry=self.retry,
            _expansions=self._expansions + (expansion,),
        )

    def with_retry(self, retry: Optional[RetryPolicy]) -> "Study":
        """A copy of this study with a different default retry policy.

        Point ids are untouched (the policy is execution state, not config
        semantics), so stored rows keep resolving.
        """
        return Study(
            self.name,
            base=self.base,
            description=self.description,
            stop_after=self.stop_after,
            row_kind=self.row_kind,
            retry=retry,
            _expansions=self._expansions,
        )

    def grid(self, **axes: Iterable[Any]) -> "Study":
        """Cartesian product over named config fields.

        The first keyword varies slowest (outer loop), the last fastest --
        ``grid(latency=[3, 4], mode=["conventional", "fragmented"])`` yields
        the interleaved (conventional, fragmented) pair at every latency,
        the ordering the paired analysis helpers expect.
        """
        if not axes:
            raise StudyError("grid() needs at least one axis")
        frozen = {key: list(values) for key, values in axes.items()}
        for key, values in frozen.items():
            if not values:
                raise StudyError(f"grid axis {key!r} is empty")
        return self._extend(("grid", frozen))

    def cases(self, cases: Sequence[Dict[str, Any]]) -> "Study":
        """Multiply by an explicit list of per-point override dictionaries."""
        cases = [dict(case) for case in cases]
        if not cases:
            raise StudyError("cases() needs at least one case")
        return self._extend(("cases", cases))

    def zipped(self, **axes: Iterable[Any]) -> "Study":
        """Zip equal-length axes into lockstep cases."""
        if not axes:
            raise StudyError("zipped() needs at least one axis")
        frozen = {key: list(values) for key, values in axes.items()}
        lengths = {len(values) for values in frozen.values()}
        if len(lengths) != 1:
            raise StudyError(
                "zipped() axes must have equal lengths, got "
                + ", ".join(f"{k}={len(v)}" for k, v in frozen.items())
            )
        keys = list(frozen)
        cases = [
            {key: frozen[key][i] for key in keys}
            for i in range(lengths.pop())
        ]
        return self.cases(cases)

    # ------------------------------------------------------------------
    # Serialization (the wire format of inline server submissions)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable description of this study declaration.

        Captures the declaration, not the expansion: base fields, the
        expansion list in application order, and the presentation/retry
        policy.  :func:`study_from_dict` inverts it, and the round trip
        preserves point ids exactly (they derive from the expanded configs'
        content hashes), so a study shipped over the wire resolves the same
        workspace rows as the original object.
        """
        data: Dict[str, Any] = {
            "name": self.name,
            "description": self.description,
            "base": _jsonable(dict(self.base)),
            "stop_after": self.stop_after,
            "row_kind": self.row_kind,
            "expansions": [
                [kind, _jsonable(payload)] for kind, payload in self._expansions
            ],
        }
        if self.retry is not None:
            data["retry"] = self.retry.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Study":
        """Inverse of :meth:`to_dict`; malformed input raises StudyError."""
        if not isinstance(data, dict):
            raise StudyError(
                f"study description must be an object, got {type(data).__name__}"
            )
        name = data.get("name")
        if not isinstance(name, str) or not name:
            raise StudyError("study description needs a non-empty 'name' string")
        base = data.get("base", {})
        if not isinstance(base, dict):
            raise StudyError("study 'base' must be an object of config fields")
        raw_expansions = data.get("expansions", [])
        if not isinstance(raw_expansions, list):
            raise StudyError("study 'expansions' must be a list")
        expansions: List[Tuple[str, Any]] = []
        for position, item in enumerate(raw_expansions):
            if not (isinstance(item, (list, tuple)) and len(item) == 2):
                raise StudyError(
                    f"expansion #{position} must be a [kind, payload] pair"
                )
            kind, payload = item
            if kind == "grid":
                if not isinstance(payload, dict) or not payload:
                    raise StudyError(
                        f"expansion #{position}: grid payload must be a "
                        "non-empty object of axis lists"
                    )
                payload = {key: list(values) for key, values in payload.items()}
                for key, values in payload.items():
                    if not values:
                        raise StudyError(f"grid axis {key!r} is empty")
            elif kind == "cases":
                if not isinstance(payload, list) or not payload:
                    raise StudyError(
                        f"expansion #{position}: cases payload must be a "
                        "non-empty list of objects"
                    )
                if not all(isinstance(case, dict) for case in payload):
                    raise StudyError(
                        f"expansion #{position}: every case must be an object"
                    )
                payload = [dict(case) for case in payload]
            else:
                raise StudyError(
                    f"expansion #{position} has unknown kind {kind!r}: "
                    "expected 'grid' or 'cases'"
                )
            expansions.append((kind, payload))
        retry = None
        if data.get("retry") is not None:
            try:
                retry = RetryPolicy.from_dict(data["retry"])
            except (TypeError, ValueError) as error:
                raise StudyError(f"invalid retry policy: {error}") from None
        description = data.get("description", "")
        if not isinstance(description, str):
            raise StudyError("study 'description' must be a string")
        row_kind = data.get("row_kind", "raw")
        stop_after = data.get("stop_after")
        if stop_after is not None and not isinstance(stop_after, str):
            raise StudyError("study 'stop_after' must be a string or null")
        return cls(
            name,
            base=base,
            description=description,
            stop_after=stop_after,
            row_kind=row_kind,
            retry=retry,
            _expansions=tuple(expansions),
        )

    # ------------------------------------------------------------------
    # Expansion product
    # ------------------------------------------------------------------
    def _expand_fields(self) -> List[Dict[str, Any]]:
        points: List[Dict[str, Any]] = [dict(self.base)]
        for kind, payload in self._expansions:
            if kind == "grid":
                for key, values in payload.items():
                    points = [
                        {**point, key: value}
                        for point in points
                        for value in values
                    ]
            else:  # cases
                points = [
                    {**point, **case} for point in points for case in payload
                ]
        return points

    def points(self) -> List[StudyPoint]:
        """The expanded point list (deterministic; cached per instance)."""
        if self._points is None:
            points: List[StudyPoint] = []
            seen: Dict[str, int] = {}
            for index, fields in enumerate(self._expand_fields()):
                try:
                    config = FlowConfig(**fields)
                except (ConfigError, TypeError) as error:
                    raise StudyError(
                        f"study {self.name!r} point #{index} is invalid: {error}"
                    ) from None
                point_id = point_id_for(config)
                if point_id in seen:
                    raise StudyError(
                        f"study {self.name!r} expands to duplicate point "
                        f"{point_id!r} (indices {seen[point_id]} and {index}); "
                        "distinguish the points with a label override"
                    )
                seen[point_id] = index
                points.append(StudyPoint(index, point_id, config))
            if not points:
                raise StudyError(f"study {self.name!r} expands to no points")
            self._points = points
        return list(self._points)

    def configs(self) -> List[FlowConfig]:
        """Just the configs, in point order."""
        return [point.config for point in self.points()]

    def point_ids(self) -> List[str]:
        return [point.point_id for point in self.points()]

    def __len__(self) -> int:
        return len(self.points())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Study({self.name!r}, {len(self)} points)"

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def rows(self, reports: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Fold the point reports (in point order) into presentation rows."""
        if len(reports) != len(self.points()):
            raise StudyError(
                f"study {self.name!r} has {len(self.points())} points but "
                f"{len(reports)} reports were given"
            )
        return build_rows(self.row_kind, reports)


# ----------------------------------------------------------------------
# Row builders (shared by the CLI, `study report` and the workspace)
# ----------------------------------------------------------------------
def _table_rows(reports: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    from ..analysis.sweeps import change_pct, paired_reports

    rows = []
    for original, optimized in paired_reports(reports):
        rows.append(
            {
                "benchmark": original["workload"],
                "latency": original["latency"],
                "original_cycle_ns": original["cycle_length_ns"],
                "optimized_cycle_ns": optimized["cycle_length_ns"],
                "cycle_saving_pct": change_pct(original, optimized, "cycle_length_ns"),
                "area_change_pct": -change_pct(original, optimized, "datapath_area"),
                "original_total_area": original["total_area"],
                "optimized_total_area": optimized["total_area"],
            }
        )
    return rows


def _fig4_rows(reports: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    from ..analysis.sweeps import change_pct, paired_reports

    rows = []
    for original, optimized in paired_reports(reports):
        rows.append(
            {
                "latency": original["latency"],
                "original_cycle_ns": original["cycle_length_ns"],
                "optimized_cycle_ns": optimized["cycle_length_ns"],
                "cycle_saving_pct": change_pct(original, optimized, "cycle_length_ns"),
            }
        )
    return rows


def build_rows(kind: str, reports: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Fold flat point reports into presentation rows of the given kind."""
    if kind == "raw":
        return [dict(report) for report in reports]
    if kind == "table":
        return _table_rows(reports)
    if kind == "fig4":
        return _fig4_rows(reports)
    raise StudyError(f"unknown row kind {kind!r}: expected one of {ROW_KINDS}")


# ----------------------------------------------------------------------
# Built-in studies: the paper's experiment matrices
# ----------------------------------------------------------------------
def table_points(which: str) -> List[Tuple[str, int]]:
    """The (workload, latency) points of one of the paper's tables."""
    from ..workloads import TABLE2_LATENCIES, TABLE3_LATENCIES

    if which == "table1":
        return [("motivational", 3)]
    if which == "table2":
        return [
            (name, latency)
            for name, latencies in TABLE2_LATENCIES.items()
            for latency in latencies
        ]
    if which == "table3":
        return [
            (f"adpcm_{name}", latency)
            for name, latency in TABLE3_LATENCIES.items()
        ]
    raise StudyError(
        f"unknown table {which!r}: expected table1, table2 or table3"
    )


_TABLE_DESCRIPTIONS = {
    "table1": "Table I: the motivational example (three chained additions)",
    "table2": "Table II: classical HLS benchmarks (elliptic, diffeq, iir4, fir2)",
    "table3": "Table III: ADPCM G.721 decoder modules (IAQ, TTD, OPFC+SCA)",
}


def table_study(which: str) -> Study:
    """The built-in study of one paper table: both flows at every point."""
    points = table_points(which)
    return (
        Study(
            which,
            description=_TABLE_DESCRIPTIONS[which],
            row_kind="table",
        )
        .cases([{"workload": name, "latency": latency} for name, latency in points])
        .grid(mode=[FlowMode.CONVENTIONAL.value, FlowMode.FRAGMENTED.value])
    )


def fig4_study(
    workload: Optional[str],
    latencies: Optional[Iterable[int]] = None,
    transform_options: Optional[Any] = None,
    name: Optional[str] = None,
) -> Study:
    """A Fig. 4 latency-sweep study: (conventional, fragmented) per latency.

    ``latencies`` defaults to the paper's 3..15 sweep.  Produces exactly the
    config axis :func:`repro.analysis.sweep_configs` used to build by hand
    (same fields, same interleaved order, identical content hashes), declared
    once.  Points stop after the timing pass -- Fig. 4 consumes cycle lengths
    only, so allocation never runs.
    """
    from ..core.transform import TransformOptions

    if latencies is None:
        latencies = range(3, 16)
    options = transform_options or TransformOptions(check_equivalence=False)
    base = dict(
        workload=workload,
        check_equivalence=options.check_equivalence,
        equivalence_vectors=options.equivalence_vectors,
        equivalence_seed=options.equivalence_seed,
        chained_bits_per_cycle=options.chained_bits_override,
        validate_input=options.validate_input,
        validate_output=options.validate_output,
    )
    if name is None:
        safe = (workload or "spec").replace(":", "-")
        name = f"fig4-{safe}"
    return (
        Study(
            name,
            base=base,
            description=(
                "Fig. 4: cycle length vs latency for "
                f"{workload or 'an injected specification'}"
            ),
            stop_after="time",
            row_kind="fig4",
        )
        .grid(latency=list(latencies))
        .cases(
            [
                {"mode": FlowMode.CONVENTIONAL.value, "label": "original"},
                {"mode": FlowMode.FRAGMENTED.value, "label": "optimized"},
            ]
        )
    )


def emission_study() -> Study:
    """The RTL emission matrix: emitted + cycle-accurately checked points.

    Every point runs with ``emit=True``/``emit_check=True``, so its workspace
    row carries the structural emission statistics (``emit_gate_count``,
    ``emit_fsm_states``, ``emit_mux_count``, ...) next to the area estimates,
    and the stored ``emit_check_ok`` flag certifies that the emitted design
    simulated bit-identically to the batch-interpreter oracle.
    """
    return (
        Study(
            "emission",
            base=dict(emit=True, emit_check=True),
            description=(
                "RTL emission: structural gate counts and the cycle-accurate "
                "oracle check for the motivational and ADPCM IAQ designs"
            ),
            row_kind="raw",
        )
        .cases(
            [
                {"workload": "motivational", "latency": 3},
                {"workload": "adpcm_iaq", "latency": 3},
            ]
        )
        .grid(mode=[FlowMode.CONVENTIONAL.value, FlowMode.FRAGMENTED.value])
    )


def scheduler_tuning_study() -> Study:
    """The search-based scheduling matrix: beam x starts x weights vs paper.

    Every workload point runs once with the pinned paper policy and then
    under a grid of search policies (beam widths, multi-start counts, and
    one explicitly weighted priority).  Rows are raw reports: search points
    carry ``search_*`` keys (winning start, points probed, baseline vs best
    objective), so ``search_objective <= search_baseline_objective`` can be
    asserted per row -- the search never returns a schedule worse than the
    deterministic baseline.
    """
    policy_cases: List[Dict[str, Any]] = [{"label": "paper"}]
    for beam_width in (2, 4):
        for starts in (1, 4):
            policy_cases.append(
                {
                    "label": f"search-b{beam_width}-s{starts}",
                    "scheduler": {
                        "policy": "search",
                        "beam_width": beam_width,
                        "starts": starts,
                    },
                }
            )
    policy_cases.append(
        {
            "label": "search-weighted",
            "scheduler": {
                "policy": "search",
                "beam_width": 2,
                "starts": 2,
                "criticality_weight": 1.0,
                "successor_weight": 0.5,
            },
        }
    )
    return (
        Study(
            "scheduler-tuning",
            description=(
                "Search-based scheduling: beam width x multi-starts x "
                "priority weights against the paper's deterministic baseline"
            ),
            row_kind="raw",
        )
        .cases(
            [
                {
                    "workload": "motivational",
                    "latency": 3,
                    "mode": FlowMode.CONVENTIONAL.value,
                },
                {
                    "workload": "fig3",
                    "latency": 4,
                    "mode": FlowMode.CONVENTIONAL.value,
                },
            ]
        )
        .cases(policy_cases)
    )


#: Factories of the named built-in studies (the paper's artifacts).
BUILTIN_STUDIES: Dict[str, Callable[[], Study]] = {
    "table1": lambda: table_study("table1"),
    "table2": lambda: table_study("table2"),
    "table3": lambda: table_study("table3"),
    "fig4-chain": lambda: fig4_study("chain:3:16", name="fig4-chain"),
    "fig4-motivational": lambda: fig4_study("motivational", name="fig4-motivational"),
    "fig4-adpcm": lambda: fig4_study("adpcm_iaq", name="fig4-adpcm"),
    "emission": emission_study,
    "scheduler-tuning": scheduler_tuning_study,
}


def builtin_study(name: str) -> Study:
    """Resolve a named built-in study (a fresh instance per call)."""
    factory = BUILTIN_STUDIES.get(name)
    if factory is None:
        known = ", ".join(sorted(BUILTIN_STUDIES))
        raise StudyError(f"unknown study {name!r}: expected one of {known}")
    return factory()


def available_studies() -> Dict[str, Study]:
    """Every built-in study, by name (fresh instances)."""
    return {name: factory() for name, factory in BUILTIN_STUDIES.items()}


def study_from_dict(data: Dict[str, Any]) -> Study:
    """Rebuild a study from its :meth:`Study.to_dict` description."""
    return Study.from_dict(data)
