"""Content-hash keyed result cache for pipeline runs.

Repeated sweeps hit the same (config, specification) points over and over --
latency sweeps share the conventional baseline across adder-style
explorations, tables re-run the points figures already computed.  The cache
keys every run by the config's content hash (plus the fingerprint of an
injected in-memory specification and the pass-list shape) and keeps two
tiers:

* an in-memory LRU of full :class:`~repro.api.artifacts.RunArtifact` objects
  (schedules, datapaths and all), and
* an optional on-disk tier storing the JSON metric report, surviving across
  processes; a disk hit rehydrates an artifact carrying the report only.

Thread-safe: the sweep engine shares one cache across its workers.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Optional, Union

from .artifacts import REPORT_SCHEMA_VERSION, RunArtifact
from .config import FlowConfig

_FORMAT_VERSION = 1


class ResultCache:
    """Two-tier (memory + optional disk) cache of pipeline runs.

    Parameters
    ----------
    directory:
        When given, completed runs also persist their metric report as
        ``<key>.json`` below this directory (created on demand).
    max_memory_entries:
        LRU bound for the in-memory tier; ``None`` means unbounded.
    """

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        max_memory_entries: Optional[int] = None,
    ) -> None:
        if max_memory_entries is not None and max_memory_entries < 1:
            raise ValueError("max_memory_entries must be >= 1 or None")
        self.directory = Path(directory) if directory is not None else None
        self.max_memory_entries = max_memory_entries
        self._memory: "OrderedDict[str, RunArtifact]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    @staticmethod
    def key_for(
        config: FlowConfig,
        spec_fingerprint: Optional[str] = None,
        pass_shape: Optional[str] = None,
    ) -> str:
        """The cache key of one run.

        ``spec_fingerprint`` covers in-memory specifications that bypass the
        config source; ``pass_shape`` covers customized/truncated pipelines
        (different pass lists must never share entries).  The report schema
        version is stamped into the key, so on-disk entries written by an
        older report layout miss (and are rewritten) instead of being
        silently reloaded with stale rows.
        """
        key = f"rs{REPORT_SCHEMA_VERSION}:{config.content_hash()}"
        if spec_fingerprint:
            key += f":spec={spec_fingerprint}"
        if pass_shape:
            key += f":passes={pass_shape}"
        return key

    # ------------------------------------------------------------------
    @staticmethod
    def _isolated_copy(artifact: RunArtifact, from_cache: bool) -> RunArtifact:
        """A copy whose mutable report/passes don't alias the cached entry.

        Heavyweight slots (specification, schedule, datapath) are shared --
        the pipeline never mutates them after a run -- but callers do
        annotate reports, and that must not poison later cache hits.
        """
        return dataclasses.replace(
            artifact,
            from_cache=from_cache,
            report=dict(artifact.report) if artifact.report is not None else None,
            passes=list(artifact.passes),
        )

    def get(self, key: str) -> Optional[RunArtifact]:
        """Look a run up, memory tier first, then disk."""
        with self._lock:
            artifact = self._memory.get(key)
            if artifact is not None:
                self._memory.move_to_end(key)
                self.hits += 1
                return self._isolated_copy(artifact, from_cache=True)
        artifact = self._load_from_disk(key)
        with self._lock:
            if artifact is not None:
                self.hits += 1
                self._memory[key] = artifact
                self._memory.move_to_end(key)
                while (
                    self.max_memory_entries is not None
                    and len(self._memory) > self.max_memory_entries
                ):
                    self._memory.popitem(last=False)
                return self._isolated_copy(artifact, from_cache=True)
            self.misses += 1
            return None

    def put(self, key: str, artifact: RunArtifact) -> None:
        """Store a completed run in both tiers."""
        artifact = self._isolated_copy(artifact, from_cache=artifact.from_cache)
        with self._lock:
            self._memory[key] = artifact
            self._memory.move_to_end(key)
            while (
                self.max_memory_entries is not None
                and len(self._memory) > self.max_memory_entries
            ):
                self._memory.popitem(last=False)
        if self.directory is not None and artifact.report is not None:
            self._store_to_disk(key, artifact)

    def clear(self) -> None:
        with self._lock:
            self._memory.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._memory),
                "hits": self.hits,
                "misses": self.misses,
                "directory": str(self.directory) if self.directory else None,
            }

    # ------------------------------------------------------------------
    # Disk tier
    # ------------------------------------------------------------------
    def _path_for(self, key: str) -> Path:
        assert self.directory is not None
        # Keys embed the pass shape and can grow arbitrarily long; hash them
        # so filenames stay within filesystem limits.  The full key is
        # stored inside the payload and checked on load.
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return self.directory / f"{digest}.json"

    def _store_to_disk(self, key: str, artifact: RunArtifact) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": _FORMAT_VERSION,
            "key": key,
            "config": artifact.config.to_dict(),
            "report": artifact.report,
        }
        path = self._path_for(key)
        # Unique tmp name per writer: concurrent puts of the same key (thread
        # workers, or processes sharing the directory) must not race on one
        # tmp file; the final rename stays atomic either way.
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}-{threading.get_ident()}.tmp"
        )
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
        tmp.replace(path)

    def _load_from_disk(self, key: str) -> Optional[RunArtifact]:
        if self.directory is None:
            return None
        path = self._path_for(key)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("version") != _FORMAT_VERSION or payload.get("key") != key:
            return None
        config = FlowConfig.from_dict(payload["config"])
        artifact = RunArtifact(
            config=config,
            library=config.build_library(),
            report=payload["report"],
            from_cache=True,
        )
        return artifact
