"""On-disk experiment workspaces: persistent, resumable study runs.

A :class:`Workspace` is a project root on disk holding everything a
:class:`~repro.api.study.Study` has ever computed:

* ``manifest.json`` -- the index: schema versions plus, per study, the
  ordered point-id list of its last run and the completed-point records
  (each naming the content address of its row);
* ``objects/<aa>/<hash>.json`` -- the **content-addressed artifact store**:
  one schema-versioned JSON row per completed point (point id, full config
  dictionary, metric report, provenance).  The filename is the SHA-256 of
  the canonical row payload, so identical results share storage, rows are
  tamper-evident (the address is re-checked on load) and a half-written
  file can never alias a good one.

Rows are stamped with the report schema version
(:data:`repro.api.artifacts.REPORT_SCHEMA_VERSION`); rows written by an
older schema are treated as missing rather than silently reloaded, so a
schema bump re-runs exactly the points it invalidated.

:meth:`Workspace.run_study` is the resumable entry point: completed points
load from the store, only missing points run (streamed through
:meth:`SweepEngine.submit`, each persisted the moment it finishes), so an
interrupted study picks up where it stopped and a finished study replays
with zero recomputation.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from .artifacts import REPORT_SCHEMA_VERSION
from .pipeline import Pipeline
from .study import Study, StudyPoint
from .sweep import SweepEngine, SweepOutcome

__all__ = [
    "PointResult",
    "StudyRunResult",
    "Workspace",
    "WorkspaceError",
    "WORKSPACE_SCHEMA_VERSION",
]

#: Format marker of ``manifest.json``.
WORKSPACE_SCHEMA_VERSION = 1

_MANIFEST_NAME = "manifest.json"
_OBJECTS_DIR = "objects"


class WorkspaceError(RuntimeError):
    """Raised for unreadable workspaces or incomplete-report requests."""


@dataclass
class PointResult:
    """What happened to one study point during :meth:`Workspace.run_study`.

    ``source`` is ``"store"`` (loaded from the workspace, zero compute),
    ``"run"`` (executed this run), ``"cancelled"`` (skipped by cooperative
    cancellation) or ``"error"`` (executed and failed).
    """

    point: StudyPoint
    source: str
    report: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.report is not None and self.error is None


@dataclass
class StudyRunResult:
    """The outcome of one (possibly resumed) study run, in point order."""

    study: Study
    results: List[PointResult] = field(default_factory=list)

    def _count(self, source: str) -> int:
        return sum(1 for result in self.results if result.source == source)

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def loaded(self) -> int:
        """Points satisfied from the workspace store (zero recomputation)."""
        return self._count("store")

    @property
    def ran(self) -> int:
        """Points actually executed by this run (errors included)."""
        return self._count("run") + self._count("error")

    @property
    def failed(self) -> int:
        return self._count("error")

    @property
    def cancelled(self) -> int:
        return self._count("cancelled")

    @property
    def complete(self) -> bool:
        return all(result.ok for result in self.results)

    def reports(self) -> List[Dict[str, Any]]:
        """The point reports in study order; raises when any point is missing."""
        missing = [r.point.point_id for r in self.results if not r.ok]
        if missing:
            raise WorkspaceError(
                f"study {self.study.name!r} is incomplete: "
                f"{len(missing)} point(s) unfinished ({', '.join(missing[:5])}"
                f"{', ...' if len(missing) > 5 else ''})"
            )
        return [result.report for result in self.results]  # type: ignore[misc]

    def rows(self) -> List[Dict[str, Any]]:
        """The study's presentation rows (see :meth:`Study.rows`)."""
        return self.study.rows(self.reports())

    def summary(self) -> Dict[str, Any]:
        """Flat JSON-serializable run summary (the CLI's ``--json`` output)."""
        return {
            "study": self.study.name,
            "total": self.total,
            "loaded": self.loaded,
            "ran": self.ran,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "complete": self.complete,
        }


#: Progress hook of :meth:`Workspace.run_study`: called once per settled
#: point with the result plus running (done, total) counters.
StudyProgressFn = Callable[[PointResult, int, int], None]


def _canonical_row_bytes(payload: Dict[str, Any]) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


#: The row fields covered by the content address.  Provenance fields
#: (``completed_at``, ``elapsed_s``) are stored but **not** hashed: two runs
#: producing the identical result must share one object, whatever second
#: they finished in, and re-running a point must not orphan a near-identical
#: object on every write.
_ADDRESSED_FIELDS = ("schema_version", "point_id", "config", "report")


def _address_for(payload: Dict[str, Any]) -> str:
    core = {field: payload.get(field) for field in _ADDRESSED_FIELDS}
    return hashlib.sha256(_canonical_row_bytes(core)).hexdigest()


class Workspace:
    """A persistent experiment root: manifest + content-addressed row store.

    Parameters
    ----------
    root:
        Directory of the workspace.  Created (with a fresh manifest) when
        missing; an existing manifest is validated against
        :data:`WORKSPACE_SCHEMA_VERSION`.
    create:
        ``False`` refuses to conjure a workspace out of thin air: a missing
        root or manifest raises :class:`WorkspaceError` instead.  Read-only
        consumers (``study status``/``report``) use this so a mistyped path
        reads as "no workspace here", not as an empty one.
    """

    def __init__(self, root: Union[str, Path], create: bool = True) -> None:
        self.root = Path(root)
        if not create and not (self.root / _MANIFEST_NAME).exists():
            raise WorkspaceError(
                f"no workspace at {self.root} (missing {_MANIFEST_NAME}); "
                "check the path, or run a study there first"
            )
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._manifest = self._load_manifest()

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.root / _MANIFEST_NAME

    def _fresh_manifest(self) -> Dict[str, Any]:
        return {
            "schema_version": WORKSPACE_SCHEMA_VERSION,
            "artifact_schema_version": REPORT_SCHEMA_VERSION,
            "studies": {},
        }

    def _load_manifest(self) -> Dict[str, Any]:
        path = self.manifest_path
        if not path.exists():
            manifest = self._fresh_manifest()
            self._write_json_atomic(path, manifest)
            return manifest
        try:
            manifest = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise WorkspaceError(
                f"cannot read workspace manifest {path}: {error}"
            ) from None
        version = manifest.get("schema_version")
        if version != WORKSPACE_SCHEMA_VERSION:
            raise WorkspaceError(
                f"workspace {self.root} has manifest schema {version!r}; this "
                f"version of repro reads schema {WORKSPACE_SCHEMA_VERSION} "
                "(use a fresh --workspace directory)"
            )
        manifest.setdefault("studies", {})
        return manifest

    def _write_json_atomic(self, path: Path, payload: Dict[str, Any]) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}-{threading.get_ident()}.tmp"
        )
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
        tmp.replace(path)

    def _save_manifest(self) -> None:
        # Merge-on-write: another process sharing this workspace may have
        # recorded points since this instance loaded the manifest.  Union
        # the on-disk records into ours (our in-memory records win per
        # point) before rewriting, so concurrent studies never erase each
        # other's completed work wholesale.  The remaining race window is
        # one point wide, and a lost record only costs a re-run -- the row
        # objects themselves are content-addressed and never overwritten.
        try:
            on_disk = json.loads(self.manifest_path.read_text())
        except (OSError, json.JSONDecodeError):
            on_disk = None
        if (
            isinstance(on_disk, dict)
            and on_disk.get("schema_version") == WORKSPACE_SCHEMA_VERSION
        ):
            for study_name, entry in (on_disk.get("studies") or {}).items():
                ours = self._manifest["studies"].setdefault(
                    study_name, {"point_ids": [], "points": {}}
                )
                for point_id, record in (entry.get("points") or {}).items():
                    mine = ours["points"].get(point_id)
                    # Newest record wins (completed_at is an ISO timestamp,
                    # lexicographically ordered): a record another process
                    # wrote after this instance loaded the manifest must not
                    # be reverted by our stale in-memory copy.
                    if mine is None or (record.get("completed_at") or "") > (
                        mine.get("completed_at") or ""
                    ):
                        ours["points"][point_id] = record
                if not ours["point_ids"] and entry.get("point_ids"):
                    ours["point_ids"] = list(entry["point_ids"])
        # The artifact schema recorded is the one of the *newest* rows; old
        # rows stay addressable but fail the per-row schema check on load.
        self._manifest["artifact_schema_version"] = REPORT_SCHEMA_VERSION
        self._write_json_atomic(self.manifest_path, self._manifest)

    def _study_entry(self, study_name: str) -> Dict[str, Any]:
        return self._manifest["studies"].setdefault(
            study_name, {"point_ids": [], "points": {}}
        )

    # ------------------------------------------------------------------
    # Content-addressed row store
    # ------------------------------------------------------------------
    def _object_path(self, address: str) -> Path:
        return self.root / _OBJECTS_DIR / address[:2] / f"{address}.json"

    @staticmethod
    def _object_is_intact(path: Path, address: str) -> bool:
        """Whether the object file exists and re-hashes to its address."""
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return False
        return _address_for(payload) == address

    def store_row(
        self,
        study_name: str,
        point: StudyPoint,
        report: Dict[str, Any],
        elapsed_s: float = 0.0,
    ) -> str:
        """Persist one completed point; returns the row's content address."""
        payload = {
            "schema_version": REPORT_SCHEMA_VERSION,
            "point_id": point.point_id,
            "config": point.config.to_dict(),
            "report": report,
            "elapsed_s": elapsed_s,
            # UTC, so the manifest merge's newest-wins comparison is a plain
            # lexicographic one (local %z timestamps mis-order across DST
            # transitions or machines in different timezones).
            "completed_at": time.strftime(
                "%Y-%m-%dT%H:%M:%S+0000", time.gmtime()
            ),
        }
        address = _address_for(payload)
        with self._lock:
            path = self._object_path(address)
            if not self._object_is_intact(path, address):
                # Also reached when the file exists but is corrupt or
                # tampered: rewriting heals the store instead of re-running
                # the point on every future resume.
                self._write_json_atomic(path, payload)
            entry = self._study_entry(study_name)
            entry["points"][point.point_id] = {
                "object": address,
                "completed_at": payload["completed_at"],
            }
            self._save_manifest()
        return address

    def load_row(self, study_name: str, point: StudyPoint) -> Optional[Dict[str, Any]]:
        """Load the stored row of one point, or ``None`` when it must re-run.

        A row is only honoured when the manifest knows it, its object file
        exists, re-hashes to its address (content integrity over the
        addressed fields; provenance timestamps are exempt), carries the
        current report schema version and still describes the same config.
        """
        with self._lock:
            entry = self._manifest["studies"].get(study_name)
            record = (entry or {}).get("points", {}).get(point.point_id)
        if not record:
            return None
        address = record.get("object")
        if not address:
            return None
        path = self._object_path(address)
        try:
            text = path.read_text()
            payload = json.loads(text)
        except (OSError, json.JSONDecodeError):
            return None
        if _address_for(payload) != address:
            return None
        if payload.get("schema_version") != REPORT_SCHEMA_VERSION:
            return None
        if payload.get("point_id") != point.point_id:
            return None
        if payload.get("config") != point.config.to_dict():
            return None
        return payload

    def gc(self) -> int:
        """Delete row objects no manifest record references; returns the count.

        Superseded rows (``--fresh`` re-runs, schema bumps, tamper-triggered
        recomputes) leave their old objects on disk; this prunes them.
        """
        with self._lock:
            referenced = {
                record.get("object")
                for entry in self._manifest["studies"].values()
                for record in entry.get("points", {}).values()
            }
            # Honour records another process wrote since this instance
            # loaded the manifest, not just the in-memory view.
            try:
                on_disk = json.loads(self.manifest_path.read_text())
            except (OSError, json.JSONDecodeError):
                on_disk = None
            if isinstance(on_disk, dict):
                referenced |= {
                    record.get("object")
                    for entry in (on_disk.get("studies") or {}).values()
                    for record in (entry.get("points") or {}).values()
                }
            removed = 0
            objects_dir = self.root / _OBJECTS_DIR
            if objects_dir.is_dir():
                for path in objects_dir.rglob("*.json"):
                    if path.stem not in referenced:
                        try:
                            path.unlink()
                            removed += 1
                        except OSError:
                            pass
            return removed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def studies(self) -> List[str]:
        """Names of the studies this workspace has rows for."""
        return sorted(self._manifest["studies"])

    def status(self, study: Study) -> Dict[str, Any]:
        """Per-point completion state of a study (JSON-serializable)."""
        points = study.points()
        rows = []
        completed = 0
        for point in points:
            payload = self.load_row(study.name, point)
            done = payload is not None
            completed += done
            rows.append(
                {
                    "point_id": point.point_id,
                    "workload": point.config.workload,
                    "mode": point.config.mode.value,
                    "latency": point.config.latency,
                    "status": "completed" if done else "missing",
                    "completed_at": payload.get("completed_at") if done else None,
                }
            )
        return {
            "study": study.name,
            "workspace": str(self.root),
            "total": len(points),
            "completed": completed,
            "missing": len(points) - completed,
            "points": rows,
        }

    def reports(
        self, study: Study, allow_partial: bool = False
    ) -> List[Dict[str, Any]]:
        """Stored reports in point order, with **zero recomputation**.

        Raises :class:`WorkspaceError` naming the missing points unless
        ``allow_partial`` (then missing points are simply omitted).
        """
        reports: List[Dict[str, Any]] = []
        missing: List[str] = []
        for point in study.points():
            payload = self.load_row(study.name, point)
            if payload is None:
                missing.append(point.point_id)
            else:
                reports.append(payload["report"])
        if missing and not allow_partial:
            raise WorkspaceError(
                f"study {study.name!r} has {len(missing)} unfinished point(s) "
                f"in workspace {self.root} ({', '.join(missing[:5])}"
                f"{', ...' if len(missing) > 5 else ''}); run "
                f"`repro study run {study.name}` to complete it"
            )
        return reports

    def rows(self, study: Study) -> List[Dict[str, Any]]:
        """The study's presentation rows from stored reports only."""
        return study.rows(self.reports(study))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_study(
        self,
        study: Study,
        engine: Optional[SweepEngine] = None,
        resume: bool = True,
        max_workers: Optional[int] = None,
        executor: Optional[str] = None,
        progress: Optional[StudyProgressFn] = None,
        max_points: Optional[int] = None,
    ) -> StudyRunResult:
        """Run a study against this workspace, resuming from stored rows.

        Parameters
        ----------
        engine:
            Sweep engine for the missing points.  Defaults to a fresh engine
            honouring ``max_workers``/``executor`` and the study's
            ``stop_after``; a caller-provided engine must match the study's
            ``stop_after`` (different truncations produce different rows).
        resume:
            Load completed points from the store (the default).  ``False``
            recomputes every point (stored rows are overwritten).
        progress:
            Called once per settled point -- loaded points first (in study
            order), then executed points in completion order -- with the
            :class:`PointResult` and running ``(done, total)`` counters.
        max_points:
            Cooperatively cancel the run after this many *executed* points
            (loaded points don't count).  The interruption hook: remaining
            points stay missing, and a later ``resume`` run picks them up.
        """
        points = study.points()
        if engine is None:
            if executor is None:
                executor = "thread" if (max_workers or 1) > 1 else "serial"
            engine = SweepEngine(
                pipeline=Pipeline(),
                max_workers=max_workers,
                executor=executor,
                stop_after=study.stop_after,
            )
        elif engine.stop_after != study.stop_after:
            raise WorkspaceError(
                f"engine stop_after={engine.stop_after!r} does not match "
                f"study {study.name!r} stop_after={study.stop_after!r}"
            )
        if max_points is not None and max_points < 1:
            raise ValueError("max_points must be >= 1 when given")

        with self._lock:
            entry = self._study_entry(study.name)
            entry["point_ids"] = [point.point_id for point in points]
            self._save_manifest()

        results: Dict[int, PointResult] = {}
        done = 0

        def settle(result: PointResult) -> None:
            nonlocal done
            results[result.point.index] = result
            done += 1
            if progress is not None:
                progress(result, done, len(points))

        pending: List[StudyPoint] = []
        for point in points:
            payload = self.load_row(study.name, point) if resume else None
            if payload is not None:
                settle(
                    PointResult(
                        point=point,
                        source="store",
                        report=payload["report"],
                        elapsed_s=float(payload.get("elapsed_s", 0.0)),
                    )
                )
            else:
                pending.append(point)

        if pending:
            index_to_point = {
                submit_index: point for submit_index, point in enumerate(pending)
            }
            run = engine.submit([point.config for point in pending])
            executed = 0
            for outcome in run.as_completed():
                point = index_to_point[outcome.index]
                settle(self._settle_outcome(study, point, outcome))
                if outcome.cancelled:
                    continue
                executed += 1
                if max_points is not None and executed >= max_points:
                    run.cancel()

        return StudyRunResult(
            study=study,
            results=[results[index] for index in range(len(points))],
        )

    def _settle_outcome(
        self, study: Study, point: StudyPoint, outcome: SweepOutcome
    ) -> PointResult:
        if outcome.cancelled:
            return PointResult(point=point, source="cancelled")
        if not outcome.ok or outcome.report is None:
            return PointResult(
                point=point,
                source="error",
                error=outcome.error or "point completed without a report",
                elapsed_s=outcome.elapsed_s,
            )
        self.store_row(
            study.name, point, outcome.report, elapsed_s=outcome.elapsed_s
        )
        return PointResult(
            point=point,
            source="run",
            report=outcome.report,
            elapsed_s=outcome.elapsed_s,
        )
