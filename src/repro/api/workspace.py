"""On-disk experiment workspaces: persistent, resumable study runs.

A :class:`Workspace` is a project root on disk holding everything a
:class:`~repro.api.study.Study` has ever computed:

* ``manifest.json`` -- the index: schema versions plus, per study, the
  ordered point-id list of its last run, the completed-point records (each
  naming the content address of its row) and the structured error rows of
  points whose attempts were exhausted;
* ``objects/<aa>/<hash>.json`` -- the **content-addressed artifact store**:
  one schema-versioned JSON row per completed point (point id, full config
  dictionary, metric report, provenance).  The filename is the SHA-256 of
  the canonical row payload, so identical results share storage, rows are
  tamper-evident (the address is re-checked on load) and a half-written
  file can never alias a good one;
* ``journal.jsonl`` -- an fsync'd **write-ahead journal** of manifest
  updates: every completed row is journalled before the manifest is
  rewritten, so a SIGKILL mid-save loses at most presentation state, never
  a completed row.  The journal is replayed on load and compacted once the
  manifest is known good;
* ``quarantine/`` -- where corrupt, truncated or hash-mismatched files are
  *moved* (never deleted) when detected, preserving the evidence while
  getting it out of the load path;
* ``.lock`` -- an advisory lock file taken by :meth:`run_study` and
  :meth:`salvage`.  A lock held by a dead process (or older than the stale
  threshold) is taken over.

Rows are stamped with the report schema version
(:data:`repro.api.artifacts.REPORT_SCHEMA_VERSION`); rows written by an
older schema are treated as missing rather than silently reloaded, so a
schema bump re-runs exactly the points it invalidated.

:meth:`Workspace.run_study` is the resumable entry point: completed points
load from the store, only missing points run (streamed through
:meth:`SweepEngine.submit`, each persisted the moment it finishes), so an
interrupted study picks up where it stopped and a finished study replays
with zero recomputation.  Failed points become error rows in the manifest
(stable ``RUN0xx`` codes, exception chain, attempt history) and re-run on
the next resume.  :meth:`Workspace.salvage` walks the store, quarantines
whatever does not re-hash, drops dangling manifest records, reattaches
orphaned-but-intact rows and compacts the journal -- the repair verb for a
workspace that went through a crash.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

from .. import faults
from . import resilience
from .artifacts import REPORT_SCHEMA_VERSION
from .pipeline import Pipeline
from .study import Study, StudyPoint
from .sweep import SweepEngine, SweepOutcome

__all__ = [
    "PointResult",
    "SalvageReport",
    "StudyRunResult",
    "Workspace",
    "WorkspaceCorruptError",
    "WorkspaceError",
    "WORKSPACE_SCHEMA_VERSION",
]

#: Format marker of ``manifest.json``.
WORKSPACE_SCHEMA_VERSION = 1

_MANIFEST_NAME = "manifest.json"
_OBJECTS_DIR = "objects"
_JOURNAL_NAME = "journal.jsonl"
_QUARANTINE_DIR = "quarantine"
_LOCK_NAME = ".lock"

#: A lock file older than this is presumed abandoned even when its pid is
#: alive (pid reuse); younger locks of dead pids are taken over immediately.
STALE_LOCK_S = 3600.0

#: How long a *live* foreign lock is waited on before giving up.  Two
#: processes sharing one workspace (a server plus a CLI, or two sweeps over
#: disjoint studies) serialize on the advisory lock rather than fail; only
#: a holder that outlives this window raises.
LOCK_WAIT_S = 60.0
_LOCK_POLL_S = 0.05


class WorkspaceError(RuntimeError):
    """Raised for unreadable workspaces or incomplete-report requests."""


class WorkspaceCorruptError(WorkspaceError):
    """A workspace file is corrupt (unparseable, truncated or malformed).

    Carries the offending ``path``.  Recoverable: open the workspace with
    ``recover=True`` (quarantines the corrupt manifest and rebuilds from the
    journal) or run ``repro study salvage --workspace <root>``.
    """

    def __init__(self, path: Union[str, Path], detail: str) -> None:
        super().__init__(
            f"corrupt workspace file {path}: {detail} "
            "(recoverable: open with recover=True, or run "
            "`repro study salvage --workspace <root>`)"
        )
        self.path = Path(path)


@dataclass
class PointResult:
    """What happened to one study point during :meth:`Workspace.run_study`.

    ``source`` is ``"store"`` (loaded from the workspace, zero compute),
    ``"run"`` (executed this run), ``"cancelled"`` (skipped by cooperative
    cancellation) or ``"error"`` (executed and failed; ``error_code`` then
    names the ``RUN0xx`` failure class).
    """

    point: StudyPoint
    source: str
    report: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    error_code: Optional[str] = None
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.report is not None and self.error is None


@dataclass
class StudyRunResult:
    """The outcome of one (possibly resumed) study run, in point order."""

    study: Study
    results: List[PointResult] = field(default_factory=list)

    def _count(self, source: str) -> int:
        return sum(1 for result in self.results if result.source == source)

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def loaded(self) -> int:
        """Points satisfied from the workspace store (zero recomputation)."""
        return self._count("store")

    @property
    def ran(self) -> int:
        """Points actually executed by this run (errors included)."""
        return self._count("run") + self._count("error")

    @property
    def failed(self) -> int:
        return self._count("error")

    @property
    def cancelled(self) -> int:
        return self._count("cancelled")

    @property
    def complete(self) -> bool:
        return all(result.ok for result in self.results)

    def reports(self) -> List[Dict[str, Any]]:
        """The point reports in study order; raises when any point is missing."""
        missing = [r.point.point_id for r in self.results if not r.ok]
        if missing:
            raise WorkspaceError(
                f"study {self.study.name!r} is incomplete: "
                f"{len(missing)} point(s) unfinished ({', '.join(missing[:5])}"
                f"{', ...' if len(missing) > 5 else ''})"
            )
        return [result.report for result in self.results]  # type: ignore[misc]

    def rows(self) -> List[Dict[str, Any]]:
        """The study's presentation rows (see :meth:`Study.rows`)."""
        return self.study.rows(self.reports())

    def summary(self) -> Dict[str, Any]:
        """Flat JSON-serializable run summary (the CLI's ``--json`` output)."""
        return {
            "study": self.study.name,
            "total": self.total,
            "loaded": self.loaded,
            "ran": self.ran,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "complete": self.complete,
        }


@dataclass
class SalvageReport:
    """What :meth:`Workspace.salvage` found and repaired."""

    quarantined: List[str] = field(default_factory=list)
    dropped_records: int = 0
    reattached: int = 0
    journal_replayed: int = 0

    @property
    def clean(self) -> bool:
        """True when salvage found nothing to repair."""
        return (
            not self.quarantined
            and self.dropped_records == 0
            and self.reattached == 0
            and self.journal_replayed == 0
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "quarantined": list(self.quarantined),
            "dropped_records": self.dropped_records,
            "reattached": self.reattached,
            "journal_replayed": self.journal_replayed,
            "clean": self.clean,
        }


#: Progress hook of :meth:`Workspace.run_study`: called once per settled
#: point with the result plus running (done, total) counters.
StudyProgressFn = Callable[[PointResult, int, int], None]


def _canonical_row_bytes(payload: Dict[str, Any]) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


#: The row fields covered by the content address.  Provenance fields
#: (``completed_at``, ``elapsed_s``, ``study``) are stored but **not**
#: hashed: two runs producing the identical result must share one object,
#: whatever second they finished in, and re-running a point must not orphan
#: a near-identical object on every write.
_ADDRESSED_FIELDS = ("schema_version", "point_id", "config", "report")


def _address_for(payload: Dict[str, Any]) -> str:
    core = {field: payload.get(field) for field in _ADDRESSED_FIELDS}
    return hashlib.sha256(_canonical_row_bytes(core)).hexdigest()


def _json_file_bytes(payload: Dict[str, Any]) -> bytes:
    """The exact bytes a JSON artifact file holds for *payload*."""
    return json.dumps(payload, sort_keys=True, indent=1).encode("utf-8")


def _pid_alive(pid: Any) -> bool:
    """Whether *pid* names a live process (signal-0 probe)."""
    if not isinstance(pid, int) or isinstance(pid, bool) or pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


class Workspace:
    """A persistent experiment root: manifest + content-addressed row store.

    Parameters
    ----------
    root:
        Directory of the workspace.  Created (with a fresh manifest) when
        missing; an existing manifest is validated against
        :data:`WORKSPACE_SCHEMA_VERSION`.
    create:
        ``False`` refuses to conjure a workspace out of thin air: a missing
        root or manifest raises :class:`WorkspaceError` instead.  Read-only
        consumers (``study status``/``report``) use this so a mistyped path
        reads as "no workspace here", not as an empty one.
    recover:
        Open a workspace whose manifest is corrupt: the broken manifest is
        moved to ``quarantine/`` and a fresh one is rebuilt from the
        write-ahead journal.  Without it a corrupt manifest raises
        :class:`WorkspaceCorruptError`.  A manifest of a *newer schema* is
        never recovered over -- that is a version skew, not corruption.
    """

    def __init__(
        self,
        root: Union[str, Path],
        create: bool = True,
        recover: bool = False,
    ) -> None:
        self.root = Path(root)
        if not create and not (self.root / _MANIFEST_NAME).exists():
            raise WorkspaceError(
                f"no workspace at {self.root} (missing {_MANIFEST_NAME}); "
                "check the path, or run a study there first"
            )
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        try:
            self._manifest = self._load_manifest()
        except WorkspaceCorruptError as error:
            if not recover:
                raise
            self._quarantine(error.path)
            self._manifest = self._fresh_manifest()
            self._replay_journal(self._manifest)
            self._write_json_atomic(self.manifest_path, self._manifest)

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.root / _MANIFEST_NAME

    @property
    def journal_path(self) -> Path:
        return self.root / _JOURNAL_NAME

    @property
    def quarantine_dir(self) -> Path:
        return self.root / _QUARANTINE_DIR

    @property
    def lock_path(self) -> Path:
        return self.root / _LOCK_NAME

    def _fresh_manifest(self) -> Dict[str, Any]:
        return {
            "schema_version": WORKSPACE_SCHEMA_VERSION,
            "artifact_schema_version": REPORT_SCHEMA_VERSION,
            "studies": {},
        }

    def _load_manifest(self) -> Dict[str, Any]:
        path = self.manifest_path
        if not path.exists():
            manifest = self._fresh_manifest()
            # A torn save can lose the manifest outright (first save, or a
            # crash between unlink and rename on exotic filesystems); the
            # journal still holds every completed row, so replay before
            # persisting the rebuilt manifest.
            self._replay_journal(manifest)
            self._write_json_atomic(path, manifest)
            return manifest
        try:
            manifest = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise WorkspaceCorruptError(
                path, f"manifest is not valid JSON ({error})"
            ) from None
        except OSError as error:
            raise WorkspaceError(
                f"cannot read workspace manifest {path}: {error}"
            ) from None
        if not isinstance(manifest, dict):
            raise WorkspaceCorruptError(
                path, f"manifest must be a JSON object, found {type(manifest).__name__}"
            )
        version = manifest.get("schema_version")
        if version != WORKSPACE_SCHEMA_VERSION:
            raise WorkspaceError(
                f"workspace {self.root} has manifest schema {version!r}; this "
                f"version of repro reads schema {WORKSPACE_SCHEMA_VERSION} "
                "(use a fresh --workspace directory)"
            )
        studies = manifest.setdefault("studies", {})
        if not isinstance(studies, dict):
            raise WorkspaceCorruptError(
                path, f"'studies' must be an object, found {type(studies).__name__}"
            )
        for study_name, entry in studies.items():
            if not isinstance(entry, dict) or not isinstance(
                entry.get("points", {}), dict
            ):
                raise WorkspaceCorruptError(
                    path, f"study entry {study_name!r} is malformed"
                )
        # Crash recovery: journalled records a killed save never reached the
        # manifest are merged back in (persisted on the next save).
        self._replay_journal(manifest)
        return manifest

    def _write_json_atomic(
        self,
        path: Path,
        payload: Dict[str, Any],
        fault_site: Optional[str] = None,
        fault_key: Optional[str] = None,
    ) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        data = _json_file_bytes(payload)
        if fault_site is not None:
            data = faults.site(fault_site, key=fault_key, payload=data)
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}-{threading.get_ident()}.tmp"
        )
        fd = os.open(str(tmp), os.O_CREAT | os.O_WRONLY | os.O_TRUNC, 0o644)
        try:
            os.write(fd, data)
            os.fsync(fd)
        finally:
            os.close(fd)
        tmp.replace(path)

    def _save_manifest(self, merge: bool = True) -> None:
        # Merge-on-write: another process sharing this workspace may have
        # recorded points since this instance loaded the manifest.  Union
        # the on-disk records into ours (our in-memory records win per
        # point) before rewriting, so concurrent studies never erase each
        # other's completed work wholesale.  The remaining race window is
        # one point wide, and a lost record only costs a re-run -- the row
        # objects themselves are content-addressed and never overwritten.
        # ``merge=False`` is for :meth:`salvage`, which holds the advisory
        # lock and *deletes* dangling records: merging would resurrect
        # exactly what it dropped.
        if not merge:
            self._manifest["artifact_schema_version"] = REPORT_SCHEMA_VERSION
            self._write_json_atomic(
                self.manifest_path,
                self._manifest,
                fault_site="workspace.write_manifest",
                fault_key=str(self.root),
            )
            return
        try:
            on_disk = json.loads(self.manifest_path.read_text())
        except (OSError, json.JSONDecodeError):
            # Unreadable or torn on-disk manifest: nothing to merge; the
            # rewrite below replaces it with the good in-memory state.
            on_disk = None
        if (
            isinstance(on_disk, dict)
            and on_disk.get("schema_version") == WORKSPACE_SCHEMA_VERSION
        ):
            for study_name, entry in (on_disk.get("studies") or {}).items():
                if not isinstance(entry, dict):
                    continue
                ours = self._manifest["studies"].setdefault(
                    study_name, {"point_ids": [], "points": {}}
                )
                for point_id, record in (entry.get("points") or {}).items():
                    mine = ours["points"].get(point_id)
                    # Newest record wins (completed_at is an ISO timestamp,
                    # lexicographically ordered): a record another process
                    # wrote after this instance loaded the manifest must not
                    # be reverted by our stale in-memory copy.
                    if mine is None or (record.get("completed_at") or "") > (
                        mine.get("completed_at") or ""
                    ):
                        ours["points"][point_id] = record
                if not ours["point_ids"] and entry.get("point_ids"):
                    ours["point_ids"] = list(entry["point_ids"])
        # The artifact schema recorded is the one of the *newest* rows; old
        # rows stay addressable but fail the per-row schema check on load.
        self._manifest["artifact_schema_version"] = REPORT_SCHEMA_VERSION
        self._write_json_atomic(
            self.manifest_path,
            self._manifest,
            fault_site="workspace.write_manifest",
            fault_key=str(self.root),
        )

    def _study_entry(self, study_name: str) -> Dict[str, Any]:
        return self._manifest["studies"].setdefault(
            study_name, {"point_ids": [], "points": {}}
        )

    # ------------------------------------------------------------------
    # Write-ahead journal
    # ------------------------------------------------------------------
    def _append_journal(
        self, study_name: str, point_id: str, record: Dict[str, Any]
    ) -> None:
        """Append one completed-row record to the fsync'd journal.

        Called *before* the manifest rewrite: if a SIGKILL lands between the
        two, the record is replayed from here on the next load.  A torn tail
        line (crash mid-append) is skipped by the replayer; the row object
        itself is still on disk and :meth:`salvage` reattaches it.
        """
        line = (
            json.dumps(
                {"study": study_name, "point_id": point_id, "record": record},
                sort_keys=True,
            )
            + "\n"
        )
        data = faults.site(
            "workspace.journal.append", key=point_id, payload=line.encode("utf-8")
        )
        fd = os.open(
            str(self.journal_path), os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, data)
            os.fsync(fd)
        finally:
            os.close(fd)

    def _replay_journal(self, manifest: Dict[str, Any]) -> int:
        """Merge journalled records into *manifest*; returns entries applied.

        Tolerant by design: unparseable lines (torn appends) and malformed
        entries are skipped, and an entry older than the manifest's record
        is a no-op -- replay is idempotent.
        """
        path = self.journal_path
        if not path.exists():
            return 0
        try:
            text = path.read_text()
        except OSError:
            return 0
        applied = 0
        studies = manifest.setdefault("studies", {})
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn append; the row object survives for salvage()
            if not isinstance(entry, dict):
                continue
            study_name = entry.get("study")
            point_id = entry.get("point_id")
            record = entry.get("record")
            if not (
                isinstance(study_name, str)
                and isinstance(point_id, str)
                and isinstance(record, dict)
            ):
                continue
            target = studies.setdefault(study_name, {"point_ids": [], "points": {}})
            mine = target["points"].get(point_id)
            if mine == record:
                continue
            if mine is None or (record.get("completed_at") or "") > (
                mine.get("completed_at") or ""
            ):
                target["points"][point_id] = dict(record)
                applied += 1
        return applied

    def _compact_journal(self) -> None:
        """Drop the journal -- only after the manifest is known good."""
        try:
            if self.journal_path.exists():
                self.journal_path.unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Quarantine and advisory locking
    # ------------------------------------------------------------------
    def _quarantine(self, path: Union[str, Path]) -> Optional[str]:
        """Move a corrupt file into ``quarantine/``; returns the new path.

        Never deletes: the broken bytes are evidence (what corrupted them?)
        and quarantining is reversible.  Best-effort -- a failure to move
        leaves the file in place and returns ``None``.
        """
        path = Path(path)
        try:
            if not path.exists():
                return None
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
            target = self.quarantine_dir / f"{path.name}.{stamp}-{os.getpid()}"
            counter = 0
            while target.exists():
                counter += 1
                target = (
                    self.quarantine_dir
                    / f"{path.name}.{stamp}-{os.getpid()}.{counter}"
                )
            path.replace(target)
            return str(target)
        except OSError:
            return None

    @contextlib.contextmanager
    def _holding_lock(self, stale_after_s: float = STALE_LOCK_S) -> Iterator[None]:
        """Advisory exclusive lock over mutating workspace operations.

        ``O_CREAT|O_EXCL`` gives atomic acquisition; the lock file records
        the owning pid and creation time.  A lock whose pid is dead -- or
        older than *stale_after_s* even if a (reused) pid is alive -- is
        taken over.  A lock held by a live foreign process is waited on for
        up to ``LOCK_WAIT_S`` before raising, so concurrent writers
        serialize instead of failing.  Re-entry from the owning process is
        allowed (several Workspace instances in one process share the
        in-process ``_lock``).
        """
        acquired_here = False
        give_up_at: Optional[float] = None
        while True:
            try:
                fd = os.open(
                    str(self.lock_path), os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
                try:
                    os.write(
                        fd,
                        json.dumps(
                            {"pid": os.getpid(), "created_at": time.time()}
                        ).encode("utf-8"),
                    )
                finally:
                    os.close(fd)
                acquired_here = True
                break
            except FileExistsError:
                try:
                    info = json.loads(self.lock_path.read_text())
                except (OSError, json.JSONDecodeError):
                    info = {}
                pid = info.get("pid") if isinstance(info, dict) else None
                created = info.get("created_at", 0.0) if isinstance(info, dict) else 0.0
                if pid == os.getpid():
                    break  # our own process: share, don't deadlock
                stale = not _pid_alive(pid) or (
                    isinstance(created, (int, float))
                    and time.time() - created > stale_after_s
                )
                if not stale:
                    now = time.monotonic()
                    if give_up_at is None:
                        give_up_at = now + LOCK_WAIT_S
                    if now < give_up_at:
                        time.sleep(_LOCK_POLL_S)
                        continue
                    raise WorkspaceError(
                        f"workspace {self.root} is locked by running process "
                        f"{pid} ({self.lock_path}); wait for it, or delete "
                        "the lock file if you are sure it is abandoned"
                    ) from None
                # Stale-lock takeover: the unlink may race another taker;
                # both loop back to the atomic O_EXCL create and exactly one
                # wins.
                try:
                    self.lock_path.unlink()
                except OSError:
                    pass
        try:
            yield
        finally:
            if acquired_here:
                try:
                    self.lock_path.unlink()
                except OSError:
                    pass

    # ------------------------------------------------------------------
    # Content-addressed row store
    # ------------------------------------------------------------------
    def _object_path(self, address: str) -> Path:
        return self.root / _OBJECTS_DIR / address[:2] / f"{address}.json"

    @staticmethod
    def _object_is_intact(path: Path, address: str) -> bool:
        """Whether the object file exists and re-hashes to its address."""
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return False
        return _address_for(payload) == address

    @staticmethod
    def _readback_matches(path: Path, payload: Dict[str, Any]) -> bool:
        """Whether *path* holds exactly the canonical bytes of *payload*.

        Post-write verification only -- at load time the provenance fields
        of a row written by an earlier run are unknown, so intactness there
        is the addressed-hash check above.
        """
        try:
            return path.read_bytes() == _json_file_bytes(payload)
        except OSError:
            return False

    def store_row(
        self,
        study_name: str,
        point: StudyPoint,
        report: Dict[str, Any],
        elapsed_s: float = 0.0,
    ) -> str:
        """Persist one completed point; returns the row's content address.

        Write order is the crash-consistency contract: object first (content
        is king), then the journal entry (fsync'd -- the row is durable from
        here on), then the manifest rewrite.  A kill between any two steps
        loses nothing the next load or :meth:`salvage` cannot recover.
        """
        payload = {
            "schema_version": REPORT_SCHEMA_VERSION,
            "point_id": point.point_id,
            # The semantic view: execution-policy fields (retries/timeouts)
            # don't change the result, so they must not split rows.
            "config": point.config.semantic_dict(),
            "report": report,
            "elapsed_s": elapsed_s,
            # Provenance (not addressed): which study wrote the row, so
            # salvage() can reattach an orphaned object to its manifest.
            "study": study_name,
            # UTC, so the manifest merge's newest-wins comparison is a plain
            # lexicographic one (local %z timestamps mis-order across DST
            # transitions or machines in different timezones).
            "completed_at": time.strftime(
                "%Y-%m-%dT%H:%M:%S+0000", time.gmtime()
            ),
        }
        address = _address_for(payload)
        with self._lock:
            path = self._object_path(address)
            if not self._object_is_intact(path, address):
                # Also reached when the file exists but is corrupt or
                # tampered: rewriting heals the store instead of re-running
                # the point on every future resume.
                self._write_json_atomic(
                    path,
                    payload,
                    fault_site="workspace.write_object",
                    fault_key=address,
                )
                if not self._readback_matches(path, payload):
                    # Write-verify: the bytes on disk are not the bytes we
                    # meant to write (torn write, bit rot, full disk).  The
                    # address only covers the semantic fields, so this must
                    # compare the whole file -- corruption landing in a
                    # provenance field (study, elapsed_s, completed_at)
                    # re-hashes clean but still poisons salvage and the
                    # manifest merge ordering.  Recording a manifest entry
                    # for a corrupt object would fake completion, so
                    # quarantine and fail the persistence.
                    quarantined = self._quarantine(path)
                    raise WorkspaceError(
                        f"row object {address} failed post-write verification"
                        + (f" (quarantined to {quarantined})" if quarantined else "")
                    )
            record = {"object": address, "completed_at": payload["completed_at"]}
            try:
                self._append_journal(study_name, point.point_id, record)
            except Exception:  # noqa: BLE001 - journal is belt-and-braces
                # The journal only covers the window before the manifest
                # save below; failing to journal must not fail the store.
                pass
            entry = self._study_entry(study_name)
            entry["points"][point.point_id] = record
            # A point that now succeeded clears its previous error row.
            errors = entry.get("errors")
            if errors:
                errors.pop(point.point_id, None)
            self._save_manifest()
        return address

    def load_row(self, study_name: str, point: StudyPoint) -> Optional[Dict[str, Any]]:
        """Load the stored row of one point, or ``None`` when it must re-run.

        A row is only honoured when the manifest knows it, its object file
        exists, re-hashes to its address (content integrity over the
        addressed fields; provenance timestamps are exempt), carries the
        current report schema version and still describes the same config.
        A corrupt or unreadable object is moved to ``quarantine/`` (the
        point re-runs and the store heals on the next write).
        """
        with self._lock:
            entry = self._manifest["studies"].get(study_name)
            record = (entry or {}).get("points", {}).get(point.point_id)
        if not record:
            return None
        address = record.get("object")
        if not address:
            return None
        path = self._object_path(address)
        if not path.exists():
            return None
        try:
            raw = path.read_bytes()
            raw = faults.site("workspace.load_object", key=address, payload=raw)
            payload = json.loads(raw.decode("utf-8"))
        except Exception:  # noqa: BLE001 - any unreadable row means re-run
            # Reading a row is always optional (recompute is the universal
            # fallback), so containment beats propagation here -- injected
            # faults included: this *is* the handler they are aimed at.
            self._quarantine(path)
            return None
        if _address_for(payload) != address:
            self._quarantine(path)
            return None
        if payload.get("schema_version") != REPORT_SCHEMA_VERSION:
            return None
        if payload.get("point_id") != point.point_id:
            return None
        if payload.get("config") != point.config.semantic_dict():
            return None
        return payload

    def record_error(
        self,
        study_name: str,
        point: StudyPoint,
        error_code: str,
        message: str,
        chain: Optional[List[str]] = None,
        attempts: Optional[List[resilience.AttemptRecord]] = None,
    ) -> None:
        """Persist a structured error row for a failed point.

        Error rows live in the manifest (not the content-addressed store --
        they are transient state, cleared when the point later succeeds) and
        surface in :meth:`status` as ``failed`` points.
        """
        row = resilience.build_error_row(
            point.point_id, error_code, message, attempts or [], chain
        )
        row["recorded_at"] = time.strftime("%Y-%m-%dT%H:%M:%S+0000", time.gmtime())
        with self._lock:
            entry = self._study_entry(study_name)
            entry.setdefault("errors", {})[point.point_id] = row
            self._save_manifest()

    def gc(self, dry_run: bool = False) -> List[str]:
        """Delete row objects no manifest record references.

        Superseded rows (``--fresh`` re-runs, schema bumps, tamper-triggered
        recomputes) leave their old objects on disk; this prunes them and
        returns the removed addresses.  With ``dry_run=True`` nothing is
        deleted -- the return value lists what a real pass would collect.
        """
        with self._lock:
            referenced = {
                record.get("object")
                for entry in self._manifest["studies"].values()
                for record in entry.get("points", {}).values()
            }
            # Honour records another process wrote since this instance
            # loaded the manifest, not just the in-memory view.
            try:
                on_disk = json.loads(self.manifest_path.read_text())
            except (OSError, json.JSONDecodeError):
                on_disk = None
            if isinstance(on_disk, dict):
                referenced |= {
                    record.get("object")
                    for entry in (on_disk.get("studies") or {}).values()
                    for record in (entry.get("points") or {}).values()
                }
            removed: List[str] = []
            objects_dir = self.root / _OBJECTS_DIR
            if objects_dir.is_dir():
                for path in sorted(objects_dir.rglob("*.json")):
                    if path.stem in referenced:
                        continue
                    if dry_run:
                        removed.append(path.stem)
                        continue
                    try:
                        path.unlink()
                        removed.append(path.stem)
                    except OSError:
                        pass
            return removed

    def adopt_rows(self, study: Study) -> int:
        """Adopt stored rows another study already computed for shared points.

        Point ids derive from config content hashes, so identical configs in
        different studies share ids.  For every point of ``study`` with no
        record yet, this scans the other studies' manifest entries for a
        record of the same point id, validates the object through
        :meth:`load_row` under this study's entry, and keeps it if intact.
        Returns the number of rows adopted.  This is the cross-study half of
        the server's dedup contract: a job never recomputes a config any
        previous job (whatever its study name) already ran.
        """
        candidates: List[StudyPoint] = []
        with self._lock:
            studies = self._manifest["studies"]
            own = (studies.get(study.name) or {}).get("points", {})
            for point in study.points():
                if point.point_id in own:
                    continue
                for other_name, other_entry in studies.items():
                    if other_name == study.name:
                        continue
                    record = other_entry.get("points", {}).get(point.point_id)
                    if not record or not record.get("object"):
                        continue
                    entry = self._study_entry(study.name)
                    entry["points"][point.point_id] = dict(record)
                    own = entry["points"]
                    candidates.append(point)
                    break
        # Validate outside the manifest scan: load_row re-hashes the object
        # (quarantining corruption), so a candidate that fails is dropped
        # again and the point re-runs normally.
        adopted = 0
        for point in candidates:
            if self.load_row(study.name, point) is not None:
                adopted += 1
                continue
            with self._lock:
                entry = self._manifest["studies"].get(study.name)
                if entry:
                    entry.get("points", {}).pop(point.point_id, None)
        if candidates:
            with self._lock:
                self._save_manifest()
        return adopted

    # ------------------------------------------------------------------
    # Salvage
    # ------------------------------------------------------------------
    def salvage(self) -> SalvageReport:
        """Walk the store, repair the manifest, compact the journal.

        Four repairs, in order:

        1. replay any journalled records the manifest is missing;
        2. quarantine every object file that fails to parse or re-hash;
        3. drop manifest records whose object is missing, quarantined or
           describes a different point (dangling records force re-runs);
        4. reattach intact orphan objects (rows whose manifest entry was
           lost to a crash) to the study named in their provenance field.

        Idempotent: running salvage twice in a row returns a ``clean``
        report the second time.
        """
        with self._holding_lock(), self._lock:
            report = SalvageReport()
            report.journal_replayed = self._replay_journal(self._manifest)

            intact: Dict[str, Dict[str, Any]] = {}
            objects_dir = self.root / _OBJECTS_DIR
            if objects_dir.is_dir():
                for path in sorted(objects_dir.rglob("*.json")):
                    address = path.stem
                    try:
                        payload = json.loads(path.read_bytes().decode("utf-8"))
                    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                        payload = None
                    if payload is None or _address_for(payload) != address:
                        moved = self._quarantine(path)
                        if moved is not None:
                            report.quarantined.append(moved)
                        continue
                    intact[address] = payload

            referenced: set = set()
            for entry in self._manifest["studies"].values():
                points = entry.get("points", {})
                for point_id in list(points):
                    record = points[point_id]
                    address = record.get("object")
                    payload = intact.get(address)
                    if payload is None or payload.get("point_id") != point_id:
                        del points[point_id]
                        report.dropped_records += 1
                    else:
                        referenced.add(address)

            for address, payload in intact.items():
                if address in referenced:
                    continue
                study_name = payload.get("study")
                point_id = payload.get("point_id")
                if not isinstance(study_name, str) or not isinstance(point_id, str):
                    continue  # pre-provenance row: leave for gc()
                if payload.get("schema_version") != REPORT_SCHEMA_VERSION:
                    continue
                entry = self._study_entry(study_name)
                if entry["points"].get(point_id) is None:
                    entry["points"][point_id] = {
                        "object": address,
                        "completed_at": payload.get("completed_at"),
                    }
                    report.reattached += 1

            self._save_manifest(merge=False)
            self._compact_journal()
            return report

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def studies(self) -> List[str]:
        """Names of the studies this workspace has rows for."""
        return sorted(self._manifest["studies"])

    def status(self, study: Study) -> Dict[str, Any]:
        """Per-point completion state of a study (JSON-serializable).

        Failed points (error rows from exhausted retries) report status
        ``"failed"`` with their ``RUN0xx`` code; they still count as
        ``missing`` (a resume re-runs them).
        """
        points = study.points()
        with self._lock:
            entry = self._manifest["studies"].get(study.name) or {}
            errors = dict(entry.get("errors") or {})
        rows = []
        completed = 0
        failed = 0
        for point in points:
            payload = self.load_row(study.name, point)
            done = payload is not None
            completed += done
            error_row = None if done else errors.get(point.point_id)
            if error_row is not None:
                failed += 1
            rows.append(
                {
                    "point_id": point.point_id,
                    "workload": point.config.workload,
                    "mode": point.config.mode.value,
                    "latency": point.config.latency,
                    "status": "completed"
                    if done
                    else ("failed" if error_row is not None else "missing"),
                    "completed_at": payload.get("completed_at") if done else None,
                    "error_code": (error_row or {}).get("error_code"),
                }
            )
        return {
            "study": study.name,
            "workspace": str(self.root),
            "total": len(points),
            "completed": completed,
            "missing": len(points) - completed,
            "failed": failed,
            "points": rows,
        }

    def reports(
        self, study: Study, allow_partial: bool = False
    ) -> List[Dict[str, Any]]:
        """Stored reports in point order, with **zero recomputation**.

        Raises :class:`WorkspaceError` naming the missing points unless
        ``allow_partial`` (then missing points are simply omitted).
        """
        reports: List[Dict[str, Any]] = []
        missing: List[str] = []
        for point in study.points():
            payload = self.load_row(study.name, point)
            if payload is None:
                missing.append(point.point_id)
            else:
                reports.append(payload["report"])
        if missing and not allow_partial:
            raise WorkspaceError(
                f"study {study.name!r} has {len(missing)} unfinished point(s) "
                f"in workspace {self.root} ({', '.join(missing[:5])}"
                f"{', ...' if len(missing) > 5 else ''}); run "
                f"`repro study run {study.name}` to complete it"
            )
        return reports

    def rows(self, study: Study) -> List[Dict[str, Any]]:
        """The study's presentation rows from stored reports only."""
        return study.rows(self.reports(study))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_study(
        self,
        study: Study,
        engine: Optional[SweepEngine] = None,
        resume: bool = True,
        max_workers: Optional[int] = None,
        executor: Optional[str] = None,
        progress: Optional[StudyProgressFn] = None,
        max_points: Optional[int] = None,
        cancel_event: Optional[threading.Event] = None,
    ) -> StudyRunResult:
        """Run a study against this workspace, resuming from stored rows.

        Parameters
        ----------
        engine:
            Sweep engine for the missing points.  Defaults to a fresh engine
            honouring ``max_workers``/``executor``, the study's
            ``stop_after`` and the study's retry policy; a caller-provided
            engine must match the study's ``stop_after`` (different
            truncations produce different rows).
        resume:
            Load completed points from the store (the default).  ``False``
            recomputes every point (stored rows are overwritten).
        progress:
            Called once per settled point -- loaded points first (in study
            order), then executed points in completion order -- with the
            :class:`PointResult` and running ``(done, total)`` counters.
        max_points:
            Cooperatively cancel the run after this many *executed* points
            (loaded points don't count).  The interruption hook: remaining
            points stay missing, and a later ``resume`` run picks them up.
        cancel_event:
            External cooperative-cancel signal (e.g. the server's
            ``DELETE /v1/jobs/{id}``).  Checked before the pending points
            are submitted and after every settled outcome; a set event
            cancels the queued remainder exactly like ``max_points`` --
            completed rows stay persisted and a later resume finishes the
            study.

        The run holds the workspace's advisory lock.  Failed points are
        recorded as error rows (unless their policy says ``skip``) and do
        not abort the run unless their policy says ``raise``.  A
        :class:`KeyboardInterrupt` mid-run flushes in-flight completed rows
        to the store before propagating, so the interrupted study resumes
        with zero lost work.
        """
        points = study.points()
        if engine is None:
            if executor is None:
                executor = "thread" if (max_workers or 1) > 1 else "serial"
            engine = SweepEngine(
                pipeline=Pipeline(),
                max_workers=max_workers,
                executor=executor,
                stop_after=study.stop_after,
                retry=study.retry,
            )
        elif engine.stop_after != study.stop_after:
            raise WorkspaceError(
                f"engine stop_after={engine.stop_after!r} does not match "
                f"study {study.name!r} stop_after={study.stop_after!r}"
            )
        if max_points is not None and max_points < 1:
            raise ValueError("max_points must be >= 1 when given")

        with self._holding_lock():
            with self._lock:
                entry = self._study_entry(study.name)
                entry["point_ids"] = [point.point_id for point in points]
                try:
                    self._save_manifest()
                except Exception:  # noqa: BLE001
                    # The run-start save only records the point-id order
                    # (presentation state).  A failing manifest here must
                    # degrade, not kill the run: the per-point saves below
                    # retry it with rows that actually matter attached.
                    pass

            results: Dict[int, PointResult] = {}
            done = 0

            def settle(result: PointResult) -> None:
                nonlocal done
                results[result.point.index] = result
                done += 1
                if progress is not None:
                    progress(result, done, len(points))

            pending: List[StudyPoint] = []
            for point in points:
                payload = self.load_row(study.name, point) if resume else None
                if payload is not None:
                    settle(
                        PointResult(
                            point=point,
                            source="store",
                            report=payload["report"],
                            elapsed_s=float(payload.get("elapsed_s", 0.0)),
                        )
                    )
                else:
                    pending.append(point)

            if pending and cancel_event is not None and cancel_event.is_set():
                # Cancelled before any work was submitted: settle the
                # remainder as cancelled without spinning up the engine.
                for point in pending:
                    settle(PointResult(point=point, source="cancelled"))
                pending = []

            if pending:
                index_to_point = {
                    submit_index: point
                    for submit_index, point in enumerate(pending)
                }
                run = engine.submit([point.config for point in pending])
                stream = run.as_completed()
                executed = 0
                try:
                    for outcome in stream:
                        point = index_to_point[outcome.index]
                        settle(self._settle_outcome(study, point, outcome, engine))
                        if cancel_event is not None and cancel_event.is_set():
                            run.cancel()
                        if outcome.cancelled:
                            continue
                        executed += 1
                        if max_points is not None and executed >= max_points:
                            run.cancel()
                except KeyboardInterrupt:
                    # Flush before propagating: cancel queued points, let
                    # in-flight ones finish and persist their rows, then
                    # hand the interrupt up (the CLI turns it into exit
                    # code 130 plus a resume hint).  A second interrupt
                    # aborts the flush.
                    run.cancel()
                    try:
                        for outcome in stream:
                            point = index_to_point[outcome.index]
                            settle(
                                self._settle_outcome(study, point, outcome, engine)
                            )
                    except (KeyboardInterrupt, RuntimeError):
                        pass
                    raise

            with self._lock:
                # The manifest is now complete and durable; the journal has
                # nothing left to cover.  Best-effort: a failure here costs
                # nothing (the journal just survives to the next compaction).
                try:
                    self._save_manifest()
                    self._compact_journal()
                except Exception:  # noqa: BLE001
                    pass

        return StudyRunResult(
            study=study,
            results=[
                results[index] for index in range(len(points)) if index in results
            ],
        )

    def _settle_outcome(
        self,
        study: Study,
        point: StudyPoint,
        outcome: SweepOutcome,
        engine: SweepEngine,
    ) -> PointResult:
        if outcome.cancelled:
            return PointResult(point=point, source="cancelled")
        if not outcome.ok or outcome.report is None:
            message = outcome.error or "point completed without a report"
            code = outcome.error_code or "RUN001"
            policy = engine.policy_for(point.config)
            if policy.on_error != "skip":
                try:
                    self.record_error(
                        study.name,
                        point,
                        code,
                        message,
                        chain=outcome.error_chain,
                        attempts=outcome.attempts,
                    )
                except Exception:  # noqa: BLE001 - error rows are best-effort
                    # Failing to *record* a failure must not mask the
                    # original failure (or take the whole run down with it).
                    pass
            return PointResult(
                point=point,
                source="error",
                error=message,
                error_code=code,
                elapsed_s=outcome.elapsed_s,
            )
        try:
            self.store_row(
                study.name, point, outcome.report, elapsed_s=outcome.elapsed_s
            )
        except Exception as error:  # noqa: BLE001 - persistence is a failure class
            message = (
                "row persistence failed: " + resilience.format_exception(error)
            )
            try:
                self.record_error(
                    study.name,
                    point,
                    "RUN005",
                    message,
                    chain=resilience.exception_chain(error),
                    attempts=outcome.attempts,
                )
            except Exception:  # noqa: BLE001
                pass
            return PointResult(
                point=point,
                source="error",
                error=message,
                error_code="RUN005",
                elapsed_s=outcome.elapsed_s,
            )
        return PointResult(
            point=point,
            source="run",
            report=outcome.report,
            elapsed_s=outcome.elapsed_s,
        )
