"""``python -m repro`` -- the command-line front end of the flow pipeline.

Eleven subcommands, all driving the same :mod:`repro.api` objects a Python
caller would use:

* ``repro list-workloads``          -- the registered benchmark specifications;
* ``repro run <workload>``          -- one synthesis run, summary or JSON;
* ``repro emit <workload>``         -- lower the allocated datapath to
  structural RTL: print the emission statistics, optionally write
  synthesizable Verilog (``--verilog``) and co-simulate the emitted design
  cycle-accurately against the batch-interpreter oracle (``--check``);
* ``repro check <workload>``        -- static verification: run the
  independent checkers of :mod:`repro.check` over every IR level the flow
  produces (text or ``--json`` diagnostics; ``--mutate`` runs the mutation
  self-test of the checkers instead);
* ``repro sweep <workload>``        -- the Fig. 4 latency sweep, optionally
  parallel (``--workers``/``--executor``);
* ``repro table table1|table2|table3`` -- reproduce a table of the paper;
* ``repro study run|status|report|salvage|list|gc`` -- persistent, resumable
  experiment matrices: run a named :class:`~repro.api.study.Study` against an
  on-disk :class:`~repro.api.workspace.Workspace` (with per-point retries,
  timeouts and structured error rows via ``--retries``/``--timeout``/
  ``--on-error``), inspect its completion state, regenerate its rows with
  zero recomputation, repair a crashed workspace (``salvage``) or prune
  superseded result objects (``gc --dry-run``);
* ``repro serve``                   -- the synthesis-as-a-service HTTP API
  (:mod:`repro.server`): a threaded JSON server over a shared workspace,
  deduplicating identical configs across jobs and clients;
* ``repro submit`` / ``repro poll`` -- client verbs against a running
  server (built-in study names or ``@file.json`` inline descriptions);
* ``repro perf``                    -- the performance harness: time the
  pipeline stages and the Fig. 4 sweeps, refresh ``BENCH_sched.json`` and
  optionally fail on regressions (``--max-regression``).

Examples::

    python -m repro run motivational --latency 3 --mode fragmented
    python -m repro emit motivational --check
    python -m repro check motivational --json
    python -m repro check --mutate
    python -m repro emit adpcm_iaq --verilog adpcm_iaq.v --check
    python -m repro sweep chain:3:16 --latencies 3:15 --workers 4
    python -m repro table table2 --workers 4
    python -m repro study run table2 --workspace .repro-ws --workers 4
    python -m repro study report table2 --workspace .repro-ws
    python -m repro list-workloads
    python -m repro perf --quick --max-regression 2.0
    python -m repro serve --workspace .repro-ws --port 8321 --workers 2
    python -m repro submit table1 --url http://127.0.0.1:8321 --wait
    python -m repro study gc --workspace .repro-ws --dry-run
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from ..techlib.adders import AdderStyle
from ..techlib.multipliers import MultiplierStyle
from .cache import ResultCache
from .config import ConfigError, FlowConfig, available_workloads
from .pipeline import Pipeline
from .resilience import ON_ERROR_CHOICES, RetryPolicy
from .sweep import DEFAULT_SWEEP_CHUNK, SweepEngine, SweepPointError


def _parse_latencies(text: str) -> List[int]:
    """Parse ``"3:15"``, ``"3:15:2"`` (inclusive ranges) or ``"3,5,7"``."""
    text = text.strip()
    try:
        if ":" in text:
            parts = [int(part) for part in text.split(":")]
            if len(parts) == 2:
                start, stop = parts
                step = 1
            elif len(parts) == 3:
                start, stop, step = parts
            else:
                raise ValueError
            if step < 1 or stop < start:
                raise ValueError
            return list(range(start, stop + 1, step))
        return [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"malformed latency list {text!r}: expected start:stop[:step] or "
            "a comma-separated list of integers"
        ) from None


def _add_library_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--adder-style",
        choices=[style.value for style in AdderStyle],
        default=AdderStyle.RIPPLE_CARRY.value,
        help="adder architecture of the technology library",
    )
    parser.add_argument(
        "--multiplier-style",
        choices=[style.value for style in MultiplierStyle],
        default=MultiplierStyle.ARRAY.value,
        help="multiplier architecture of the technology library",
    )


def _add_cache_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persist run reports below this directory and reuse them",
    )


def _add_resilience_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="retry each failing point up to N extra times, with "
        "deterministic exponential backoff (default: no retries)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-point wall-clock budget; an overrunning point is stopped "
        "and charged a RUN002 attempt (default: no timeout)",
    )
    parser.add_argument(
        "--on-error",
        choices=ON_ERROR_CHOICES,
        default=None,
        help="disposition of a point that exhausts its attempts: 'record' a "
        "structured error row and continue (default), 'skip' it silently, "
        "or 'raise' and abort the run",
    )


def _retry_policy_from_args(args: argparse.Namespace) -> Optional[RetryPolicy]:
    if args.retries is None and args.timeout is None and args.on_error is None:
        return None
    if args.retries is not None and args.retries < 0:
        raise ConfigError(f"--retries must be >= 0, got {args.retries}")
    return RetryPolicy(
        max_attempts=(args.retries or 0) + 1,
        timeout_s=args.timeout,
        on_error=args.on_error or "record",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ruiz-Sautua et al. (DATE 2005) behavioural-transformation "
        "flow: run, sweep and tabulate synthesis experiments.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    # -- run -----------------------------------------------------------
    run_parser = subparsers.add_parser(
        "run", help="synthesize one workload at one latency"
    )
    run_parser.add_argument(
        "workload",
        nargs="?",
        default=None,
        help="workload name (see list-workloads) or chain:<n>:<w> / tree:<n>:<w>",
    )
    run_parser.add_argument(
        "--spec-file",
        default=None,
        help="read the specification from a file in the textual language "
        "instead of naming a workload",
    )
    run_parser.add_argument("--latency", "-l", type=int, required=True)
    run_parser.add_argument(
        "--mode",
        "-m",
        default="conventional",
        help="flow mode: conventional, fragmented or blc",
    )
    run_parser.add_argument(
        "--chained-bits",
        type=int,
        default=None,
        help="explicit per-cycle chained-bit budget (fragmented flow)",
    )
    run_parser.add_argument(
        "--no-balance",
        action="store_true",
        help="disable fragment balancing (pure ASAP placement)",
    )
    run_parser.add_argument(
        "--policy",
        choices=("paper", "search"),
        default=None,
        help="scheduler policy: 'paper' replays the deterministic flow "
        "bit-identically, 'search' runs beam search + multi-start priority "
        "draws (default: paper; implied by the flags below)",
    )
    run_parser.add_argument(
        "--beam-width",
        type=int,
        default=None,
        metavar="K",
        help="beam width of the search scheduler (implies --policy search)",
    )
    run_parser.add_argument(
        "--starts",
        type=int,
        default=None,
        metavar="N",
        help="number of seeded priority-weight draws the search scheduler "
        "tries (implies --policy search)",
    )
    run_parser.add_argument(
        "--policy-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="master seed of the search scheduler's weight draws "
        "(default: 2005; implies --policy search)",
    )
    run_parser.add_argument(
        "--check-equivalence",
        action="store_true",
        help="co-simulate the transformed specification against the original",
    )
    run_parser.add_argument(
        "--equivalence-vectors",
        type=int,
        default=50,
        help="random stimulus vectors drawn by --check-equivalence "
        "(default: 50; corner vectors are always included)",
    )
    run_parser.add_argument(
        "--equivalence-seed",
        type=int,
        default=2005,
        help="stimulus seed of --check-equivalence (default: 2005); part of "
        "the config's content hash, so different seeds never share a cache "
        "entry",
    )
    run_parser.add_argument(
        "--equivalence-chunk-lanes",
        type=int,
        default=None,
        help="lane count of one batch-engine equivalence chunk (default: the "
        "engine default; any positive value yields the same report)",
    )
    run_parser.add_argument(
        "--engine",
        choices=("auto", "bigint", "numpy", "legacy"),
        default=None,
        help="bit-plane evaluation core used by the run's simulations "
        "(default: auto; every choice is bit-identical)",
    )
    run_parser.add_argument(
        "--stop-after",
        default=None,
        help="stop the pipeline after this pass (parse, validate, transform, "
        "schedule, time, allocate, emit, report)",
    )
    run_parser.add_argument("--json", action="store_true", help="print the JSON report")
    _add_library_options(run_parser)
    _add_cache_option(run_parser)

    # -- emit ----------------------------------------------------------
    emit_parser = subparsers.add_parser(
        "emit",
        help="lower the allocated datapath to structural RTL "
        "(Verilog + cycle-accurate co-simulation)",
    )
    emit_parser.add_argument(
        "workload",
        help="workload name (see list-workloads) or chain:<n>:<w> / tree:<n>:<w>",
    )
    emit_parser.add_argument(
        "--latency",
        "-l",
        type=int,
        default=None,
        help="circuit latency in cycles (default: the latency the paper's "
        "tables use for the workload, 3 otherwise)",
    )
    emit_parser.add_argument(
        "--mode",
        "-m",
        default="fragmented",
        help="flow mode: conventional, fragmented or blc (default: fragmented)",
    )
    emit_parser.add_argument(
        "--verilog",
        default=None,
        metavar="PATH",
        help="write the synthesizable Verilog rendering to this file",
    )
    emit_parser.add_argument(
        "--check",
        action="store_true",
        help="co-simulate the emitted design against the batch-interpreter "
        "oracle (corner + random vectors) and fail on any mismatch",
    )
    emit_parser.add_argument(
        "--equivalence-vectors",
        type=int,
        default=50,
        help="random stimulus vectors drawn by --check (default: 50; corner "
        "vectors are always included)",
    )
    emit_parser.add_argument(
        "--equivalence-seed",
        type=int,
        default=2005,
        help="stimulus seed of --check (default: 2005)",
    )
    emit_parser.add_argument("--json", action="store_true")
    _add_library_options(emit_parser)

    # -- check ---------------------------------------------------------
    check_parser = subparsers.add_parser(
        "check",
        help="statically verify every IR level the flow produces "
        "(independent checkers, stable diagnostic codes)",
    )
    check_parser.add_argument(
        "workload",
        nargs="?",
        default=None,
        help="workload name (see list-workloads) or chain:<n>:<w> / "
        "tree:<n>:<w>; optional with --mutate",
    )
    check_parser.add_argument(
        "--latency",
        "-l",
        type=int,
        default=None,
        help="circuit latency in cycles (default: the latency the paper's "
        "tables use for the workload, 3 otherwise)",
    )
    check_parser.add_argument(
        "--mode",
        "-m",
        default="fragmented",
        help="flow mode: conventional, fragmented or blc (default: fragmented)",
    )
    check_parser.add_argument(
        "--level",
        choices=("spec", "schedule", "allocation", "netlist"),
        default=None,
        help="deepest IR level to check (default: every level, including "
        "the emitted netlist)",
    )
    check_parser.add_argument(
        "--mutate",
        action="store_true",
        help="run the mutation self-test instead: apply one seeded "
        "corruption per diagnostic code and verify each is caught",
    )
    check_parser.add_argument(
        "--mutation-seed",
        type=int,
        default=2005,
        help="seed of the --mutate corruption picks (default: 2005)",
    )
    check_parser.add_argument("--json", action="store_true")
    _add_library_options(check_parser)

    # -- sweep ---------------------------------------------------------
    sweep_parser = subparsers.add_parser(
        "sweep", help="Fig. 4 style latency sweep of one workload"
    )
    sweep_parser.add_argument("workload")
    sweep_parser.add_argument(
        "--latencies",
        type=_parse_latencies,
        default=list(range(3, 16)),
        help="latency axis: start:stop[:step] or comma list (default 3:15)",
    )
    sweep_parser.add_argument(
        "--workers", "-j", type=int, default=None, help="parallel worker count"
    )
    sweep_parser.add_argument(
        "--executor",
        choices=("serial", "thread", "process"),
        default=None,
        help="worker pool type (default: serial, or thread when --workers > 1)",
    )
    sweep_parser.add_argument(
        "--chunk",
        type=int,
        default=None,
        help="points per batched sweep task: serial sweeps run each chunk "
        "GC-paused, the process executor ships one task per chunk "
        "(default: 8 for serial sweeps, per-point otherwise; results are "
        "identical for any chunk size)",
    )
    sweep_parser.add_argument("--json", action="store_true")
    _add_library_options(sweep_parser)
    _add_cache_option(sweep_parser)
    _add_resilience_options(sweep_parser)

    # -- table ---------------------------------------------------------
    table_parser = subparsers.add_parser(
        "table", help="reproduce a results table of the paper"
    )
    table_parser.add_argument(
        "which",
        choices=("table1", "table2", "table3"),
        help="table1: motivational example; table2: classical HLS "
        "benchmarks; table3: ADPCM decoder modules",
    )
    table_parser.add_argument("--workers", "-j", type=int, default=None)
    table_parser.add_argument("--json", action="store_true")
    _add_cache_option(table_parser)

    # -- study ---------------------------------------------------------
    study_parser = subparsers.add_parser(
        "study",
        help="persistent, resumable experiment matrices over a workspace",
    )
    study_sub = study_parser.add_subparsers(dest="study_command", required=True)

    study_run = study_sub.add_parser(
        "run", help="run a named study, resuming from the workspace store"
    )
    study_run.add_argument("study", help="study name (see `repro study list`)")
    study_run.add_argument(
        "--workspace",
        "-w",
        required=True,
        help="workspace directory (created on demand; holds the manifest "
        "and the content-addressed result rows)",
    )
    study_run.add_argument(
        "--resume",
        action="store_true",
        default=True,
        help="load completed points from the workspace and run only the "
        "missing ones (the default; spell it out in scripts for clarity)",
    )
    study_run.add_argument(
        "--fresh",
        action="store_true",
        help="ignore stored rows and recompute every point (rows are "
        "rewritten as points complete)",
    )
    study_run.add_argument(
        "--max-points",
        type=int,
        default=None,
        help="cooperatively cancel the run after this many executed points "
        "(loaded points don't count) -- simulates an interruption; a later "
        "--resume run picks up the remaining points",
    )
    study_run.add_argument(
        "--workers", "-j", type=int, default=None, help="parallel worker count"
    )
    study_run.add_argument(
        "--executor",
        choices=("serial", "thread", "process"),
        default=None,
        help="worker pool type (default: serial, or thread when --workers > 1)",
    )
    study_run.add_argument(
        "--quiet", action="store_true", help="suppress per-point progress lines"
    )
    study_run.add_argument("--json", action="store_true")
    _add_resilience_options(study_run)

    study_status = study_sub.add_parser(
        "status", help="per-point completion state of a study in a workspace"
    )
    study_status.add_argument("study")
    study_status.add_argument("--workspace", "-w", required=True)
    study_status.add_argument("--json", action="store_true")

    study_report = study_sub.add_parser(
        "report",
        help="regenerate a study's rows from stored results only "
        "(zero recomputation)",
    )
    study_report.add_argument("study")
    study_report.add_argument("--workspace", "-w", required=True)
    study_report.add_argument(
        "--allow-partial",
        action="store_true",
        help="tabulate whatever is stored instead of failing on missing points",
    )
    study_report.add_argument("--json", action="store_true")

    study_salvage = study_sub.add_parser(
        "salvage",
        help="repair a workspace after a crash: quarantine corrupt files, "
        "rebuild the manifest from the write-ahead journal, reattach "
        "orphaned result rows",
    )
    study_salvage.add_argument("--workspace", "-w", required=True)
    study_salvage.add_argument("--json", action="store_true")

    study_list = study_sub.add_parser(
        "list", help="list the built-in study declarations"
    )
    study_list.add_argument("--json", action="store_true")

    study_gc = study_sub.add_parser(
        "gc",
        help="delete stored result objects no manifest record references "
        "(superseded rows from --fresh re-runs, schema bumps, recomputes)",
    )
    study_gc.add_argument("--workspace", "-w", required=True)
    study_gc.add_argument(
        "--dry-run",
        action="store_true",
        help="list what would be collected without deleting anything",
    )
    study_gc.add_argument("--json", action="store_true")

    # -- serve ---------------------------------------------------------
    serve_parser = subparsers.add_parser(
        "serve",
        help="run the synthesis-as-a-service HTTP API over a shared workspace",
    )
    serve_parser.add_argument(
        "--workspace",
        "-w",
        required=True,
        help="workspace directory every job persists through (created on "
        "demand; shared rows dedupe across jobs and clients)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port",
        type=int,
        default=8321,
        help="listen port (0 binds an ephemeral port; see --ready-file)",
    )
    serve_parser.add_argument(
        "--workers",
        "-j",
        type=int,
        default=2,
        help="concurrent job workers (each drives one study at a time)",
    )
    serve_parser.add_argument(
        "--queue-size",
        type=int,
        default=64,
        help="bounded job queue depth; a full queue rejects with SRV005",
    )
    serve_parser.add_argument(
        "--point-workers",
        type=int,
        default=None,
        help="parallel point workers per job (default: serial per job)",
    )
    serve_parser.add_argument(
        "--ready-file",
        default=None,
        help="write 'host port' to this file once the socket is bound "
        "(scripts poll it instead of racing the boot; pairs with --port 0)",
    )

    # -- submit / poll -------------------------------------------------
    submit_parser = subparsers.add_parser(
        "submit",
        help="submit a study to a running repro server "
        "(built-in name, or @file.json with an inline study description)",
    )
    submit_parser.add_argument(
        "study",
        help="built-in study name, or @path/to/study.json for an inline "
        "Study description (the Study.to_dict() form)",
    )
    submit_parser.add_argument(
        "--url", default="http://127.0.0.1:8321", help="server base URL"
    )
    submit_parser.add_argument(
        "--wait",
        action="store_true",
        help="poll the job to a terminal state and print the final status",
    )
    submit_parser.add_argument(
        "--timeout", type=float, default=300.0, help="--wait deadline in seconds"
    )
    submit_parser.add_argument("--json", action="store_true")

    poll_parser = subparsers.add_parser(
        "poll", help="poll a job on a running repro server"
    )
    poll_parser.add_argument("job_id")
    poll_parser.add_argument(
        "--url", default="http://127.0.0.1:8321", help="server base URL"
    )
    poll_parser.add_argument(
        "--wait",
        action="store_true",
        help="block until the job reaches a terminal state",
    )
    poll_parser.add_argument(
        "--timeout", type=float, default=300.0, help="--wait deadline in seconds"
    )
    poll_parser.add_argument(
        "--report",
        action="store_true",
        help="fetch the result rows once the job is done",
    )
    poll_parser.add_argument("--json", action="store_true")

    # -- list-workloads ------------------------------------------------
    list_parser = subparsers.add_parser(
        "list-workloads", help="list the registered benchmark specifications"
    )
    list_parser.add_argument("--json", action="store_true")

    # -- perf ----------------------------------------------------------
    perf_parser = subparsers.add_parser(
        "perf",
        help="run the performance harness and refresh BENCH_sched.json",
    )
    perf_parser.add_argument(
        "--quick",
        action="store_true",
        help="measure the reduced CI-smoke benchmark set",
    )
    perf_parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="best-of-N repetition count (default: 3, or 2 with --quick)",
    )
    perf_parser.add_argument(
        "--output",
        default="BENCH_sched.json",
        help="bench file to write (default: BENCH_sched.json in the CWD)",
    )
    perf_parser.add_argument(
        "--baseline",
        default=None,
        help="compare (and gate) against the measurements recorded in this "
        "bench file, without touching the anchor stored in --output",
    )
    perf_parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="re-anchor the baseline to this run's measurements",
    )
    perf_parser.add_argument(
        "--max-regression",
        type=float,
        default=None,
        help="fail (exit 1) when any benchmark is more than this factor "
        "slower than the reference: --baseline's measurements when given, "
        "otherwise the last measurement recorded in --output (e.g. 2.0; "
        "default: report only)",
    )
    perf_parser.add_argument(
        "--min-speedup",
        action="append",
        default=None,
        metavar="KEY=FACTOR",
        help="fail (exit 1) unless the named benchmark is at least FACTOR "
        "times faster than the anchor baseline (e.g. "
        "adpcm_iaq/allocate=2.0 or verify/adpcm_iaq/equivalence_s=2.0); "
        "repeatable",
    )
    perf_parser.add_argument(
        "--label",
        default=None,
        help="tag recorded in this run's history entry (e.g. a PR number)",
    )
    perf_parser.add_argument(
        "--profile",
        action="store_true",
        help="run each harness section under cProfile and print its top-20 "
        "cumulative-time functions (measurement timings are still reported "
        "but distorted by profiler overhead; not written to the bench file)",
    )
    perf_parser.add_argument(
        "--no-write", action="store_true", help="measure and report without writing"
    )
    perf_parser.add_argument("--json", action="store_true")

    return parser


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------
def _make_pipeline(cache_dir: Optional[str]) -> Pipeline:
    cache = ResultCache(directory=cache_dir) if cache_dir else ResultCache()
    return Pipeline(cache=cache)


def _print_report(report: Dict[str, Any], as_json: bool) -> None:
    if as_json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        width = max(len(key) for key in report)
        for key, value in report.items():
            if isinstance(value, float):
                value = f"{value:.2f}"
            print(f"  {key.ljust(width)} : {value}")


def _scheduler_from_args(args: argparse.Namespace) -> Any:
    """Build the nested scheduler-policy dict from the ``repro run`` flags.

    Returns ``None`` when no policy flag was given (the config defaults to the
    paper policy), a dict for :class:`FlowConfig`'s ``scheduler`` field when
    one was, or an error string when the combination is contradictory.  Any
    search knob implies ``--policy search``; the flat ``--chained-bits`` /
    ``--no-balance`` flags keep flowing through the mirror fields.
    """
    knobs = {
        "beam_width": ("--beam-width", args.beam_width),
        "starts": ("--starts", args.starts),
        "seed": ("--policy-seed", args.policy_seed),
    }
    given = {key: value for key, (_flag, value) in knobs.items() if value is not None}
    if args.policy is None and not given:
        return None
    if args.policy == "paper" and given:
        flags = ", ".join(knobs[key][0] for key in given)
        return f"--policy paper does not accept search knobs ({flags})"
    scheduler: Dict[str, Any] = {"policy": "search"}
    if args.policy == "paper":
        scheduler["policy"] = "paper"
    scheduler.update(given)
    return scheduler


def _cmd_run(args: argparse.Namespace) -> int:
    if (args.workload is None) == (args.spec_file is None):
        print("error: give exactly one of <workload> or --spec-file", file=sys.stderr)
        return 2
    spec_text = None
    if args.spec_file is not None:
        with open(args.spec_file, "r", encoding="utf-8") as handle:
            spec_text = handle.read()
    scheduler = _scheduler_from_args(args)
    if isinstance(scheduler, str):
        print(f"error: {scheduler}", file=sys.stderr)
        return 2
    config = FlowConfig(
        latency=args.latency,
        mode=args.mode,
        workload=args.workload,
        spec_text=spec_text,
        adder_style=args.adder_style,
        multiplier_style=args.multiplier_style,
        chained_bits_per_cycle=args.chained_bits,
        balance_fragments=not args.no_balance,
        scheduler=scheduler,
        check_equivalence=args.check_equivalence,
        equivalence_vectors=args.equivalence_vectors,
        equivalence_seed=args.equivalence_seed,
        equivalence_chunk_lanes=args.equivalence_chunk_lanes,
        engine=args.engine,
    )
    pipeline = _make_pipeline(args.cache_dir)
    try:
        artifact = pipeline.run(config, stop_after=args.stop_after)
    except KeyError as error:
        # An unknown --stop-after pass name (Pipeline._index_of).
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    if artifact.report is not None:
        if not args.json:
            print(artifact.summary())
            print()
        _print_report(artifact.report, args.json)
    elif args.json:
        print(
            json.dumps(
                {
                    "stopped_after": args.stop_after,
                    "passes": [
                        {"name": record.name, "elapsed_s": record.elapsed_s}
                        for record in artifact.passes
                    ],
                },
                indent=2,
            )
        )
    else:
        print(artifact.summary())
        for record in artifact.passes:
            print(f"  pass {record.name:9s}: {1000 * record.elapsed_s:.1f} ms")
    return 0


def _default_emit_latency(workload: str) -> int:
    """The latency the paper's tables use for a workload (3 otherwise)."""
    from ..workloads import FIG3_LATENCY, TABLE2_LATENCIES, TABLE3_LATENCIES

    if workload == "fig3":
        return FIG3_LATENCY
    if workload in TABLE2_LATENCIES:
        latencies = TABLE2_LATENCIES[workload]
        return latencies[0] if isinstance(latencies, (list, tuple)) else latencies
    short = workload[len("adpcm_"):] if workload.startswith("adpcm_") else workload
    if short in TABLE3_LATENCIES:
        latency = TABLE3_LATENCIES[short]
        return latency[0] if isinstance(latency, (list, tuple)) else latency
    return 3


def _cmd_emit(args: argparse.Namespace) -> int:
    from ..rtl.emit import EmissionError
    from ..rtl.verilog import render_verilog

    latency = args.latency
    if latency is None:
        latency = _default_emit_latency(args.workload)
    config = FlowConfig(
        latency=latency,
        mode=args.mode,
        workload=args.workload,
        adder_style=args.adder_style,
        multiplier_style=args.multiplier_style,
        emit=True,
        emit_check=args.check,
        equivalence_vectors=args.equivalence_vectors,
        equivalence_seed=args.equivalence_seed,
    )
    pipeline = Pipeline()
    try:
        artifact = pipeline.run(config, use_cache=False)
    except EmissionError as error:
        print(f"emit check FAILED: {error}", file=sys.stderr)
        return 1
    emission = artifact.emission
    assert emission is not None  # config.emit=True guarantees the pass ran
    verilog_path = None
    verilog_lines = 0
    if args.verilog is not None:
        text = render_verilog(emission.design)
        with open(args.verilog, "w", encoding="utf-8") as handle:
            handle.write(text)
        verilog_path = args.verilog
        verilog_lines = text.count("\n")
    if args.json:
        payload: Dict[str, Any] = {
            "design": emission.design.name,
            "workload": args.workload,
            "latency": latency,
            "mode": config.mode.value,
            "stats": emission.stats.to_report(),
            "report": artifact.report,
        }
        if emission.check is not None:
            payload["check"] = {
                "equivalent": emission.check.equivalent,
                "vectors": emission.check.vectors_checked,
            }
        if verilog_path is not None:
            payload["verilog"] = {"path": verilog_path, "lines": verilog_lines}
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    stats = emission.stats
    print(
        f"emitted {emission.design.name} [{config.mode}] latency={latency}: "
        f"{stats.gate_count} gates, {stats.fsm_states} FSM states over "
        f"{stats.fsm_state_bits} bits, {stats.fu_units} functional units, "
        f"{stats.mux_count} muxes (max fan-in {stats.mux_max_fan_in}), "
        f"{stats.register_bits} register bits, "
        f"{stats.capture_bits} output-capture bits"
    )
    if stats.split_fu_instances:
        print(
            f"  {stats.split_fu_instances} shared unit(s) split to keep the "
            "mux network acyclic (see DESIGN.md)"
        )
    if emission.check is not None:
        print(f"  check: {emission.check.summary().splitlines()[0]}")
    if verilog_path is not None:
        print(f"  verilog: {verilog_path} ({verilog_lines} lines)")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from ..check import check_artifact
    from ..check.mutate import run_mutations

    if args.mutate:
        outcomes = run_mutations(seed=args.mutation_seed)
        failures = [outcome for outcome in outcomes if not outcome.ok]
        if args.json:
            payload = {
                "seed": args.mutation_seed,
                "total": len(outcomes),
                "caught": len(outcomes) - len(failures),
                "outcomes": [
                    {
                        "name": outcome.name,
                        "code": outcome.code,
                        "level": outcome.level,
                        "clean_before": outcome.clean_before,
                        "caught": outcome.caught,
                        "reported": list(outcome.reported),
                    }
                    for outcome in outcomes
                ],
            }
            print(json.dumps(payload, indent=2))
        else:
            for outcome in outcomes:
                print(f"  {outcome.describe()}")
            print(
                f"mutation self-test: {len(outcomes) - len(failures)}/"
                f"{len(outcomes)} corruptions caught"
            )
        return 1 if failures else 0

    if args.workload is None:
        print(
            "error: give a workload to check (or --mutate for the "
            "checker self-test)",
            file=sys.stderr,
        )
        return 2
    latency = args.latency
    if latency is None:
        latency = _default_emit_latency(args.workload)
    # The netlist level needs an emitted design; partial checks skip the
    # emission work entirely.
    emit = args.level in (None, "netlist")
    config = FlowConfig(
        latency=latency,
        mode=args.mode,
        workload=args.workload,
        adder_style=args.adder_style,
        multiplier_style=args.multiplier_style,
        emit=emit,
    )
    artifact = Pipeline().run(config, use_cache=False)
    report = check_artifact(artifact, level=args.level)
    if args.json:
        payload: Dict[str, Any] = {
            "workload": args.workload,
            "latency": latency,
            "mode": config.mode.value,
        }
        payload.update(report.to_dict())
        print(json.dumps(payload, indent=2))
    else:
        print(report.render_text())
    return 0 if report.clean else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    from ..analysis.tables import format_records
    from .study import fig4_study

    executor = args.executor
    if executor is None:
        executor = "thread" if (args.workers or 1) > 1 else "serial"
    # The sweep is the fig4 study declaration specialized to the CLI's
    # latency axis and library styles.  Its points stop after the timing
    # pass (no allocation) -- same numbers, a fraction of the work.
    study = fig4_study(args.workload, latencies=args.latencies)
    chunk = args.chunk
    if chunk is None and executor == "serial":
        chunk = DEFAULT_SWEEP_CHUNK
    engine = SweepEngine(
        pipeline=_make_pipeline(args.cache_dir),
        max_workers=args.workers,
        executor=executor,
        stop_after=study.stop_after,
        retry=_retry_policy_from_args(args),
        chunk=chunk,
    )
    configs = [
        config.replace(
            adder_style=args.adder_style, multiplier_style=args.multiplier_style
        )
        for config in study.configs()
    ]
    try:
        rows = study.rows(engine.reports(configs))
    except (SweepPointError, RuntimeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(rows, indent=2))
    else:
        print(
            format_records(
                rows, title=f"cycle length vs latency -- {args.workload} ({executor})"
            )
        )
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    from ..analysis.tables import format_records
    from .study import builtin_study

    study = builtin_study(args.which)
    executor = "thread" if (args.workers or 1) > 1 else "serial"
    engine = SweepEngine(
        pipeline=_make_pipeline(args.cache_dir),
        max_workers=args.workers,
        executor=executor,
        stop_after=study.stop_after,
    )
    rows = study.rows(engine.reports(study.configs()))
    if args.json:
        print(json.dumps(rows, indent=2))
    else:
        print(format_records(rows, title=f"{args.which} reproduction"))
    return 0


def _cmd_study(args: argparse.Namespace) -> int:
    from ..analysis.tables import format_records
    from .study import StudyError, available_studies, builtin_study
    from .workspace import Workspace, WorkspaceError

    if args.study_command == "list":
        entries = [
            {
                "study": name,
                "points": len(study),
                "description": study.description,
            }
            for name, study in sorted(available_studies().items())
        ]
        if args.json:
            print(json.dumps(entries, indent=2))
        else:
            print(format_records(entries, title="built-in studies"))
        return 0

    if args.study_command == "gc":
        try:
            workspace = Workspace(args.workspace, create=False)
        except WorkspaceError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        removed = workspace.gc(dry_run=args.dry_run)
        if args.json:
            print(
                json.dumps(
                    {
                        "workspace": str(workspace.root),
                        "dry_run": args.dry_run,
                        "removed": removed,
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
        else:
            verb = "would collect" if args.dry_run else "collected"
            print(f"{workspace.root}: {verb} {len(removed)} object(s)")
            for address in removed:
                print(f"  {address}")
        return 0

    if args.study_command == "salvage":
        try:
            # recover=True: a corrupt manifest is exactly what salvage is
            # for (it is quarantined and rebuilt from the journal).
            workspace = Workspace(args.workspace, create=False, recover=True)
        except WorkspaceError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        report = workspace.salvage()
        if args.json:
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        elif report.clean:
            print(f"{workspace.root}: clean (nothing to repair)")
        else:
            print(f"salvaged {workspace.root}:")
            print(f"  journal records replayed : {report.journal_replayed}")
            print(f"  corrupt files quarantined: {len(report.quarantined)}")
            for path in report.quarantined:
                print(f"    {path}")
            print(f"  dangling records dropped : {report.dropped_records}")
            print(f"  orphaned rows reattached : {report.reattached}")
        return 0

    try:
        study = builtin_study(args.study)
    except StudyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        # Read-only verbs must not conjure an empty workspace from a typo'd
        # path; only `study run` creates one.
        workspace = Workspace(args.workspace, create=args.study_command == "run")
    except WorkspaceError as error:
        # Missing, corrupt or newer-schema manifest: an actionable message,
        # not a traceback (exit 1 -- the command was well-formed).
        print(f"error: {error}", file=sys.stderr)
        return 1

    if args.study_command == "status":
        status = workspace.status(study)
        if args.json:
            print(json.dumps(status, indent=2, sort_keys=True))
        else:
            print(
                format_records(
                    status["points"],
                    title=f"{study.name} in {workspace.root} -- "
                    f"{status['completed']}/{status['total']} points completed",
                )
            )
        return 0

    if args.study_command == "report":
        try:
            reports = workspace.reports(study, allow_partial=args.allow_partial)
        except WorkspaceError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        if args.allow_partial and len(reports) != len(study):
            # Partial tables cannot use the paired row builders; show raw rows.
            rows = [dict(report) for report in reports]
            title = (
                f"{study.name} (partial: {len(reports)}/{len(study)} points, "
                "raw reports)"
            )
        else:
            rows = study.rows(reports)
            title = f"{study.name} (from workspace store, zero recomputation)"
        if args.json:
            print(json.dumps(rows, indent=2))
        else:
            print(format_records(rows, title=title))
        return 0

    # -- study run -----------------------------------------------------
    def progress(result, done, total):
        if args.quiet or args.json:
            return
        state = result.source
        if state == "run":
            state = f"ran in {result.elapsed_s:.3f}s"
        elif state == "store":
            state = "loaded from store"
        elif state == "error":
            state = f"FAILED: {result.error}"
        print(f"  [{done}/{total}] {result.point.point_id}: {state}")

    retry = _retry_policy_from_args(args)
    if retry is not None:
        study = study.with_retry(retry)
    try:
        result = workspace.run_study(
            study,
            resume=args.resume and not args.fresh,
            max_workers=args.workers,
            executor=args.executor,
            progress=progress,
            max_points=args.max_points,
        )
    except KeyboardInterrupt:
        # Completed rows were flushed by run_study before the interrupt
        # propagated: the workspace is resumable, say so instead of dying
        # with a traceback.  130 = 128 + SIGINT, the conventional code.
        print(
            f"\ninterrupted: completed rows are stored in {workspace.root}; "
            f"resume with `repro study run {study.name} "
            f"--workspace {workspace.root} --resume`",
            file=sys.stderr,
        )
        return 130
    except SweepPointError as error:
        # --on-error raise: the failing point aborted the run.  Rows
        # completed before it are stored, so a resume retries only the rest.
        print(f"error: {error}", file=sys.stderr)
        print(
            f"(completed rows are stored in {workspace.root}; resume with "
            f"`repro study run {study.name} --workspace {workspace.root}` "
            "after fixing the failure)",
            file=sys.stderr,
        )
        return 1
    summary = result.summary()
    summary["workspace"] = str(workspace.root)
    if args.json:
        if result.complete:
            summary["rows"] = result.rows()
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(
            f"{study.name}: {summary['total']} points -- "
            f"{summary['loaded']} loaded, {summary['ran']} ran, "
            f"{summary['failed']} failed, {summary['cancelled']} cancelled"
        )
        if result.complete:
            print()
            print(format_records(result.rows(), title=f"{study.name} rows"))
        else:
            print(
                f"study incomplete; re-run `repro study run {study.name} "
                f"--workspace {workspace.root} --resume` to continue"
            )
    if result.failed:
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from ..server.app import serve

    return serve(
        args.workspace,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_size=args.queue_size,
        point_workers=args.point_workers,
        ready_file=args.ready_file,
    )


def _resolve_submission(spec: str) -> Any:
    """CLI study argument -> submit payload (name, or @file.json inline)."""
    if not spec.startswith("@"):
        return spec
    path = spec[1:]
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise ValueError(f"cannot read study description {path!r}: {error}") from None


def _cmd_submit(args: argparse.Namespace) -> int:
    from ..server.client import ClientError, SynthesisClient

    client = SynthesisClient(args.url)
    try:
        submitted = client.submit(_resolve_submission(args.study))
        body: Dict[str, Any] = dict(submitted)
        if args.wait:
            body = client.wait(submitted["job_id"], timeout_s=args.timeout)
    except ClientError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except TimeoutError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(body, indent=2, sort_keys=True))
    elif args.wait:
        summary = body.get("summary") or {}
        print(
            f"{body['job_id']}: {body['status']} -- "
            f"{summary.get('loaded', 0)} loaded, {summary.get('ran', 0)} ran, "
            f"{summary.get('failed', 0)} failed"
        )
    else:
        dedup = " (deduplicated onto a live job)" if body.get("deduplicated") else ""
        print(
            f"{body['job_id']}: {body['status']}, "
            f"{body['total_points']} point(s){dedup}"
        )
    if args.wait and body.get("status") != "done":
        return 1
    return 0


def _cmd_poll(args: argparse.Namespace) -> int:
    from ..server.client import ClientError, SynthesisClient

    client = SynthesisClient(args.url)
    try:
        if args.wait:
            body = client.wait(args.job_id, timeout_s=args.timeout)
        else:
            body = client.job(args.job_id)
        report = None
        if args.report and body.get("status") == "done":
            report = client.report(args.job_id)
    except ClientError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except TimeoutError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.json:
        output = dict(body)
        if report is not None:
            output["report"] = report
        print(json.dumps(output, indent=2, sort_keys=True))
    else:
        print(
            f"{body['job_id']}: {body['status']} "
            f"({body['done_points']}/{body['total_points']} points)"
        )
        for row in body.get("errors", []):
            print(f"  {row['point_id']}: {row['error_code']} {row['message']}")
        if report is not None:
            from ..analysis.tables import format_records

            print(format_records(report["rows"], title=f"{report['study']} rows"))
    if args.report and body.get("status") == "done" and report is None:
        return 1
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    import json as json_module

    from ..perf import (
        build_bench_payload,
        check_min_speedups,
        check_regressions,
        compute_speedups,
        format_bench_text,
        load_bench,
        run_benchmarks,
        write_bench,
    )

    min_speedups: Dict[str, float] = {}
    for requirement in args.min_speedup or ():
        key, separator, factor_text = requirement.partition("=")
        try:
            if not separator:
                raise ValueError
            min_speedups[key] = float(factor_text)
        except ValueError:
            print(
                f"error: malformed --min-speedup {requirement!r}: "
                "expected KEY=FACTOR (e.g. adpcm_iaq/allocate=2.0)",
                file=sys.stderr,
            )
            return 2

    repeats = args.repeats
    if repeats is None:
        repeats = 2 if args.quick else 3
    current = run_benchmarks(quick=args.quick, repeats=repeats, profile=args.profile)

    if args.profile:
        # Profiler overhead distorts every number; never let a profiled run
        # land in the bench file or trip a gate.
        print(
            "profiled run: timings include cProfile overhead; "
            "bench file not updated, gates skipped"
        )
        return 0

    existing = load_bench(args.output)
    # The written anchor: preserved from the output file unless explicitly
    # re-anchored; an external --baseline file is for comparison only and
    # never overwrites the committed anchor.
    anchor = current if args.update_baseline else None
    # The comparison reference for the speedup table and the regression
    # gate: an explicit --baseline file wins; otherwise gate against the
    # file's last recorded measurement (`current`) -- on a given machine
    # that is the tightest honest reference -- falling back to its anchor.
    if args.baseline is not None:
        payload = load_bench(args.baseline)
        if payload is None:
            print(f"error: cannot read baseline file {args.baseline!r}", file=sys.stderr)
            return 2
        reference = payload.get("baseline") or payload.get("current")
    elif args.update_baseline:
        reference = current
    elif existing is not None:
        reference = existing.get("current") or existing.get("baseline")
    else:
        reference = None

    if not args.no_write:
        payload = write_bench(args.output, current, anchor, label=args.label)
    else:
        payload = build_bench_payload(current, anchor, existing, args.label)
    anchor_reference = payload.get("baseline")
    if args.baseline is not None and reference is not None:
        # An explicit comparison file also drives the displayed speedups.
        payload = dict(payload)
        payload["baseline"] = reference
        payload["speedup"] = compute_speedups(reference, current)

    if args.json:
        print(json_module.dumps(payload, indent=2, sort_keys=True))
    else:
        print(format_bench_text(payload))
    # One-line machine-greppable summary for CI logs.
    print("BENCH " + json_module.dumps({"sweeps": current["sweeps"]}, sort_keys=True))

    failed = False
    if args.max_regression is not None and reference is not None:
        complaints = check_regressions(reference, current, args.max_regression)
        for complaint in complaints:
            print(f"perf regression: {complaint}", file=sys.stderr)
        failed = failed or bool(complaints)
    if min_speedups:
        # Speedup gates compare against the *anchor* (the measurements
        # recorded when the optimization landed), not the rolling reference.
        complaints = check_min_speedups(anchor_reference, current, min_speedups)
        for complaint in complaints:
            print(f"perf speedup gate: {complaint}", file=sys.stderr)
        failed = failed or bool(complaints)
    return 1 if failed else 0


#: The parametric workload families accepted wherever a workload name is
#: (``repro run``, ``repro sweep``, ``FlowConfig.workload``), beside the
#: registered benchmark names.
PARAMETRIC_FAMILIES = {
    "chain:<n>:<w>": "a chain of <n> chained <w>-bit additions "
    "(e.g. chain:3:16, the paper's running example)",
    "tree:<n>:<w>": "a balanced tree of <n> <w>-bit additions (e.g. tree:7:12)",
}


def _cmd_list_workloads(args: argparse.Namespace) -> int:
    entries = []
    for name, factory in sorted(available_workloads().items()):
        spec = factory()
        entries.append(
            {
                "workload": name,
                "operations": spec.operation_count(),
                "additive_operations": spec.additive_operation_count(),
                "inputs": len(spec.inputs()),
                "outputs": len(spec.outputs()),
            }
        )
    spec_text_note = (
        "inline specifications: pass --spec-file to `repro run`, or set "
        "FlowConfig(spec_text=...) in the API, to synthesize a behavioural "
        "description in the textual language instead of a named workload"
    )
    if args.json:
        print(
            json.dumps(
                {
                    "workloads": entries,
                    "parametric_families": PARAMETRIC_FAMILIES,
                    "spec_text": spec_text_note,
                },
                indent=2,
            )
        )
    else:
        from ..analysis.tables import format_records

        print(format_records(entries, title="registered workloads"))
        print("\nparametric families (usable wherever a workload name is):")
        for syntax, meaning in PARAMETRIC_FAMILIES.items():
            print(f"  {syntax:14s} -- {meaning}")
        print(f"\n{spec_text_note}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "emit": _cmd_emit,
        "check": _cmd_check,
        "sweep": _cmd_sweep,
        "table": _cmd_table,
        "study": _cmd_study,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "poll": _cmd_poll,
        "list-workloads": _cmd_list_workloads,
        "perf": _cmd_perf,
    }
    try:
        return handlers[args.command](args)
    except (ConfigError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # Commands with resumable state (study run) catch this themselves
        # with a richer hint; everything else exits 130 without a traceback.
        print("\ninterrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe: not an error.
        return 0
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
