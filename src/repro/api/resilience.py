"""Retry policy, runtime error codes and heartbeats for fault-tolerant runs.

This module is the policy half of the resilience layer: the mechanism lives
in :mod:`repro.api.sweep` (retry/timeout/watchdog loop) and
:mod:`repro.api.workspace` (journal, quarantine, salvage).  Three things are
defined here:

* :class:`RetryPolicy` -- how many attempts a point gets, how long to back
  off between them (exponential with a **deterministic** jitter derived from
  the point key, so reruns reproduce byte-identical schedules), the per-point
  wall-clock timeout, and what to do when attempts are exhausted
  (``on_error`` = ``record`` / ``skip`` / ``raise``).

* The ``RUN0xx`` error-code registry -- stable codes for runtime failures,
  mirroring :data:`repro.check.diagnostics.CODE_REGISTRY`'s role for IR
  invariants.  Failed points become structured error rows carrying one of
  these codes plus the exception chain and the attempt history; the codes
  are part of the workspace row contract, so they must never be renumbered.

* Worker heartbeats -- :func:`heartbeat` is called by the pipeline after
  each pass; the sweep watchdog reads :func:`last_heartbeat` across threads
  to distinguish a *hung* point (heartbeat stale) from a merely *slow* one.
"""

from __future__ import annotations

import hashlib
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "RUN_CODE_REGISTRY",
    "AttemptRecord",
    "RetryPolicy",
    "build_error_row",
    "clear_heartbeat",
    "exception_chain",
    "heartbeat",
    "last_heartbeat",
    "run_error_title",
]

#: code -> one-line title.  Stable namespace: append, never renumber.
RUN_CODE_REGISTRY: Dict[str, str] = {
    "RUN001": "point raised an exception",
    "RUN002": "point exceeded its wall-clock timeout",
    "RUN003": "worker process died (pool broken or worker killed)",
    "RUN004": "worker heartbeat lost (hang detected)",
    "RUN005": "row persistence failed (workspace store error)",
}


def run_error_title(code: str) -> str:
    """Title of a registered ``RUN0xx`` code; raises on unknown codes.

    Mirrors :func:`repro.check.diagnostics.diagnostic`'s registry gate: a
    typo'd code fails loudly instead of minting a new namespace entry.
    """
    try:
        return RUN_CODE_REGISTRY[code]
    except KeyError:
        raise ValueError(f"unregistered runtime error code {code!r}") from None


#: The accepted ``on_error`` dispositions, in CLI spelling.
ON_ERROR_CHOICES: Tuple[str, ...] = ("record", "skip", "raise")


@dataclass(frozen=True)
class RetryPolicy:
    """How a sweep treats a failing or overrunning point.

    Parameters
    ----------
    max_attempts:
        Total tries per point (1 = no retry).
    backoff_s / backoff_factor:
        Delay before attempt *n* (n >= 2) is
        ``backoff_s * backoff_factor**(n - 2)`` plus jitter.
    jitter_s:
        Upper bound of the jitter term.  The jitter itself is derived from
        the point key and the attempt number (:meth:`delay_for`), not from a
        live RNG -- identical reruns back off identically.
    timeout_s:
        Per-point wall-clock budget, enforced for the thread *and* process
        executors.  ``None`` disables the timeout.
    heartbeat_timeout_s:
        Maximum heartbeat staleness before a point counts as *hung* (RUN004
        rather than RUN002).  Defaults to ``timeout_s`` when unset.
    on_error:
        Disposition of a point whose attempts are exhausted: ``record``
        (structured error row, sweep continues -- the default), ``skip``
        (drop the point silently, sweep continues), ``raise`` (abort the
        sweep with :class:`repro.api.sweep.SweepPointError`).
    """

    max_attempts: int = 1
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    jitter_s: float = 0.05
    timeout_s: Optional[float] = None
    heartbeat_timeout_s: Optional[float] = None
    on_error: str = "record"

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_s < 0 or self.jitter_s < 0:
            raise ValueError("backoff_s and jitter_s must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.heartbeat_timeout_s is not None and self.heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat_timeout_s must be positive (or None)")
        if self.on_error not in ON_ERROR_CHOICES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_CHOICES}, got {self.on_error!r}"
            )

    # ------------------------------------------------------------------
    @property
    def retries_enabled(self) -> bool:
        return self.max_attempts > 1

    @property
    def effective_heartbeat_timeout_s(self) -> Optional[float]:
        if self.heartbeat_timeout_s is not None:
            return self.heartbeat_timeout_s
        return self.timeout_s

    def delay_for(self, key: str, attempt: int) -> float:
        """Backoff delay before *attempt* (2-based) of the point named *key*.

        Deterministic: the jitter term is a hash of ``(key, attempt)``
        scaled into ``[0, jitter_s)``, so a rerun of the same sweep sleeps
        the same amounts in the same places.
        """
        if attempt < 2:
            return 0.0
        base = self.backoff_s * (self.backoff_factor ** (attempt - 2))
        if self.jitter_s <= 0:
            return base
        digest = hashlib.sha256(f"{key}:{attempt}".encode("utf-8")).digest()
        fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return base + self.jitter_s * fraction

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "max_attempts": self.max_attempts,
            "backoff_s": self.backoff_s,
            "backoff_factor": self.backoff_factor,
            "jitter_s": self.jitter_s,
            "timeout_s": self.timeout_s,
            "heartbeat_timeout_s": self.heartbeat_timeout_s,
            "on_error": self.on_error,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RetryPolicy":
        return cls(**data)

    def replace(self, **overrides: Any) -> "RetryPolicy":
        merged = self.to_dict()
        merged.update(overrides)
        return RetryPolicy.from_dict(merged)


@dataclass(frozen=True)
class AttemptRecord:
    """One try of one point: what happened and how long it took."""

    attempt: int
    error_code: Optional[str] = None
    error: Optional[str] = None
    elapsed_s: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "attempt": self.attempt,
            "error_code": self.error_code,
            "error": self.error,
            "elapsed_s": self.elapsed_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AttemptRecord":
        return cls(**data)


def exception_chain(error: BaseException, limit: int = 8) -> List[str]:
    """The ``__cause__``/``__context__`` chain as compact one-liners."""
    chain: List[str] = []
    seen = set()
    current: Optional[BaseException] = error
    while current is not None and len(chain) < limit and id(current) not in seen:
        seen.add(id(current))
        chain.append(f"{type(current).__name__}: {current}")
        current = current.__cause__ or current.__context__
    return chain


def build_error_row(
    point_id: str,
    error_code: str,
    error: str,
    attempts: List[AttemptRecord],
    chain: Optional[List[str]] = None,
) -> Dict[str, Any]:
    """The structured error-row record stored in the workspace manifest.

    Not content-addressed (errors are transient state, not results); lives
    under the manifest entry's ``errors`` key and is cleared when the point
    later succeeds.
    """
    return {
        "point_id": point_id,
        "error_code": error_code,
        "error_title": run_error_title(error_code),
        "error": error,
        "error_chain": list(chain or []),
        "attempts": [record.to_dict() for record in attempts],
    }


def format_exception(error: BaseException) -> str:
    """Compact ``Type: message`` rendering used in outcomes and rows."""
    return f"{type(error).__name__}: {error}"


def format_traceback(error: BaseException, limit: int = 20) -> str:
    """Trimmed traceback text for error rows (never shown as a raw crash)."""
    return "".join(
        traceback.format_exception(type(error), error, error.__traceback__, limit=limit)
    ).rstrip()


# ----------------------------------------------------------------------
# Heartbeats: pipeline workers report liveness; the sweep watchdog reads it
# cross-thread to tell a hung point from a slow one.

_HEARTBEATS: Dict[int, float] = {}
_HEARTBEATS_LOCK = threading.Lock()


def heartbeat() -> None:
    """Record 'this thread is making progress' (called between passes)."""
    with _HEARTBEATS_LOCK:
        _HEARTBEATS[threading.get_ident()] = time.monotonic()


def last_heartbeat(thread_id: int) -> Optional[float]:
    """Monotonic timestamp of *thread_id*'s last heartbeat, or ``None``."""
    with _HEARTBEATS_LOCK:
        return _HEARTBEATS.get(thread_id)


def clear_heartbeat(thread_id: int) -> None:
    """Forget *thread_id*'s heartbeat (called when its point finishes)."""
    with _HEARTBEATS_LOCK:
        _HEARTBEATS.pop(thread_id, None)
