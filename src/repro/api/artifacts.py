"""Typed run artifacts produced by the pipeline passes.

A :class:`RunArtifact` is the single object threaded through a pipeline run:
every pass reads the slots filled by its predecessors and fills its own.  The
slots mirror the pass sequence (``parse`` fills the specification,
``transform`` the transformation result, ``schedule`` the schedule, and so
on), so a run stopped early simply leaves the later slots ``None``.

The ``report`` slot is special: it is a flat, JSON-serializable dictionary of
the numbers the paper's tables print, which is what the on-disk cache and the
process-pool sweep workers exchange.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.transform import TransformResult
from ..hls.datapath import Datapath
from ..hls.flow import SynthesisResult
from ..hls.schedule import Schedule
from ..hls.scheduling.search import SearchProvenance
from ..hls.timing import CycleTiming
from ..check.diagnostics import CheckReport
from ..ir.spec import Specification
from ..rtl.emit import RtlEmission
from ..techlib.library import TechnologyLibrary
from .config import FlowConfig


#: Version of the flat metric-report row layout (the ``report`` slot).
#: Bump whenever a key is added, removed or changes meaning: the version is
#: stamped into every report (``schema_version``), into the
#: :class:`~repro.api.cache.ResultCache` disk keys and into every
#: :class:`~repro.api.workspace.Workspace` row, so artifacts written by an
#: older layout are invalidated instead of silently reloaded.
#: Version 2 added the ``schema_version`` field itself.
#: Version 3 added the RTL emission statistics (``emit_*`` keys, present when
#: the config requests the emit pass) and the new ``emit``/``emit_check``
#: config fields feeding the content hash.
#: Version 4 added the static-verification results (``check_*`` keys, present
#: when the config requests the check pass) and the new ``check``/
#: ``check_level`` config fields feeding the content hash.
#: (Still 4: the ``search_*`` keys follow the same conditional-key pattern as
#: ``emit_*``/``check_*`` -- they only appear on search-policy configs, which
#: are new content hashes, so no existing row's layout changed.)
REPORT_SCHEMA_VERSION = 4


class PipelineStateError(RuntimeError):
    """Raised when a pass reads a slot no earlier pass has filled."""


@dataclass(frozen=True)
class PassRecord:
    """Execution record of one pass: its name and wall-clock time."""

    name: str
    elapsed_s: float


@dataclass
class RunArtifact:
    """Everything produced by one pipeline run (possibly stopped early).

    Slots, in the order the default passes fill them:

    * ``specification`` -- the input specification (``parse``);
    * ``working_specification`` -- the specification actually synthesized:
      the transformed one when the transform pass ran, the input otherwise;
    * ``transform_result`` / ``budget`` -- presynthesis transformation output
      and the per-cycle chained-bit budget (``transform``);
    * ``schedule`` (``schedule``), ``timing`` (``time``), ``datapath``
      (``allocate``); ``search`` carries the winning-policy provenance when
      the config's scheduler policy enables search;
    * ``emission`` -- the structural RTL design lowered from the bound
      datapath (``emit``; only when the config requests it);
    * ``check`` -- the static-verification findings over every produced IR
      level (``check``; only when the config requests it);
    * ``synthesis`` / ``report`` -- the backward-compatible
      :class:`~repro.hls.flow.SynthesisResult` and the flat metric row
      (``report``).
    """

    config: FlowConfig
    library: TechnologyLibrary
    specification: Optional[Specification] = None
    working_specification: Optional[Specification] = None
    transform_result: Optional[TransformResult] = None
    budget: Optional[int] = None
    schedule: Optional[Schedule] = None
    search: Optional[SearchProvenance] = None
    timing: Optional[CycleTiming] = None
    datapath: Optional[Datapath] = None
    emission: Optional[RtlEmission] = None
    check: Optional[CheckReport] = None
    synthesis: Optional[SynthesisResult] = None
    report: Optional[Dict[str, Any]] = None
    passes: List[PassRecord] = field(default_factory=list)
    from_cache: bool = False

    # ------------------------------------------------------------------
    def completed_passes(self) -> List[str]:
        """Names of the passes that ran, in order."""
        return [record.name for record in self.passes]

    def elapsed_s(self) -> float:
        """Total wall-clock time spent in passes."""
        return sum(record.elapsed_s for record in self.passes)

    def require(self, slot: str) -> Any:
        """Read a slot, raising a diagnostic error when it is unfilled."""
        value = getattr(self, slot)
        if value is None:
            raise PipelineStateError(
                f"artifact slot {slot!r} is empty; ran passes: "
                f"{self.completed_passes() or '(none)'}"
            )
        return value

    def summary(self) -> str:
        """One-paragraph human rendering of the run."""
        if self.synthesis is not None:
            return self.synthesis.summary()
        if self.report is not None:
            # Disk-tier rehydration: the metric report survived, the
            # heavyweight objects did not.
            return (
                f"{self.report.get('name', '<cached>')} [{self.config.mode}] "
                f"latency={self.config.latency} (cached report)"
            )
        name = self.specification.name if self.specification else "<unresolved>"
        return (
            f"{name} [{self.config.mode}] latency={self.config.latency} "
            f"(stopped after {self.completed_passes()[-1] if self.passes else 'nothing'})"
        )


def build_report(artifact: RunArtifact) -> Dict[str, Any]:
    """The flat, JSON-serializable metric row of a completed run."""
    synthesis = artifact.require("synthesis")
    config = artifact.config
    report: Dict[str, Any] = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "name": synthesis.specification.name,
        "workload": config.workload,
        "label": config.label,
        "latency": synthesis.latency,
        "mode": synthesis.mode.value,
        "cycle_length_ns": synthesis.cycle_length_ns,
        "execution_time_ns": synthesis.execution_time_ns,
        "chained_bits_per_cycle": synthesis.chained_bits_per_cycle,
        "fu_area": synthesis.fu_area,
        "register_area": synthesis.register_area,
        "routing_area": synthesis.routing_area,
        "controller_area": synthesis.controller_area,
        "datapath_area": synthesis.datapath_area,
        "total_area": synthesis.total_area,
        "operations": synthesis.specification.operation_count(),
        "additive_operations": synthesis.specification.additive_operation_count(),
        "library": artifact.library.name,
        "config_hash": config.content_hash(),
    }
    if artifact.transform_result is not None:
        result = artifact.transform_result
        report["operation_growth_pct"] = 100.0 * result.operation_growth()
        report["critical_path_bits"] = result.critical_path_bits
        if result.equivalence is not None:
            report["equivalent"] = result.equivalence.equivalent
            report["equivalence_vectors"] = result.equivalence.vectors_checked
    if artifact.emission is not None:
        report.update(artifact.emission.stats.to_report())
        if artifact.emission.check is not None:
            report["emit_check_ok"] = artifact.emission.check.equivalent
            report["emit_check_vectors"] = artifact.emission.check.vectors_checked
    if artifact.check is not None:
        report["check_ok"] = artifact.check.clean
        report["check_errors"] = artifact.check.error_count
        report["check_warnings"] = artifact.check.warning_count
        report["check_levels"] = list(artifact.check.levels)
    if artifact.search is not None:
        report.update(artifact.search.to_report())
    return report


def build_timing_report(artifact: RunArtifact) -> Dict[str, Any]:
    """The timing-only metric row of a run stopped after the ``time`` pass.

    Latency sweeps (Fig. 4) consume cycle length and execution time only, so
    their points skip allocation entirely; this row carries every
    timing-derived key of :func:`build_report` (same names, same values) and
    simply omits the area columns an unallocated run does not have.
    """
    timing = artifact.require("timing")
    specification = artifact.require("working_specification")
    config = artifact.config
    report: Dict[str, Any] = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "name": specification.name,
        "workload": config.workload,
        "label": config.label,
        "latency": timing.latency,
        "mode": config.mode.value,
        "cycle_length_ns": timing.cycle_length_ns,
        "execution_time_ns": timing.execution_time_ns,
        "chained_bits_per_cycle": artifact.budget,
        "operations": specification.operation_count(),
        "additive_operations": specification.additive_operation_count(),
        "library": artifact.library.name,
        "config_hash": config.content_hash(),
    }
    if artifact.transform_result is not None:
        result = artifact.transform_result
        report["operation_growth_pct"] = 100.0 * result.operation_growth()
        report["critical_path_bits"] = result.critical_path_bits
        if result.equivalence is not None:
            report["equivalent"] = result.equivalence.equivalent
            report["equivalence_vectors"] = result.equivalence.vectors_checked
    return report
