"""The synthesis pipeline: named passes over a shared run artifact.

:class:`Pipeline` is the canonical way to run the paper's flow.  It holds an
ordered list of named passes (see :mod:`repro.api.passes`), runs them over a
:class:`~repro.api.artifacts.RunArtifact`, and optionally consults a
:class:`~repro.api.cache.ResultCache` so repeated runs of the same config are
free.  Callers can stop after any pass (``stop_after="schedule"`` to inspect
a schedule without paying for allocation) or swap passes out
(``replace_pass("schedule", my_scheduler)`` for scheduler experiments).

Example::

    from repro.api import FlowConfig, Pipeline

    pipeline = Pipeline()
    artifact = pipeline.run(FlowConfig(latency=3, mode="fragmented",
                                       workload="motivational"))
    print(artifact.synthesis.summary())
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Sequence, Tuple

from .. import faults
from ..ir.spec import Specification
from ..techlib.library import TechnologyLibrary
from ..util import paused_gc
from . import resilience
from .artifacts import PassRecord, RunArtifact
from .cache import ResultCache
from .config import FlowConfig, specification_fingerprint
from .passes import DEFAULT_PASSES, PassFn


class Pipeline:
    """A composable sequence of named synthesis passes.

    Parameters
    ----------
    passes:
        Ordered ``(name, fn)`` pairs; defaults to the canonical
        ``parse -> validate -> transform -> schedule -> time -> allocate ->
        report`` sequence.
    library:
        Technology library override.  When ``None`` every run builds the
        library its config describes (adder/multiplier styles).
    cache:
        Result cache consulted before running and filled afterwards.
    """

    def __init__(
        self,
        passes: Optional[Iterable[Tuple[str, PassFn]]] = None,
        library: Optional[TechnologyLibrary] = None,
        cache: Optional[ResultCache] = None,
    ) -> None:
        self.passes: List[Tuple[str, PassFn]] = list(
            passes if passes is not None else DEFAULT_PASSES
        )
        names = [name for name, _ in self.passes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate pass names in pipeline: {names}")
        self.library = library
        self.cache = cache

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def pass_names(self) -> List[str]:
        return [name for name, _ in self.passes]

    def _index_of(self, name: str) -> int:
        for index, (pass_name, _) in enumerate(self.passes):
            if pass_name == name:
                return index
        raise KeyError(
            f"pipeline has no pass {name!r}; passes are {self.pass_names()}"
        )

    def replace_pass(self, name: str, fn: PassFn) -> "Pipeline":
        """A new pipeline with the named pass swapped for *fn*."""
        index = self._index_of(name)
        passes = list(self.passes)
        passes[index] = (name, fn)
        return Pipeline(passes, library=self.library, cache=self.cache)

    def without_pass(self, name: str) -> "Pipeline":
        """A new pipeline with the named pass removed."""
        index = self._index_of(name)
        passes = list(self.passes)
        del passes[index]
        return Pipeline(passes, library=self.library, cache=self.cache)

    def with_cache(self, cache: Optional[ResultCache]) -> "Pipeline":
        return Pipeline(self.passes, library=self.library, cache=cache)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _pass_shape(self, stop_after: Optional[str]) -> str:
        # Name + function identity, so a swapped-in pass never shares cache
        # entries with the stock pass of the same name.
        shape = ">".join(
            f"{name}:{getattr(fn, '__qualname__', repr(fn))}"
            for name, fn in self.passes
        )
        if stop_after is not None:
            shape += f"!{stop_after}"
        if self.library is not None:
            # A library override bypasses the config's styles; key on it too.
            shape += f"@{self.library!r}"
        return shape

    def run(
        self,
        config: FlowConfig,
        specification: Optional[Specification] = None,
        stop_after: Optional[str] = None,
        use_cache: bool = True,
        require_full: bool = False,
    ) -> RunArtifact:
        """Run the passes over *config* and return the artifact.

        Parameters
        ----------
        config:
            The declarative run description.
        specification:
            In-memory specification overriding the config's source (the
            cache key then includes its fingerprint).
        stop_after:
            Name of the last pass to run; later slots stay ``None``.
        use_cache:
            Consult/fill the pipeline's cache (ignored without one).
        require_full:
            Reject report-only cache hits (disk-tier rehydrations carry the
            metric report but no synthesis objects): re-run instead and
            upgrade the cache entry with the full artifact.
        """
        if stop_after is not None:
            self._index_of(stop_after)  # validate the name up front
        cache_key: Optional[str] = None
        if self.cache is not None and use_cache:
            fingerprint = (
                specification_fingerprint(specification)
                if specification is not None
                else None
            )
            cache_key = ResultCache.key_for(
                config, fingerprint, self._pass_shape(stop_after)
            )
            cached = self.cache.get(cache_key)
            if cached is not None and not (require_full and cached.synthesis is None):
                return cached

        artifact = RunArtifact(
            config=config,
            library=self.library if self.library is not None else config.build_library(),
            specification=specification,
        )
        if specification is not None:
            artifact.working_specification = specification
        for name, pass_fn in self.passes:
            # Chaos hook + liveness: the fault site lets the chaos suite
            # break any pass by name; the heartbeat afterwards is what the
            # sweep watchdog reads to tell a hung pass from a slow one.
            faults.site("pipeline.pass", key=name)
            started = time.perf_counter()
            pass_fn(artifact)
            artifact.passes.append(PassRecord(name, time.perf_counter() - started))
            resilience.heartbeat()
            if name == stop_after:
                break

        if cache_key is not None:
            self.cache.put(cache_key, artifact)
        return artifact

    def run_many(
        self,
        configs: Sequence[FlowConfig],
        specifications: Optional[Sequence[Optional[Specification]]] = None,
    ) -> List[RunArtifact]:
        """Run several configs sequentially (use SweepEngine for parallelism)."""
        return self.run_batch(configs, specifications)

    def run_batch(
        self,
        configs: Sequence[FlowConfig],
        specifications: Optional[Sequence[Optional[Specification]]] = None,
        stop_after: Optional[str] = None,
        use_cache: bool = True,
        require_full: bool = False,
    ) -> List[RunArtifact]:
        """Run several configs as one batched execution.

        Identical results to calling :meth:`run` per config, but the batch
        runs under :func:`repro.util.paused_gc`: the cyclic collector is
        paused for the duration and resumed afterwards, which removes the
        dominant fixed cost of allocation-heavy sweeps (the flow creates no
        reference cycles, so mid-batch collections only ever walked the heap
        to find nothing).  This is the serial fast path behind
        :class:`~repro.api.sweep.SweepEngine` chunks and the perf harness's
        full-pipeline sweeps.
        """
        if specifications is not None and len(specifications) != len(configs):
            raise ValueError("specifications must align with configs")
        artifacts = []
        with paused_gc():
            for index, config in enumerate(configs):
                spec = specifications[index] if specifications is not None else None
                artifacts.append(
                    self.run(
                        config,
                        specification=spec,
                        stop_after=stop_after,
                        use_cache=use_cache,
                        require_full=require_full,
                    )
                )
        return artifacts
