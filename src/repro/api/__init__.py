"""The canonical entry point of the reproduction: config -> pipeline -> runs.

This package layers a declarative, cache-aware, parallelizable API over the
lower-level :mod:`repro.core` / :mod:`repro.hls` machinery:

* :class:`FlowConfig` -- frozen, JSON-serializable description of one run;
* :class:`Pipeline` -- named, swappable passes over a :class:`RunArtifact`
  (``parse -> validate -> transform -> schedule -> time -> allocate ->
  report``);
* :class:`ResultCache` -- content-hash keyed memory + disk result cache;
* :class:`SweepEngine` -- fans configs across thread/process pools with
  deterministic result ordering;
* :mod:`repro.api.cli` -- the ``python -m repro`` command-line front end.

Quick start::

    from repro.api import FlowConfig, Pipeline, ResultCache, SweepEngine

    pipeline = Pipeline(cache=ResultCache())
    run = pipeline.run(FlowConfig(latency=3, mode="fragmented",
                                  workload="motivational"))
    print(run.synthesis.summary())

    engine = SweepEngine(pipeline, max_workers=4, executor="thread")
    outcomes = engine.run([FlowConfig(latency=l, mode="fragmented",
                                      workload="chain:3:16")
                           for l in range(3, 16)])
"""

from .artifacts import PassRecord, PipelineStateError, RunArtifact, build_report
from .cache import ResultCache
from .config import (
    ConfigError,
    FlowConfig,
    available_workloads,
    resolve_workload,
    specification_fingerprint,
)
from .passes import (
    DEFAULT_PASSES,
    allocate_pass,
    parse_pass,
    report_pass,
    schedule_pass,
    time_pass,
    transform_pass,
    validate_pass,
)
from .pipeline import Pipeline
from .sweep import SweepEngine, SweepOutcome

__all__ = [
    "DEFAULT_PASSES",
    "ConfigError",
    "FlowConfig",
    "PassRecord",
    "Pipeline",
    "PipelineStateError",
    "ResultCache",
    "RunArtifact",
    "SweepEngine",
    "SweepOutcome",
    "allocate_pass",
    "available_workloads",
    "build_report",
    "parse_pass",
    "report_pass",
    "resolve_workload",
    "schedule_pass",
    "specification_fingerprint",
    "time_pass",
    "transform_pass",
    "validate_pass",
]
