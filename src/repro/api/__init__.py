"""The canonical entry point of the reproduction: config -> pipeline -> runs.

This package layers a declarative, cache-aware, parallelizable API over the
lower-level :mod:`repro.core` / :mod:`repro.hls` machinery:

* :class:`FlowConfig` -- frozen, JSON-serializable description of one run;
* :class:`Pipeline` -- named, swappable passes over a :class:`RunArtifact`
  (``parse -> validate -> transform -> schedule -> time -> allocate ->
  report``);
* :class:`ResultCache` -- content-hash keyed memory + disk result cache;
* :class:`SweepEngine` -- fans configs across thread/process pools;
  streaming ``submit()``/``as_completed()`` with progress callbacks and
  cooperative cancellation, plus the deterministic batch ``run()``;
* :class:`Study` -- declarative experiment matrix (grid/list/zip expansions
  over config fields, stable content-hash point ids, the paper's tables and
  sweeps as named built-ins -- see :func:`builtin_study`);
* :class:`Workspace` -- on-disk project root (manifest + content-addressed
  artifact store + write-ahead journal + quarantine) that makes studies
  persistent, resumable and crash-safe (see :meth:`Workspace.salvage`);
* :class:`RetryPolicy` -- per-point fault isolation: retries with
  deterministic backoff, wall-clock timeouts, hang detection, and the
  stable ``RUN0xx`` error codes failed points are recorded under;
* :mod:`repro.api.cli` -- the ``python -m repro`` command-line front end.

Study quick start::

    from repro.api import Workspace, builtin_study

    workspace = Workspace(".repro-workspace")
    result = workspace.run_study(builtin_study("table2"), max_workers=4)
    print(result.summary())          # {'loaded': ..., 'ran': ...}
    rows = workspace.rows(builtin_study("table2"))  # zero recomputation

Quick start::

    from repro.api import FlowConfig, Pipeline, ResultCache, SweepEngine

    pipeline = Pipeline(cache=ResultCache())
    run = pipeline.run(FlowConfig(latency=3, mode="fragmented",
                                  workload="motivational"))
    print(run.synthesis.summary())

    engine = SweepEngine(pipeline, max_workers=4, executor="thread")
    outcomes = engine.run([FlowConfig(latency=l, mode="fragmented",
                                      workload="chain:3:16")
                           for l in range(3, 16)])
"""

from .artifacts import (
    REPORT_SCHEMA_VERSION,
    PassRecord,
    PipelineStateError,
    RunArtifact,
    build_report,
)
from .cache import ResultCache
from .config import (
    ConfigError,
    FlowConfig,
    available_workloads,
    resolve_workload,
    specification_fingerprint,
)
from .passes import (
    DEFAULT_PASSES,
    allocate_pass,
    emit_pass,
    parse_pass,
    report_pass,
    schedule_pass,
    time_pass,
    transform_pass,
    validate_pass,
)
from .pipeline import Pipeline
from .resilience import (
    ON_ERROR_CHOICES,
    RUN_CODE_REGISTRY,
    AttemptRecord,
    RetryPolicy,
    run_error_title,
)
from .study import (
    BUILTIN_STUDIES,
    Study,
    StudyError,
    StudyPoint,
    available_studies,
    builtin_study,
    fig4_study,
    study_from_dict,
    table_study,
)
from .sweep import SweepEngine, SweepOutcome, SweepPointError, SweepRun
from .workspace import (
    PointResult,
    SalvageReport,
    StudyRunResult,
    Workspace,
    WorkspaceCorruptError,
    WorkspaceError,
)

__all__ = [
    "BUILTIN_STUDIES",
    "DEFAULT_PASSES",
    "ON_ERROR_CHOICES",
    "RUN_CODE_REGISTRY",
    "AttemptRecord",
    "ConfigError",
    "FlowConfig",
    "PassRecord",
    "Pipeline",
    "PipelineStateError",
    "PointResult",
    "REPORT_SCHEMA_VERSION",
    "ResultCache",
    "RetryPolicy",
    "RunArtifact",
    "SalvageReport",
    "Study",
    "StudyError",
    "StudyPoint",
    "StudyRunResult",
    "SweepEngine",
    "SweepOutcome",
    "SweepPointError",
    "SweepRun",
    "Workspace",
    "WorkspaceCorruptError",
    "WorkspaceError",
    "allocate_pass",
    "available_studies",
    "available_workloads",
    "build_report",
    "builtin_study",
    "emit_pass",
    "fig4_study",
    "parse_pass",
    "report_pass",
    "resolve_workload",
    "run_error_title",
    "schedule_pass",
    "specification_fingerprint",
    "study_from_dict",
    "table_study",
    "time_pass",
    "transform_pass",
    "validate_pass",
]
