"""Technology library: gate-level area and delay models.

This package replaces the Synopsys Design Compiler numbers of the paper with
an explicit, calibrated cost model (see DESIGN.md, substitution table).
"""

from .adders import (
    AdderModel,
    AdderStyle,
    adder_area,
    adder_delay,
    build_adder,
    chained_bits_delay,
)
from .gates import DEFAULT_GATES, GateCosts
from .library import FunctionalUnitSpec, TechnologyLibrary, default_library
from .multipliers import (
    MultiplierModel,
    MultiplierStyle,
    build_multiplier,
    multiplier_area,
    multiplier_delay,
)
from .storage import (
    MultiplexerModel,
    RegisterModel,
    build_multiplexer,
    build_register,
    multiplexer_area,
    register_area,
    register_setup_ns,
    routing_area,
)

__all__ = [
    "AdderModel",
    "AdderStyle",
    "DEFAULT_GATES",
    "FunctionalUnitSpec",
    "GateCosts",
    "MultiplexerModel",
    "MultiplierModel",
    "MultiplierStyle",
    "RegisterModel",
    "TechnologyLibrary",
    "adder_area",
    "adder_delay",
    "build_adder",
    "build_multiplexer",
    "build_multiplier",
    "build_register",
    "chained_bits_delay",
    "default_library",
    "multiplexer_area",
    "multiplier_area",
    "multiplier_delay",
    "register_area",
    "register_setup_ns",
    "routing_area",
]
