"""Multiplier architecture models.

The classical HLS benchmarks of Table II (elliptic wave filter, differential
equation solver, IIR and FIR filters) contain multiplications, so the cost
model needs multiplier area and delay.  Two structures are modelled:

* ``ARRAY`` -- the carry-propagate array multiplier, whose delay ripples
  through roughly ``m + n`` full-adder stages.  This matches the paper's
  convention of measuring execution times in chained 1-bit additions: the
  operative kernel extraction rewrites an ``m x n`` multiplication into a sum
  of partial products whose chained-addition depth is on the same order.
* ``WALLACE`` -- a carry-save reduction tree followed by a final fast adder,
  used by the ablation experiments.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from .adders import AdderStyle, adder_delay
from .gates import DEFAULT_GATES, GateCosts


class MultiplierStyle(enum.Enum):
    """Supported multiplier architectures."""

    ARRAY = "array"
    WALLACE = "wallace"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class MultiplierModel:
    """Area/delay model of one multiplier instance."""

    style: MultiplierStyle
    left_width: int
    right_width: int
    area_gates: float
    delay_ns: float

    @property
    def result_width(self) -> int:
        return self.left_width + self.right_width


def build_multiplier(
    left_width: int,
    right_width: int,
    style: MultiplierStyle = MultiplierStyle.ARRAY,
    gates: GateCosts = DEFAULT_GATES,
) -> MultiplierModel:
    """Construct the area/delay model for an ``m x n`` multiplier."""
    if left_width <= 0 or right_width <= 0:
        raise ValueError(
            f"multiplier widths must be positive, got {left_width} x {right_width}"
        )
    partial_product_area = left_width * right_width * gates.and_gate_area
    if style is MultiplierStyle.ARRAY:
        adder_cells = max(0, (right_width - 1)) * left_width
        area = partial_product_area + adder_cells * gates.full_adder_area
        delay = (
            gates.and_gate_delay_ns
            + (left_width + right_width - 2) * gates.full_adder_delay_ns
        )
    elif style is MultiplierStyle.WALLACE:
        adder_cells = max(0, (right_width - 1)) * left_width
        area = partial_product_area + adder_cells * gates.full_adder_area * 1.1
        reduction_levels = max(1, math.ceil(math.log(max(2, right_width), 1.5)))
        delay = (
            gates.and_gate_delay_ns
            + reduction_levels * gates.full_adder_delay_ns
            + adder_delay(left_width + right_width, AdderStyle.CARRY_LOOKAHEAD, gates)
        )
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown multiplier style {style}")
    return MultiplierModel(
        style=style,
        left_width=left_width,
        right_width=right_width,
        area_gates=area,
        delay_ns=delay,
    )


def multiplier_area(
    left_width: int,
    right_width: int,
    style: MultiplierStyle = MultiplierStyle.ARRAY,
    gates: GateCosts = DEFAULT_GATES,
) -> float:
    return build_multiplier(left_width, right_width, style, gates).area_gates


def multiplier_delay(
    left_width: int,
    right_width: int,
    style: MultiplierStyle = MultiplierStyle.ARRAY,
    gates: GateCosts = DEFAULT_GATES,
) -> float:
    return build_multiplier(left_width, right_width, style, gates).delay_ns
