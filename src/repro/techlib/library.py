"""The technology library facade.

:class:`TechnologyLibrary` is the single object the HLS substrate and the
analysis layer consult for physical numbers: functional-unit area and delay
per operation kind and width, register and multiplexer costs, controller
costs, and the conversion between the paper's abstract delay unit (chained
1-bit additions, delta) and nanoseconds.

The default library is calibrated against Table I of the paper (see
:mod:`repro.techlib.gates`).  Experiments that explore other adder or
multiplier families construct a library with a different
:class:`~repro.techlib.adders.AdderStyle`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..ir.operations import Operation, OpKind, is_glue
from .adders import AdderStyle, build_adder
from .gates import DEFAULT_GATES, GateCosts
from .multipliers import MultiplierStyle, build_multiplier
from .storage import build_multiplexer, build_register


@dataclass(frozen=True)
class FunctionalUnitSpec:
    """The functional-unit class an operation is executed on.

    Operations with the same ``(category, width)`` pair can share one
    functional unit instance across cycles; the allocation stage uses this as
    its compatibility key.
    """

    category: str
    width: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.category}[{self.width}]"


@dataclass(frozen=True)
class TechnologyLibrary:
    """Area/delay oracle for every datapath component.

    Parameters
    ----------
    gates:
        Primitive cell costs.
    adder_style / multiplier_style:
        Architecture used for additive and multiplicative functional units.
    controller_base_area / controller_area_per_state / controller_area_per_signal:
        Linear FSM controller cost model (replaces the Behavioral Compiler's
        controller, whose cost Table I itemises as 60 / 32 / 62 gates for the
        three implementations of the motivational example).
    """

    gates: GateCosts = DEFAULT_GATES
    adder_style: AdderStyle = AdderStyle.RIPPLE_CARRY
    multiplier_style: MultiplierStyle = MultiplierStyle.ARRAY
    controller_base_area: float = 20.0
    controller_area_per_state: float = 7.0
    controller_area_per_signal: float = 1.5
    name: str = "table1-calibrated"

    def __post_init__(self) -> None:
        # Area/delay of a functional unit are pure functions of its
        # (category, width) under a fixed library, but computing them builds
        # a whole gate netlist; the schedulers ask for the same handful of
        # shapes thousands of times per run, so memoize per instance (the
        # dataclass is frozen -- every style variant gets fresh caches).
        object.__setattr__(self, "_delay_cache", {})
        object.__setattr__(self, "_area_cache", {})
        object.__setattr__(self, "_op_delay_cache", {})
        object.__setattr__(self, "_storage_area_cache", {})

    # ------------------------------------------------------------------
    # Delay unit conversions
    # ------------------------------------------------------------------
    @property
    def delta_ns(self) -> float:
        """Delay of one chained 1-bit addition (the paper's delta)."""
        return self.gates.full_adder_delay_ns

    def chained_bits_to_ns(self, chained_bits: float) -> float:
        """Convert a chained-1-bit-additions count to nanoseconds."""
        return chained_bits * self.delta_ns

    def cycle_length_ns(self, chained_bits: float) -> float:
        """Clock cycle length needed to fit *chained_bits* chained additions.

        Adds the per-cycle sequential overhead (register setup and clock
        skew), which is why the optimized cycle of Table I is 3.55 ns rather
        than exactly six adder-bit delays.
        """
        return self.chained_bits_to_ns(chained_bits) + self.gates.cycle_overhead_ns

    def ns_to_chained_bits(self, duration_ns: float) -> float:
        """Inverse conversion, ignoring the per-cycle overhead."""
        return duration_ns / self.delta_ns

    # ------------------------------------------------------------------
    # Functional units
    # ------------------------------------------------------------------
    def functional_unit_for(self, operation: Operation) -> Optional[FunctionalUnitSpec]:
        """The functional-unit class an operation executes on.

        Glue-logic operations return ``None``: they are absorbed into wiring
        (slices, concatenations, constant shifts) or implemented with a few
        gates whose cost the routing estimate covers.
        """
        kind = operation.kind
        width = operation.width
        if is_glue(kind):
            return None
        if kind in (OpKind.ADD, OpKind.SUB, OpKind.NEG, OpKind.ABS):
            return FunctionalUnitSpec("adder", max(width, operation.max_operand_width()))
        if kind in (OpKind.LT, OpKind.LE, OpKind.GT, OpKind.GE, OpKind.EQ, OpKind.NE):
            return FunctionalUnitSpec("comparator", operation.max_operand_width())
        if kind in (OpKind.MAX, OpKind.MIN):
            return FunctionalUnitSpec("maxmin", operation.max_operand_width())
        if kind is OpKind.MUL:
            return FunctionalUnitSpec("multiplier", operation.max_operand_width())
        return FunctionalUnitSpec("generic", width)

    def functional_unit_area(self, spec: FunctionalUnitSpec) -> float:
        """Area in equivalent gates of one functional unit instance."""
        cached = self._area_cache.get(spec)
        if cached is None:
            cached = self._compute_unit_area(spec)
            self._area_cache[spec] = cached
        return cached

    def _compute_unit_area(self, spec: FunctionalUnitSpec) -> float:
        width = spec.width
        if spec.category == "adder":
            return build_adder(width, self.adder_style, self.gates).area_gates
        if spec.category == "comparator":
            # Subtractor (adder + operand inverters) whose carry/borrow output
            # is the comparison result.
            adder = build_adder(width, self.adder_style, self.gates)
            return adder.area_gates + width * self.gates.inverter_area
        if spec.category == "maxmin":
            adder = build_adder(width, self.adder_style, self.gates)
            mux = build_multiplexer(2, width, self.gates)
            return adder.area_gates + width * self.gates.inverter_area + mux.area_gates
        if spec.category == "multiplier":
            return build_multiplier(
                width, width, self.multiplier_style, self.gates
            ).area_gates
        # Generic fallback: one gate-equivalent pair per bit.
        return width * 2.0

    def functional_unit_delay(self, spec: FunctionalUnitSpec) -> float:
        """Worst-case propagation delay in ns of one functional unit."""
        cached = self._delay_cache.get(spec)
        if cached is None:
            cached = self._compute_unit_delay(spec)
            self._delay_cache[spec] = cached
        return cached

    def _compute_unit_delay(self, spec: FunctionalUnitSpec) -> float:
        width = spec.width
        if spec.category == "adder":
            return build_adder(width, self.adder_style, self.gates).delay_ns
        if spec.category == "comparator":
            return (
                build_adder(width, self.adder_style, self.gates).delay_ns
                + self.gates.inverter_delay_ns
            )
        if spec.category == "maxmin":
            return (
                build_adder(width, self.adder_style, self.gates).delay_ns
                + self.gates.inverter_delay_ns
                + self.gates.mux_delay_ns(2)
            )
        if spec.category == "multiplier":
            return build_multiplier(
                width, width, self.multiplier_style, self.gates
            ).delay_ns
        return self.gates.and_gate_delay_ns

    # ------------------------------------------------------------------
    # Operation-level shortcuts
    # ------------------------------------------------------------------
    def operation_delay_ns(self, operation: Operation) -> float:
        """Propagation delay of one operation on its natural functional unit.

        Memoized by the operation's delay-relevant shape ``(kind, width,
        widest operand)`` -- the schedulers ask for the same handful of
        shapes once per candidate cycle per operation.
        """
        key = (operation.kind, operation.width, operation.max_operand_width())
        cached = self._op_delay_cache.get(key)
        if cached is None:
            spec = self.functional_unit_for(operation)
            cached = 0.0 if spec is None else self.functional_unit_delay(spec)
            self._op_delay_cache[key] = cached
        return cached

    def operation_chained_bits(self, operation: Operation) -> int:
        """Execution time of an operation in chained 1-bit additions.

        This is the unit used by the paper's phase 2: an additive operation of
        width ``w`` counts ``w`` chained bits; a multiplication counts the
        ripple depth of its array implementation (``m + n - 1``); glue logic
        counts zero.
        """
        kind = operation.kind
        if is_glue(kind):
            return 0
        if kind is OpKind.MUL:
            left, right = operation.operands[0].width, operation.operands[1].width
            return left + right - 1
        if kind in (OpKind.MAX, OpKind.MIN):
            return operation.max_operand_width() + 1
        return max(operation.width, operation.max_operand_width())

    # ------------------------------------------------------------------
    # Storage, routing and control
    # ------------------------------------------------------------------
    def register_area(self, width: int) -> float:
        """Area of one *width*-bit register (memoized per shape).

        The allocation stage asks for the same handful of register and
        multiplexer shapes on every sweep point, so both storage costs are
        cached alongside the functional-unit areas.
        """
        key = ("reg", width)
        cached = self._storage_area_cache.get(key)
        if cached is None:
            cached = build_register(width, self.gates).area_gates
            self._storage_area_cache[key] = cached
        return cached

    def multiplexer_area(self, fan_in: int, width: int) -> float:
        if fan_in <= 1:
            return 0.0
        key = (fan_in, width)
        cached = self._storage_area_cache.get(key)
        if cached is None:
            cached = build_multiplexer(fan_in, width, self.gates).area_gates
            self._storage_area_cache[key] = cached
        return cached

    def controller_area(self, states: int, control_signals: int) -> float:
        """Linear FSM controller cost model."""
        if states < 0 or control_signals < 0:
            raise ValueError("controller parameters must be non-negative")
        return (
            self.controller_base_area
            + states * self.controller_area_per_state
            + control_signals * self.controller_area_per_signal
        )

    # ------------------------------------------------------------------
    def with_adder_style(self, style: AdderStyle) -> "TechnologyLibrary":
        """A copy of the library using a different adder architecture."""
        return replace(self, adder_style=style, name=f"{self.name}-{style.value}")

    def with_multiplier_style(self, style: MultiplierStyle) -> "TechnologyLibrary":
        """A copy of the library using a different multiplier architecture."""
        return replace(self, multiplier_style=style, name=f"{self.name}-{style.value}")


_DEFAULT_LIBRARY: Optional[TechnologyLibrary] = None


def default_library() -> TechnologyLibrary:
    """The Table I calibrated library used throughout the experiments.

    Returned as a shared singleton: the library is a frozen dataclass whose
    only mutable state is its internal memo caches, so every run sharing the
    instance also shares the already-computed unit areas and delays.
    """
    global _DEFAULT_LIBRARY
    if _DEFAULT_LIBRARY is None:
        _DEFAULT_LIBRARY = TechnologyLibrary()
    return _DEFAULT_LIBRARY
