"""Adder architecture models: area, total delay and per-bit arrival times.

The paper's motivational example executes additions on ripple-carry adders
but notes that "big reductions in both the cycle length and the datapath area
can also be achieved by using faster and more expensive adders
(carry-lookahead, fast lookahead, and carry-save)".  The ablation benchmark
``benchmarks/test_ablation_adder_styles.py`` exercises exactly that remark, so
the library models several adder families:

* ``RIPPLE_CARRY`` -- linear delay, minimal area; the default and the one the
  chained-1-bit-addition delay metric of the paper corresponds to.
* ``CARRY_LOOKAHEAD`` -- logarithmic delay in 4-bit groups, larger area.
* ``FAST_LOOKAHEAD`` -- two-level lookahead, nearly flat delay, largest area.
* ``CARRY_SAVE`` -- for accumulation contexts; constant delay per level but it
  defers the final carry propagation, modelled as a final ripple stage.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import List

from .gates import DEFAULT_GATES, GateCosts


class AdderStyle(enum.Enum):
    """Supported adder architectures."""

    RIPPLE_CARRY = "ripple_carry"
    CARRY_LOOKAHEAD = "carry_lookahead"
    FAST_LOOKAHEAD = "fast_lookahead"
    CARRY_SAVE = "carry_save"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class AdderModel:
    """Area/delay model of one adder instance."""

    style: AdderStyle
    width: int
    area_gates: float
    delay_ns: float
    #: arrival time of every result bit (ns), LSB first -- the quantity behind
    #: the ``t + i*delta`` annotations of Fig. 1 e.
    bit_arrival_ns: List[float]


def _ripple_arrivals(width: int, gates: GateCosts) -> List[float]:
    return [(bit + 1) * gates.full_adder_delay_ns for bit in range(width)]


def _lookahead_arrivals(width: int, gates: GateCosts, group: int) -> List[float]:
    """Arrival model for group-based carry-lookahead adders.

    Within a group the sum bits ripple; group carries are produced by the
    lookahead network after roughly two gate levels per group crossed.
    """
    lookahead_level_ns = 2 * gates.and_gate_delay_ns + gates.or_gate_delay_ns
    arrivals: List[float] = []
    for bit in range(width):
        group_index = bit // group
        position_in_group = bit % group
        carry_ready = group_index * lookahead_level_ns
        arrivals.append(carry_ready + (position_in_group + 1) * gates.full_adder_delay_ns * 0.75)
    return arrivals


def _fast_lookahead_arrivals(width: int, gates: GateCosts) -> List[float]:
    """Two-level lookahead: delay grows with log2(width)."""
    level_ns = 2 * gates.and_gate_delay_ns + gates.or_gate_delay_ns
    levels = max(1, math.ceil(math.log2(max(2, width))))
    arrivals = []
    for bit in range(width):
        depth = max(1, math.ceil(math.log2(bit + 2)))
        arrivals.append(gates.xor_gate_delay_ns + depth * level_ns + gates.xor_gate_delay_ns)
        _ = levels
    return arrivals


def _carry_save_arrivals(width: int, gates: GateCosts) -> List[float]:
    """Carry-save stage (constant) followed by a final ripple merge."""
    save_stage = gates.full_adder_delay_ns
    return [save_stage + (bit + 1) * gates.full_adder_delay_ns for bit in range(width)]


def build_adder(
    width: int,
    style: AdderStyle = AdderStyle.RIPPLE_CARRY,
    gates: GateCosts = DEFAULT_GATES,
) -> AdderModel:
    """Construct the area/delay model for an adder of the given width."""
    if width <= 0:
        raise ValueError(f"adder width must be positive, got {width}")
    if style is AdderStyle.RIPPLE_CARRY:
        area = width * gates.full_adder_area
        arrivals = _ripple_arrivals(width, gates)
    elif style is AdderStyle.CARRY_LOOKAHEAD:
        group = 4
        groups = math.ceil(width / group)
        area = width * gates.full_adder_area + groups * 14.0
        arrivals = _lookahead_arrivals(width, gates, group)
    elif style is AdderStyle.FAST_LOOKAHEAD:
        area = width * gates.full_adder_area + width * 6.0
        arrivals = _fast_lookahead_arrivals(width, gates)
    elif style is AdderStyle.CARRY_SAVE:
        area = 2 * width * gates.full_adder_area
        arrivals = _carry_save_arrivals(width, gates)
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown adder style {style}")
    return AdderModel(
        style=style,
        width=width,
        area_gates=area,
        delay_ns=max(arrivals),
        bit_arrival_ns=arrivals,
    )


def adder_area(width: int, style: AdderStyle = AdderStyle.RIPPLE_CARRY,
               gates: GateCosts = DEFAULT_GATES) -> float:
    """Area in equivalent gates of a *width*-bit adder."""
    return build_adder(width, style, gates).area_gates


def adder_delay(width: int, style: AdderStyle = AdderStyle.RIPPLE_CARRY,
                gates: GateCosts = DEFAULT_GATES) -> float:
    """Worst-case delay in ns of a *width*-bit adder."""
    return build_adder(width, style, gates).delay_ns


def chained_bits_delay(chained_bits: int, gates: GateCosts = DEFAULT_GATES) -> float:
    """Delay of *chained_bits* chained 1-bit additions -- the paper's metric."""
    if chained_bits < 0:
        raise ValueError("chained bit count must be non-negative")
    return chained_bits * gates.full_adder_delay_ns
