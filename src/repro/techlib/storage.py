"""Storage and steering cost models: registers and multiplexers.

Table I of the paper itemises the register and routing costs of each
implementation (e.g. the optimized datapath needs only five 1-bit registers,
55 gates, because most result bits are consumed in the cycle that produces
them).  The allocation stage of :mod:`repro.hls` uses these models to price
the storage and interconnect of every datapath it assembles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .gates import DEFAULT_GATES, GateCosts


@dataclass(frozen=True)
class RegisterModel:
    """Area model of one register of a given width."""

    width: int
    area_gates: float


def build_register(width: int, gates: GateCosts = DEFAULT_GATES) -> RegisterModel:
    """Area of a *width*-bit edge-triggered register with load enable."""
    if width <= 0:
        raise ValueError(f"register width must be positive, got {width}")
    area = width * gates.flip_flop_area + gates.register_overhead_area
    return RegisterModel(width=width, area_gates=area)


def register_area(width: int, gates: GateCosts = DEFAULT_GATES) -> float:
    return build_register(width, gates).area_gates


def register_setup_ns(gates: GateCosts = DEFAULT_GATES) -> float:
    """Setup time charged at the receiving end of every cycle."""
    return gates.flip_flop_setup_ns


@dataclass(frozen=True)
class MultiplexerModel:
    """Area/delay model of an N-to-1 multiplexer of a given width."""

    fan_in: int
    width: int
    area_gates: float
    delay_ns: float


def build_multiplexer(
    fan_in: int, width: int, gates: GateCosts = DEFAULT_GATES
) -> MultiplexerModel:
    """Model an *fan_in*-to-1 multiplexer, *width* bits wide.

    A fan-in of 0 or 1 means the input is wired directly and costs nothing.
    """
    if fan_in < 0:
        raise ValueError(f"multiplexer fan-in must be non-negative, got {fan_in}")
    if width <= 0:
        raise ValueError(f"multiplexer width must be positive, got {width}")
    area = gates.mux_area_per_bit(fan_in) * width
    delay = gates.mux_delay_ns(fan_in)
    return MultiplexerModel(fan_in=fan_in, width=width, area_gates=area, delay_ns=delay)


def multiplexer_area(fan_in: int, width: int, gates: GateCosts = DEFAULT_GATES) -> float:
    return build_multiplexer(fan_in, width, gates).area_gates


def routing_area(mux_specs: Sequence, gates: GateCosts = DEFAULT_GATES) -> float:
    """Total area of a list of ``(fan_in, width)`` multiplexer requirements."""
    total = 0.0
    for fan_in, width in mux_specs:
        if fan_in > 1:
            total += multiplexer_area(fan_in, width, gates)
    return total
