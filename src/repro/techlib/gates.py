"""Gate-level primitive costs.

This module is the substitute for the Synopsys Design Compiler technology
library used in the paper.  All areas are expressed in *equivalent gates*
(NAND2 equivalents, the unit of Table I of the paper) and all delays in
nanoseconds.

Calibration
-----------
The default constants are calibrated against the paper's Table I so that the
reproduction reports lie on the same scale:

* a 16-bit ripple-carry adder costs 162 gates and takes 9.4 ns
  (``10.125`` gates and ``0.5875`` ns per full-adder bit),
* a 16-bit register costs 81 gates and a 1-bit register 11 gates
  (``4.7`` gates per flip-flop plus ``6.2`` gates of load-enable overhead
  per register, matching both the 81-gate and the 5 x 11-gate rows of
  Table I),
* the Table I routing mix (two 3:1 and one 2:1 16-bit multiplexers) costs
  176 gates (``2.2`` gates per 2:1 multiplexer bit).

Absolute values are technology dependent and are *not* the claim being
reproduced; relative comparisons (original vs optimized vs bit-level-chained
implementations) are.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GateCosts:
    """Area (equivalent gates) and delay (ns) of the primitive cells."""

    # Arithmetic primitives -------------------------------------------------
    full_adder_area: float = 10.125
    full_adder_delay_ns: float = 0.5875
    half_adder_area: float = 6.0
    half_adder_delay_ns: float = 0.40

    # Simple gates -----------------------------------------------------------
    inverter_area: float = 0.75
    inverter_delay_ns: float = 0.05
    and_gate_area: float = 1.5
    and_gate_delay_ns: float = 0.29
    or_gate_area: float = 1.5
    or_gate_delay_ns: float = 0.29
    xor_gate_area: float = 2.5
    xor_gate_delay_ns: float = 0.33

    # Storage and steering ----------------------------------------------------
    flip_flop_area: float = 4.7
    register_overhead_area: float = 6.2
    flip_flop_setup_ns: float = 0.15
    flip_flop_clk_to_q_ns: float = 0.20
    mux2_area_per_bit: float = 2.2
    mux2_delay_ns: float = 0.10

    # Clocking overhead charged once per cycle (register setup + clock skew).
    cycle_overhead_ns: float = 0.05

    def mux_area_per_bit(self, fan_in: int) -> float:
        """Area of one bit of an *fan_in*-to-1 multiplexer tree."""
        if fan_in <= 1:
            return 0.0
        return (fan_in - 1) * self.mux2_area_per_bit

    def mux_delay_ns(self, fan_in: int) -> float:
        """Delay through an *fan_in*-to-1 multiplexer tree."""
        if fan_in <= 1:
            return 0.0
        levels = max(1, (fan_in - 1).bit_length())
        return levels * self.mux2_delay_ns


#: Library-wide default cell costs (Table I calibration).
DEFAULT_GATES = GateCosts()
