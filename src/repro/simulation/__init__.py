"""Behavioural simulation: interpreter, batch engine, stimulus, equivalence."""

from .batch import (
    BatchInterpreter,
    BatchSimulationResult,
    pack_lanes,
    simulate_batch,
    unpack_planes,
)
from .equivalence import (
    EquivalenceError,
    EquivalenceReport,
    Mismatch,
    assert_equivalent,
    check_equivalence,
)
from .interpreter import Interpreter, SimulationError, SimulationResult, simulate
from .vectors import corner_vectors, random_vector, random_vectors, stimulus

__all__ = [
    "BatchInterpreter",
    "BatchSimulationResult",
    "EquivalenceError",
    "EquivalenceReport",
    "Interpreter",
    "Mismatch",
    "SimulationError",
    "SimulationResult",
    "assert_equivalent",
    "check_equivalence",
    "corner_vectors",
    "pack_lanes",
    "random_vector",
    "random_vectors",
    "simulate",
    "simulate_batch",
    "stimulus",
    "unpack_planes",
]
