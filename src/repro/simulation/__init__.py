"""Behavioural simulation: interpreter, stimulus generation, equivalence."""

from .equivalence import (
    EquivalenceError,
    EquivalenceReport,
    Mismatch,
    assert_equivalent,
    check_equivalence,
)
from .interpreter import Interpreter, SimulationError, SimulationResult, simulate
from .vectors import corner_vectors, random_vector, random_vectors, stimulus

__all__ = [
    "EquivalenceError",
    "EquivalenceReport",
    "Interpreter",
    "Mismatch",
    "SimulationError",
    "SimulationResult",
    "assert_equivalent",
    "check_equivalence",
    "corner_vectors",
    "random_vector",
    "random_vectors",
    "simulate",
    "stimulus",
]
