"""Bit-accurate interpretation of behavioural specifications.

The interpreter is the functional oracle of the reproduction: the transformed
specification produced by :mod:`repro.core.transform` must compute exactly the
same output values as the original one, bit for bit, including the carry bits
threaded between fragments.  The equivalence checker in
:mod:`repro.simulation.equivalence` drives this interpreter on both
specifications with common random stimuli.

Value semantics
---------------
Every variable holds a raw (unsigned) bit pattern of its declared width.
Operand values are the raw bits of the referenced slice; an operand is
interpreted as a two's complement number only when it covers the *whole* of a
signed variable (the usual HLS behavioural semantics -- slicing yields raw
bits).  Results are wrapped to the destination width.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from ..ir.operations import Operation, OpKind
from ..ir.spec import Specification
from ..ir.types import extract_bits, insert_bits
from ..ir.values import Constant, Operand, Variable


class SimulationError(RuntimeError):
    """Raised when a specification cannot be interpreted."""


@dataclass
class SimulationResult:
    """Outputs and full execution trace of one interpreter run."""

    specification_name: str
    inputs: Dict[str, int]
    outputs: Dict[str, int]
    #: Raw bit pattern of every variable at the end of execution.
    final_state: Dict[str, int]
    #: Result bits written by each operation, keyed by operation name.
    operation_results: Dict[str, int] = field(default_factory=dict)

    def output(self, name: str) -> int:
        try:
            return self.outputs[name]
        except KeyError:
            raise SimulationError(f"no output named {name!r}") from None


class Interpreter:
    """Evaluates a :class:`~repro.ir.spec.Specification` on concrete inputs.

    ``engine`` selects the evaluation core: ``None``/``"auto"``/``"plane"``
    run the vector as a width-1 batch through the compiled plan of
    :mod:`repro.engine` (one shared core with the batch oracle);
    ``"legacy"`` runs the original per-operation integer loop.  Both are
    bit-identical, traces included.  With no explicit choice a
    ``REPRO_ENGINE=legacy`` environment override selects the legacy loop
    (any other override value keeps the plan path), mirroring the batch
    engines.
    """

    def __init__(
        self, specification: Specification, engine: Optional[str] = None
    ) -> None:
        if engine is None:
            import os

            engine = "legacy" if os.environ.get("REPRO_ENGINE") == "legacy" else "plane"
        if engine not in ("auto", "plane", "legacy"):
            raise SimulationError(
                f"unknown interpreter engine {engine!r}; "
                "expected 'auto', 'plane' or 'legacy'"
            )
        self.specification = specification
        self.engine = engine

    # ------------------------------------------------------------------
    def run(self, inputs: Mapping[str, int]) -> SimulationResult:
        """Execute the specification body once.

        Parameters
        ----------
        inputs:
            Mapping of input-port name to integer value.  Signed ports accept
            negative values; all values must fit the port type.
        """
        state = self._initial_state(inputs)
        operation_results: Dict[str, int] = {}
        if self.engine == "legacy":
            for operation in self.specification.operations:
                result_bits = self._evaluate(operation, state)
                operation_results[operation.name] = result_bits
                destination = operation.destination
                variable = destination.variable
                state[variable.uid] = insert_bits(
                    state.get(variable.uid, 0), destination.range, result_bits
                )
        else:
            self._run_plan(state, operation_results)
        outputs: Dict[str, int] = {}
        final_state: Dict[str, int] = {}
        for variable in self.specification.variables:
            raw = state.get(variable.uid, 0) & variable.type.mask
            final_state[variable.name] = raw
            if variable.is_output():
                outputs[variable.name] = variable.type.from_unsigned_bits(raw)
        return SimulationResult(
            specification_name=self.specification.name,
            inputs=dict(inputs),
            outputs=outputs,
            final_state=final_state,
            operation_results=operation_results,
        )

    # ------------------------------------------------------------------
    def _run_plan(
        self, state: Dict[int, int], operation_results: Dict[str, int]
    ) -> None:
        """Evaluate as a single-lane batch on the shared bit-plane core.

        At one lane the big-int planes degenerate to single bits, so the
        plane state of a variable *is* its bit pattern transposed; packing
        and unpacking are simple bit loops over the integer state.
        """
        from ..engine import BigIntContext, run_spec_plan, spec_plan

        plan = spec_plan(self.specification)
        ctx = BigIntContext(1)
        plane_state: Dict[int, list] = {}
        for variable in self.specification.variables:
            bits = state.get(variable.uid, 0)
            plane_state[variable.uid] = [
                (bits >> index) & 1 for index in range(variable.width)
            ]
        record: list = []
        run_spec_plan(plan, ctx, plane_state, record=record)
        for name, planes in zip(plan.operation_names, record):
            value = 0
            for index, plane in enumerate(planes):
                if plane:
                    value |= 1 << index
            operation_results[name] = value
        for variable in self.specification.variables:
            planes = plane_state[variable.uid]
            bits = 0
            for index, plane in enumerate(planes):
                if plane:
                    bits |= 1 << index
            state[variable.uid] = bits

    # ------------------------------------------------------------------
    def _initial_state(self, inputs: Mapping[str, int]) -> Dict[int, int]:
        state: Dict[int, int] = {}
        declared_inputs = {port.name: port for port in self.specification.inputs()}
        unknown = set(inputs) - set(declared_inputs)
        if unknown:
            raise SimulationError(
                f"unknown input(s) {sorted(unknown)} for specification "
                f"{self.specification.name}"
            )
        missing = set(declared_inputs) - set(inputs)
        if missing:
            raise SimulationError(
                f"missing value(s) for input(s) {sorted(missing)}"
            )
        for name, port in declared_inputs.items():
            value = inputs[name]
            if not port.type.contains(value):
                raise SimulationError(
                    f"input {name}={value} does not fit {port.type}"
                )
            state[port.uid] = port.type.to_unsigned_bits(value)
        for variable in self.specification.variables:
            state.setdefault(variable.uid, 0)
        return state

    # ------------------------------------------------------------------
    def _operand_bits(self, operand: Operand, state: Dict[int, int]) -> int:
        """Raw bit pattern of an operand slice."""
        if operand.is_constant:
            constant: Constant = operand.constant
            return extract_bits(constant.bits, operand.range)
        variable: Variable = operand.variable
        return extract_bits(state[variable.uid], operand.range)

    def _operand_value(self, operand: Operand, state: Dict[int, int]) -> int:
        """Operand value with signedness applied when meaningful."""
        bits = self._operand_bits(operand, state)
        source = operand.source
        if source.signed and operand.covers_whole_source():
            width = operand.width
            if bits >= 1 << (width - 1):
                return bits - (1 << width)
        return bits

    # ------------------------------------------------------------------
    def _evaluate(self, operation: Operation, state: Dict[int, int]) -> int:
        kind = operation.kind
        width = operation.width
        mask = (1 << width) - 1
        operands = operation.operands
        carry = 0
        if operation.carry_in is not None:
            carry = self._operand_bits(operation.carry_in, state) & 1

        if kind is OpKind.ADD:
            a = self._operand_value(operands[0], state)
            b = self._operand_value(operands[1], state)
            return (a + b + carry) & mask
        if kind is OpKind.SUB:
            a = self._operand_value(operands[0], state)
            b = self._operand_value(operands[1], state)
            return (a - b + carry) & mask
        if kind is OpKind.MUL:
            a = self._operand_value(operands[0], state)
            b = self._operand_value(operands[1], state)
            return (a * b) & mask
        if kind in (
            OpKind.LT,
            OpKind.LE,
            OpKind.GT,
            OpKind.GE,
            OpKind.EQ,
            OpKind.NE,
        ):
            a = self._operand_value(operands[0], state)
            b = self._operand_value(operands[1], state)
            outcome = {
                OpKind.LT: a < b,
                OpKind.LE: a <= b,
                OpKind.GT: a > b,
                OpKind.GE: a >= b,
                OpKind.EQ: a == b,
                OpKind.NE: a != b,
            }[kind]
            return int(outcome) & mask
        if kind is OpKind.MAX:
            a = self._operand_value(operands[0], state)
            b = self._operand_value(operands[1], state)
            return max(a, b) & mask
        if kind is OpKind.MIN:
            a = self._operand_value(operands[0], state)
            b = self._operand_value(operands[1], state)
            return min(a, b) & mask
        if kind is OpKind.NEG:
            a = self._operand_value(operands[0], state)
            return (-a) & mask
        if kind is OpKind.ABS:
            a = self._operand_value(operands[0], state)
            return abs(a) & mask
        if kind is OpKind.AND:
            return (
                self._operand_bits(operands[0], state)
                & self._operand_bits(operands[1], state)
            ) & mask
        if kind is OpKind.OR:
            return (
                self._operand_bits(operands[0], state)
                | self._operand_bits(operands[1], state)
            ) & mask
        if kind is OpKind.XOR:
            return (
                self._operand_bits(operands[0], state)
                ^ self._operand_bits(operands[1], state)
            ) & mask
        if kind is OpKind.NOT:
            return (~self._operand_bits(operands[0], state)) & mask
        if kind is OpKind.SHL:
            amount = int(operation.attributes.get("shift", 0))
            return (self._operand_bits(operands[0], state) << amount) & mask
        if kind is OpKind.SHR:
            amount = int(operation.attributes.get("shift", 0))
            return (self._operand_bits(operands[0], state) >> amount) & mask
        if kind is OpKind.CONCAT:
            # operands[0] provides the least significant bits.
            value = 0
            offset = 0
            for operand in operands:
                value |= self._operand_bits(operand, state) << offset
                offset += operand.width
            return value & mask
        if kind is OpKind.SELECT:
            condition = self._operand_bits(operands[0], state) & 1
            chosen = operands[1] if condition else operands[2]
            return self._operand_bits(chosen, state) & mask
        if kind is OpKind.MOVE:
            return self._operand_bits(operands[0], state) & mask
        raise SimulationError(f"interpreter does not support operation kind {kind}")


def simulate(specification: Specification, inputs: Mapping[str, int]) -> SimulationResult:
    """One-shot convenience wrapper around :class:`Interpreter`."""
    return Interpreter(specification).run(inputs)
