"""Functional-equivalence checking between two specifications.

The presynthesis transformation of the paper must preserve behaviour: the
optimized specification of Fig. 2 a computes exactly the values of the
original specification of Fig. 1 a.  This module checks that property by
co-simulating both specifications over a shared stimulus set and comparing
the output-port values bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..ir.spec import Specification
from .interpreter import Interpreter, SimulationError
from .vectors import stimulus


class EquivalenceError(AssertionError):
    """Raised by :func:`assert_equivalent` when outputs disagree."""


@dataclass
class Mismatch:
    """One disagreeing output for one input vector."""

    inputs: Dict[str, int]
    output: str
    reference_value: int
    candidate_value: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"output {self.output}: reference={self.reference_value} "
            f"candidate={self.candidate_value} for inputs {self.inputs}"
        )


@dataclass
class EquivalenceReport:
    """Outcome of an equivalence run."""

    reference_name: str
    candidate_name: str
    vectors_checked: int = 0
    mismatches: List[Mismatch] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        status = "EQUIVALENT" if self.equivalent else "NOT EQUIVALENT"
        lines = [
            f"{self.reference_name} vs {self.candidate_name}: {status} "
            f"({self.vectors_checked} vectors)"
        ]
        lines.extend(str(mismatch) for mismatch in self.mismatches[:10])
        if len(self.mismatches) > 10:
            lines.append(f"... {len(self.mismatches) - 10} further mismatches")
        return "\n".join(lines)


def _common_interface(
    reference: Specification, candidate: Specification
) -> None:
    """Both specifications must expose the same ports with the same types."""
    ref_inputs = {p.name: p.type for p in reference.inputs()}
    cand_inputs = {p.name: p.type for p in candidate.inputs()}
    if ref_inputs != cand_inputs:
        raise SimulationError(
            "input interfaces differ: "
            f"{sorted(ref_inputs)} vs {sorted(cand_inputs)}"
        )
    ref_outputs = {p.name: p.type.width for p in reference.outputs()}
    cand_outputs = {p.name: p.type.width for p in candidate.outputs()}
    if set(ref_outputs) != set(cand_outputs):
        raise SimulationError(
            "output interfaces differ: "
            f"{sorted(ref_outputs)} vs {sorted(cand_outputs)}"
        )
    for name, width in ref_outputs.items():
        if cand_outputs[name] != width:
            raise SimulationError(
                f"output {name} width differs: {width} vs {cand_outputs[name]}"
            )


def check_equivalence(
    reference: Specification,
    candidate: Specification,
    vectors: Optional[Sequence[Mapping[str, int]]] = None,
    random_count: int = 100,
    seed: int = 2005,
    stop_at: Optional[int] = 25,
) -> EquivalenceReport:
    """Co-simulate both specifications and report mismatching outputs.

    Output values are compared as raw bit patterns so that signedness
    differences introduced by the operative kernel extraction (which rewrites
    signed operations as unsigned ones) do not cause false mismatches.
    """
    _common_interface(reference, candidate)
    if vectors is None:
        vectors = stimulus(reference, random_count=random_count, seed=seed)
    report = EquivalenceReport(reference.name, candidate.name)
    reference_interpreter = Interpreter(reference)
    candidate_interpreter = Interpreter(candidate)
    output_names = [port.name for port in reference.outputs()]
    for vector in vectors:
        reference_run = reference_interpreter.run(vector)
        candidate_run = candidate_interpreter.run(vector)
        report.vectors_checked += 1
        for name in output_names:
            reference_bits = reference_run.final_state[name]
            candidate_bits = candidate_run.final_state[name]
            if reference_bits != candidate_bits:
                report.mismatches.append(
                    Mismatch(dict(vector), name, reference_bits, candidate_bits)
                )
        if stop_at is not None and len(report.mismatches) >= stop_at:
            break
    return report


def assert_equivalent(
    reference: Specification,
    candidate: Specification,
    **kwargs,
) -> EquivalenceReport:
    """Raise :class:`EquivalenceError` unless the two specifications agree."""
    report = check_equivalence(reference, candidate, **kwargs)
    if not report.equivalent:
        raise EquivalenceError(report.summary())
    return report
