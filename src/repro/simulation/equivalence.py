"""Functional-equivalence checking between two specifications.

The presynthesis transformation of the paper must preserve behaviour: the
optimized specification of Fig. 2 a computes exactly the values of the
original specification of Fig. 1 a.  This module checks that property by
co-simulating both specifications over a shared stimulus set and comparing
the output-port values bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..ir.spec import Specification
from .batch import BatchInterpreter, unpack_planes
from .interpreter import Interpreter, SimulationError
from .vectors import stimulus

#: Default lane count of one batch-engine sweep.  Bounds the big-int width
#: (and the cost of a mismatch unpack) without changing results: chunks are
#: compared in vector order, so mismatch ordering matches the scalar engine
#: exactly.  Tunable per run via ``check_equivalence(chunk_lanes=...)`` and
#: the ``FlowConfig.equivalence_chunk_lanes`` execution field.
BATCH_CHUNK_LANES = 256


class EquivalenceError(AssertionError):
    """Raised by :func:`assert_equivalent` when outputs disagree."""


@dataclass
class Mismatch:
    """One disagreeing output for one input vector."""

    inputs: Dict[str, int]
    output: str
    reference_value: int
    candidate_value: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"output {self.output}: reference={self.reference_value} "
            f"candidate={self.candidate_value} for inputs {self.inputs}"
        )


@dataclass
class EquivalenceReport:
    """Outcome of an equivalence run."""

    reference_name: str
    candidate_name: str
    vectors_checked: int = 0
    mismatches: List[Mismatch] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        status = "EQUIVALENT" if self.equivalent else "NOT EQUIVALENT"
        lines = [
            f"{self.reference_name} vs {self.candidate_name}: {status} "
            f"({self.vectors_checked} vectors)"
        ]
        lines.extend(str(mismatch) for mismatch in self.mismatches[:10])
        if len(self.mismatches) > 10:
            lines.append(f"... {len(self.mismatches) - 10} further mismatches")
        return "\n".join(lines)


def _common_interface(
    reference: Specification, candidate: Specification
) -> None:
    """Both specifications must expose the same ports with the same types."""
    ref_inputs = {p.name: p.type for p in reference.inputs()}
    cand_inputs = {p.name: p.type for p in candidate.inputs()}
    if ref_inputs != cand_inputs:
        raise SimulationError(
            "input interfaces differ: "
            f"{sorted(ref_inputs)} vs {sorted(cand_inputs)}"
        )
    ref_outputs = {p.name: p.type.width for p in reference.outputs()}
    cand_outputs = {p.name: p.type.width for p in candidate.outputs()}
    if set(ref_outputs) != set(cand_outputs):
        raise SimulationError(
            "output interfaces differ: "
            f"{sorted(ref_outputs)} vs {sorted(cand_outputs)}"
        )
    for name, width in ref_outputs.items():
        if cand_outputs[name] != width:
            raise SimulationError(
                f"output {name} width differs: {width} vs {cand_outputs[name]}"
            )


def check_equivalence(
    reference: Specification,
    candidate: Specification,
    vectors: Optional[Sequence[Mapping[str, int]]] = None,
    random_count: int = 100,
    seed: int = 2005,
    stop_at: Optional[int] = 25,
    engine: str = "batch",
    chunk_lanes: Optional[int] = None,
    backend: Optional[str] = None,
) -> EquivalenceReport:
    """Co-simulate both specifications and report mismatching outputs.

    Output values are compared as raw bit patterns so that signedness
    differences introduced by the operative kernel extraction (which rewrites
    signed operations as unsigned ones) do not cause false mismatches.

    ``engine`` selects the simulation engine: ``"batch"`` (the default)
    evaluates every stimulus vector simultaneously through the lane-packed
    :class:`~repro.simulation.batch.BatchInterpreter`; ``"scalar"`` runs the
    per-vector :class:`~repro.simulation.interpreter.Interpreter`.  Both
    engines produce bit-identical reports -- the batch engine exists because
    it is an order of magnitude faster at sweep-scale vector counts.

    ``chunk_lanes`` bounds the lane count of one batch-engine sweep
    (default :data:`BATCH_CHUNK_LANES`); any positive value produces the
    same report, chunks being compared in vector order.

    ``backend`` selects the bit-plane core under the batch engine
    (``None``/``"auto"``, ``"bigint"``, ``"numpy"``, or ``"legacy"`` for
    the pre-plan SWAR loop); every choice is bit-identical.
    """
    if engine not in ("batch", "scalar"):
        raise ValueError(f"unknown equivalence engine {engine!r}")
    if chunk_lanes is not None and chunk_lanes < 1:
        raise ValueError(f"chunk_lanes must be >= 1, got {chunk_lanes}")
    _common_interface(reference, candidate)
    if vectors is None:
        vectors = stimulus(reference, random_count=random_count, seed=seed)
    report = EquivalenceReport(reference.name, candidate.name)
    output_names = [port.name for port in reference.outputs()]
    if engine == "batch":
        _check_batch(
            reference,
            candidate,
            vectors,
            output_names,
            report,
            stop_at,
            chunk_lanes or BATCH_CHUNK_LANES,
            backend,
        )
        return report
    reference_interpreter = Interpreter(reference)
    candidate_interpreter = Interpreter(candidate)
    for vector in vectors:
        reference_run = reference_interpreter.run(vector)
        candidate_run = candidate_interpreter.run(vector)
        report.vectors_checked += 1
        for name in output_names:
            reference_bits = reference_run.final_state[name]
            candidate_bits = candidate_run.final_state[name]
            if reference_bits != candidate_bits:
                report.mismatches.append(
                    Mismatch(dict(vector), name, reference_bits, candidate_bits)
                )
        if stop_at is not None and len(report.mismatches) >= stop_at:
            break
    return report


def _check_batch(
    reference: Specification,
    candidate: Specification,
    vectors: Sequence[Mapping[str, int]],
    output_names: Sequence[str],
    report: EquivalenceReport,
    stop_at: Optional[int],
    chunk_lanes: int = BATCH_CHUNK_LANES,
    backend: Optional[str] = None,
) -> None:
    """Batch-engine comparison, chunked to bound lane width.

    The fast path never unpacks: two equal runs compare plane-for-plane (one
    big-int equality per output bit).  Only chunks with a differing plane
    fall back to per-lane unpacking, walking lanes in vector order so that
    mismatch ordering and the ``stop_at`` cutoff replicate the scalar engine.
    """
    reference_interpreter = BatchInterpreter(reference, engine=backend)
    candidate_interpreter = BatchInterpreter(candidate, engine=backend)
    vectors = list(vectors)
    for start in range(0, len(vectors), chunk_lanes):
        chunk = vectors[start : start + chunk_lanes]
        # Both sides share one input interface (checked above), so each
        # chunk is validated and lane-packed exactly once.
        packed = reference_interpreter.pack_inputs(chunk)
        reference_run = reference_interpreter.run_batch(chunk, packed_inputs=packed)
        candidate_run = candidate_interpreter.run_batch(chunk, packed_inputs=packed)
        mismatch_lanes = 0
        for name in output_names:
            for ref_plane, cand_plane in zip(
                reference_run.final_planes[name], candidate_run.final_planes[name]
            ):
                mismatch_lanes |= ref_plane ^ cand_plane
        if not mismatch_lanes:
            report.vectors_checked += len(chunk)
            continue
        # Slow path: at least one lane disagrees somewhere in this chunk.
        reference_values = {
            name: unpack_planes(reference_run.final_planes[name], len(chunk))
            for name in output_names
        }
        candidate_values = {
            name: unpack_planes(candidate_run.final_planes[name], len(chunk))
            for name in output_names
        }
        for lane, vector in enumerate(chunk):
            report.vectors_checked += 1
            for name in output_names:
                reference_bits = reference_values[name][lane]
                candidate_bits = candidate_values[name][lane]
                if reference_bits != candidate_bits:
                    report.mismatches.append(
                        Mismatch(dict(vector), name, reference_bits, candidate_bits)
                    )
            if stop_at is not None and len(report.mismatches) >= stop_at:
                return


def assert_equivalent(
    reference: Specification,
    candidate: Specification,
    **kwargs,
) -> EquivalenceReport:
    """Raise :class:`EquivalenceError` unless the two specifications agree."""
    report = check_equivalence(reference, candidate, **kwargs)
    if not report.equivalent:
        raise EquivalenceError(report.summary())
    return report
