"""Lane-packed (SWAR) batch interpretation: all stimulus vectors in one pass.

The scalar :class:`~repro.simulation.interpreter.Interpreter` evaluates one
input vector at a time, so an equivalence run over ``N`` vectors costs
``O(operations x N)`` Python-level dispatches.  The batch engine packs one
stimulus vector per *bit-lane* of Python big integers and evaluates every
lane simultaneously, so the same run costs ``O(operations x width)`` big-int
operations however many vectors are checked.

Representation
--------------
The state of a ``w``-bit variable is a list of ``w`` *bit planes* (a
transposed, bit-sliced layout): plane ``i`` is a big integer whose bit ``j``
holds bit ``i`` of the variable's value in stimulus vector ``j``.  With that
layout:

* bitwise operations (AND/OR/XOR/NOT, moves, shifts by constants, concats,
  selects) act plane-wise -- one big-int operation per result bit;
* additions ripple a *carry plane* through the result planes (the classic
  software full adder: ``sum = a ^ b ^ c``, ``c = (a & b) | (c & (a ^ b))``),
  subtraction rides the same ripple with the subtrahend's planes inverted and
  the carry-in plane forced to all-ones (two's complement);
* multiplications accumulate partial products ``(a & b_i) << i`` with the
  same ripple;
* comparisons run a borrow ripple from the LSB plane upward after both
  operands are extended to a common signed width (sign-extension replicates
  the top plane, zero-extension appends empty planes);
* per-lane wrap masks are free: a destination of width ``w`` simply has
  ``w`` planes, and ``NOT`` masks against the lane mask (ones in every used
  lane) so unused high lanes never leak set bits.

Results are wrapped per lane exactly as the scalar interpreter wraps them, so
per-lane unpacking is bit-identical to running the scalar interpreter on each
vector individually -- the property tests in
``tests/simulation/test_batch.py`` pin exactly that, workload by workload.

The engine mirrors the scalar interpreter's *value semantics*: an operand is
sign-extended only when it covers the whole of a signed source, otherwise its
raw slice bits are zero-extended (see :mod:`repro.simulation.interpreter`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..ir.operations import Operation, OpKind
from ..ir.spec import Specification
from ..ir.values import Operand
from .interpreter import SimulationError

#: Plane list of one variable: entry ``i`` carries bit ``i`` of every lane.
Planes = List[int]


@dataclass
class BatchSimulationResult:
    """Lane-packed outputs of one batch run.

    The planes stay packed: comparing two batch results costs one big-int
    comparison per output bit, and only mismatching lanes ever pay for
    unpacking.  Use :meth:`output_lanes` / :meth:`final_state_lanes` to
    recover per-vector integers.
    """

    specification_name: str
    lanes: int
    #: packed raw bit planes of every variable, by variable name
    final_planes: Dict[str, Planes] = field(default_factory=dict)
    #: names of the output ports, in declaration order
    output_names: List[str] = field(default_factory=list)
    #: signedness of each output port (for value decoding)
    _signed: Dict[str, bool] = field(default_factory=dict)

    def final_state_lanes(self, name: str) -> List[int]:
        """Raw (unsigned) bit pattern of a variable, one integer per lane."""
        planes = self.final_planes.get(name)
        if planes is None:
            raise SimulationError(f"no variable named {name!r}")
        return unpack_planes(planes, self.lanes)

    def output_lanes(self, name: str) -> List[int]:
        """Decoded values of an output port, one integer per lane."""
        if name not in self.output_names:
            raise SimulationError(f"no output named {name!r}")
        planes = self.final_planes[name]
        raw = unpack_planes(planes, self.lanes)
        if not self._signed.get(name):
            return raw
        width = len(planes)
        half = 1 << (width - 1)
        full = 1 << width
        return [value - full if value >= half else value for value in raw]


def pack_lanes(values: Sequence[int], width: int) -> Planes:
    """Transpose per-lane integers into *width* bit planes (lane ``j`` = bit ``j``)."""
    planes = [0] * width
    mask = (1 << width) - 1
    for lane, value in enumerate(values):
        bit = 1 << lane
        remaining = value & mask
        while remaining:
            low = remaining & -remaining
            planes[low.bit_length() - 1] |= bit
            remaining ^= low
    return planes


def unpack_planes(planes: Sequence[int], lanes: int) -> List[int]:
    """Inverse of :func:`pack_lanes`: one integer per lane."""
    values = [0] * lanes
    for index, plane in enumerate(planes):
        if not plane:
            continue
        weight = 1 << index
        remaining = plane
        lane = 0
        while remaining:
            if remaining & 1:
                values[lane] += weight
            remaining >>= 1
            lane += 1
    return values


class BatchInterpreter:
    """Evaluates a specification on *all* vectors of a stimulus set at once.

    ``engine`` selects the evaluation core: ``None``/``"auto"`` compile the
    specification once through :mod:`repro.engine` and pick the plane
    backend by lane count, ``"bigint"``/``"numpy"`` force a backend, and
    ``"legacy"`` runs the original per-operation SWAR loop kept for
    differential testing.  Every choice is bit-identical.
    """

    def __init__(
        self, specification: Specification, engine: Optional[str] = None
    ) -> None:
        from ..engine import resolve_backend

        self.specification = specification
        self.engine = resolve_backend(engine)

    # ------------------------------------------------------------------
    def pack_inputs(self, vectors: Sequence[Mapping[str, int]]) -> Dict[str, Planes]:
        """Validate and lane-pack the input columns, keyed by port name.

        The result can be fed back through ``run_batch(vectors,
        packed_inputs=...)`` -- and, because it is keyed by *name*, reused by
        any specification with the same input interface, which is how
        equivalence checking packs each stimulus chunk once for both sides.
        """
        lanes = len(vectors)
        if lanes == 0:
            raise SimulationError("batch run needs at least one stimulus vector")
        declared = {port.name: port for port in self.specification.inputs()}
        # Per-port bounds hoisted out of the per-vector loop: the property
        # chains behind ``type.contains`` dominate batch setup otherwise.
        bounds = {
            name: (port.type.min_value, port.type.max_value, port.type.mask)
            for name, port in declared.items()
        }
        columns: Dict[str, List[int]] = {name: [0] * lanes for name in declared}
        port_count = len(declared)
        for lane, vector in enumerate(vectors):
            try:
                for name, value in vector.items():
                    low, high, mask = bounds[name]
                    if value < low or value > high:
                        raise SimulationError(
                            f"input {name}={value} does not fit "
                            f"{declared[name].type} (vector {lane})"
                        )
                    columns[name][lane] = value & mask
            except KeyError:
                unknown = set(vector) - set(declared)
                raise SimulationError(
                    f"unknown input(s) {sorted(unknown)} for specification "
                    f"{self.specification.name} (vector {lane})"
                ) from None
            if len(vector) != port_count:
                missing = set(declared) - set(vector)
                raise SimulationError(
                    f"missing value(s) for input(s) {sorted(missing)} (vector {lane})"
                )
        return {
            name: pack_lanes(columns[name], declared[name].width) for name in declared
        }

    def run_batch(
        self,
        vectors: Sequence[Mapping[str, int]],
        packed_inputs: Optional[Dict[str, Planes]] = None,
    ) -> BatchSimulationResult:
        """Execute the specification once per lane, in a single sweep.

        Raises :class:`SimulationError` with the offending lane index when a
        vector is malformed, matching the scalar interpreter's validation.
        ``packed_inputs`` skips packing and validation with a column set
        previously produced by :meth:`pack_inputs` for the same vectors.
        """
        lanes = len(vectors)
        if lanes == 0:
            raise SimulationError("batch run needs at least one stimulus vector")
        if packed_inputs is None:
            packed_inputs = self.pack_inputs(vectors)
        if self.engine != "legacy":
            return self._run_plan(lanes, packed_inputs)
        lane_mask = (1 << lanes) - 1
        state: Dict[int, Planes] = {}
        for port in self.specification.inputs():
            state[port.uid] = list(packed_inputs[port.name])
        for variable in self.specification.variables:
            state.setdefault(variable.uid, [0] * variable.width)
        for operation in self.specification.operations:
            result = self._evaluate(operation, state, lane_mask)
            destination = operation.destination
            planes = state[destination.variable.uid]
            lo = destination.range.lo
            for position, plane in enumerate(result):
                planes[lo + position] = plane
        return self._collect(state, lanes)

    def _run_plan(
        self, lanes: int, packed_inputs: Dict[str, Planes]
    ) -> BatchSimulationResult:
        """The compiled-plan path: one flat dispatch loop over the engine core."""
        from ..engine import context_for, run_spec_plan, spec_plan

        plan = spec_plan(self.specification)
        ctx = context_for(lanes, self.engine)
        state: Dict[int, list] = {}
        for port in self.specification.inputs():
            state[port.uid] = ctx.planes_from_masks(packed_inputs[port.name])
        zero = ctx.zero
        for variable in self.specification.variables:
            state.setdefault(variable.uid, [zero] * variable.width)
        run_spec_plan(plan, ctx, state)
        if ctx.backend != "bigint":
            state = {
                uid: ctx.planes_to_masks(planes) for uid, planes in state.items()
            }
        return self._collect(state, lanes)

    def _collect(self, state: Dict[int, Planes], lanes: int) -> BatchSimulationResult:
        result = BatchSimulationResult(
            specification_name=self.specification.name, lanes=lanes
        )
        for variable in self.specification.variables:
            result.final_planes[variable.name] = state[variable.uid]
            if variable.is_output():
                result.output_names.append(variable.name)
                result._signed[variable.name] = variable.signed
        return result

    # ------------------------------------------------------------------
    # Operand access
    # ------------------------------------------------------------------
    def _raw_planes(
        self, operand: Operand, state: Dict[int, Planes], lane_mask: int, width: int
    ) -> Planes:
        """Raw slice planes, zero-extended/truncated to *width* planes."""
        rng = operand.range
        if operand.is_constant:
            bits = operand.constant.bits >> rng.lo
            planes = [
                lane_mask if (bits >> index) & 1 else 0
                for index in range(min(rng.width, width))
            ]
        else:
            source = state[operand.variable.uid]
            hi = min(rng.lo + width, rng.hi + 1)
            planes = source[rng.lo : hi]
        if len(planes) < width:
            planes = planes + [0] * (width - len(planes))
        return planes

    def _value_planes(
        self, operand: Operand, state: Dict[int, Planes], lane_mask: int, width: int
    ) -> Planes:
        """Planes under value semantics: sign-extended when meaningful.

        Matches ``Interpreter._operand_value``: the operand is treated as a
        two's complement number only when it covers the whole of a signed
        source; arithmetic modulo ``2**width`` then only needs the operand
        extended (or truncated) to *width* planes.
        """
        rng = operand.range
        signed = operand.source.signed and operand.covers_whole_source()
        if operand.is_constant:
            bits = operand.constant.bits >> rng.lo
            planes = [
                lane_mask if (bits >> index) & 1 else 0
                for index in range(min(rng.width, width))
            ]
        else:
            source = state[operand.variable.uid]
            hi = min(rng.lo + width, rng.hi + 1)
            planes = source[rng.lo : hi]
        if len(planes) < width:
            fill = planes[-1] if (signed and planes) else 0
            planes = planes + [fill] * (width - len(planes))
        return planes

    def _carry_plane(
        self, operation: Operation, state: Dict[int, Planes], lane_mask: int
    ) -> int:
        if operation.carry_in is None:
            return 0
        return self._raw_planes(operation.carry_in, state, lane_mask, 1)[0]

    # ------------------------------------------------------------------
    # Plane arithmetic helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _ripple_add(a: Planes, b: Planes, carry: int) -> Planes:
        """Per-lane ``a + b + carry`` over equal-length plane lists."""
        out: Planes = []
        for plane_a, plane_b in zip(a, b):
            partial = plane_a ^ plane_b
            out.append(partial ^ carry)
            carry = (plane_a & plane_b) | (carry & partial)
        return out

    @staticmethod
    def _ripple_increment(planes: Planes, carry: int) -> Planes:
        """Per-lane ``planes + carry`` where *carry* is a 1-bit plane."""
        if not carry:
            return planes
        out: Planes = []
        for plane in planes:
            out.append(plane ^ carry)
            carry &= plane
        return out

    @staticmethod
    def _negate(planes: Planes, lane_mask: int) -> Planes:
        """Per-lane two's complement: ``~planes + 1``."""
        out: Planes = []
        carry = lane_mask
        for plane in planes:
            inverted = plane ^ lane_mask
            out.append(inverted ^ carry)
            carry &= inverted
        return out

    @staticmethod
    def _less_than(a: Planes, b: Planes) -> int:
        """Unsigned per-lane ``a < b`` over equal-length plane lists."""
        lt = 0
        for plane_a, plane_b in zip(a, b):
            equal_mask = ~(plane_a ^ plane_b)
            lt = (~plane_a & plane_b) | (equal_mask & lt)
        return lt

    def _signed_compare_planes(
        self, operation: Operation, state: Dict[int, Planes], lane_mask: int
    ) -> Tuple[int, int]:
        """(lt, eq) planes of the two operands under value semantics.

        Both operands are extended to ``max(widths) + 1`` planes, where any
        mix of signed and unsigned sources is exactly representable in two's
        complement; flipping the top plane then reduces the signed comparison
        to the unsigned borrow ripple.
        """
        left, right = operation.operands[0], operation.operands[1]
        width = max(left.width, right.width) + 1
        a = self._value_planes(left, state, lane_mask, width)
        b = self._value_planes(right, state, lane_mask, width)
        a[-1] ^= lane_mask
        b[-1] ^= lane_mask
        lt = self._less_than(a, b) & lane_mask
        diff = 0
        for plane_a, plane_b in zip(a, b):
            diff |= plane_a ^ plane_b
        eq = (diff ^ lane_mask) & lane_mask
        return lt, eq

    @staticmethod
    def _select(mask: int, when_set: Planes, when_clear: Planes, lane_mask: int) -> Planes:
        inverse = mask ^ lane_mask
        return [
            (mask & set_plane) | (inverse & clear_plane)
            for set_plane, clear_plane in zip(when_set, when_clear)
        ]

    # ------------------------------------------------------------------
    def _evaluate(
        self, operation: Operation, state: Dict[int, Planes], lane_mask: int
    ) -> Planes:
        kind = operation.kind
        width = operation.width
        operands = operation.operands

        if kind is OpKind.ADD:
            a = self._value_planes(operands[0], state, lane_mask, width)
            b = self._value_planes(operands[1], state, lane_mask, width)
            return self._ripple_add(a, b, self._carry_plane(operation, state, lane_mask))
        if kind is OpKind.SUB:
            a = self._value_planes(operands[0], state, lane_mask, width)
            b = self._value_planes(operands[1], state, lane_mask, width)
            inverted = [plane ^ lane_mask for plane in b]
            difference = self._ripple_add(a, inverted, lane_mask)
            return self._ripple_increment(
                difference, self._carry_plane(operation, state, lane_mask)
            )
        if kind is OpKind.MUL:
            a = self._value_planes(operands[0], state, lane_mask, width)
            b = self._value_planes(operands[1], state, lane_mask, width)
            accumulator = [0] * width
            for shift, multiplier_plane in enumerate(b):
                if not multiplier_plane:
                    continue
                carry = 0
                for position in range(shift, width):
                    addend = a[position - shift] & multiplier_plane
                    current = accumulator[position]
                    partial = current ^ addend
                    accumulator[position] = partial ^ carry
                    carry = (current & addend) | (carry & partial)
            return accumulator
        if kind in (OpKind.LT, OpKind.LE, OpKind.GT, OpKind.GE, OpKind.EQ, OpKind.NE):
            lt, eq = self._signed_compare_planes(operation, state, lane_mask)
            outcome = {
                OpKind.LT: lt,
                OpKind.LE: lt | eq,
                OpKind.GT: (lt | eq) ^ lane_mask,
                OpKind.GE: lt ^ lane_mask,
                OpKind.EQ: eq,
                OpKind.NE: eq ^ lane_mask,
            }[kind]
            return [outcome] + [0] * (width - 1)
        if kind in (OpKind.MAX, OpKind.MIN):
            lt, _eq = self._signed_compare_planes(operation, state, lane_mask)
            a = self._value_planes(operands[0], state, lane_mask, width)
            b = self._value_planes(operands[1], state, lane_mask, width)
            if kind is OpKind.MAX:
                return self._select(lt, b, a, lane_mask)
            return self._select(lt, a, b, lane_mask)
        if kind is OpKind.NEG:
            a = self._value_planes(operands[0], state, lane_mask, width)
            return self._negate(a, lane_mask)
        if kind is OpKind.ABS:
            source = operands[0]
            a = self._value_planes(source, state, lane_mask, width)
            if not (source.source.signed and source.covers_whole_source()):
                return a
            raw = self._raw_planes(source, state, lane_mask, source.width)
            sign = raw[-1]
            return self._select(sign, self._negate(a, lane_mask), a, lane_mask)
        if kind is OpKind.AND:
            a = self._raw_planes(operands[0], state, lane_mask, width)
            b = self._raw_planes(operands[1], state, lane_mask, width)
            return [plane_a & plane_b for plane_a, plane_b in zip(a, b)]
        if kind is OpKind.OR:
            a = self._raw_planes(operands[0], state, lane_mask, width)
            b = self._raw_planes(operands[1], state, lane_mask, width)
            return [plane_a | plane_b for plane_a, plane_b in zip(a, b)]
        if kind is OpKind.XOR:
            a = self._raw_planes(operands[0], state, lane_mask, width)
            b = self._raw_planes(operands[1], state, lane_mask, width)
            return [plane_a ^ plane_b for plane_a, plane_b in zip(a, b)]
        if kind is OpKind.NOT:
            a = self._raw_planes(operands[0], state, lane_mask, width)
            return [plane ^ lane_mask for plane in a]
        if kind is OpKind.SHL:
            amount = int(operation.attributes.get("shift", 0))
            source = self._raw_planes(operands[0], state, lane_mask, width)
            return ([0] * amount + source)[:width]
        if kind is OpKind.SHR:
            amount = int(operation.attributes.get("shift", 0))
            source = self._raw_planes(
                operands[0], state, lane_mask, operands[0].width
            )
            planes = source[amount:]
            if len(planes) < width:
                planes = planes + [0] * (width - len(planes))
            return planes[:width]
        if kind is OpKind.CONCAT:
            planes: Planes = []
            for operand in operands:
                planes.extend(
                    self._raw_planes(operand, state, lane_mask, operand.width)
                )
            planes = planes[:width]
            if len(planes) < width:
                planes = planes + [0] * (width - len(planes))
            return planes
        if kind is OpKind.SELECT:
            condition = self._raw_planes(operands[0], state, lane_mask, 1)[0]
            when_true = self._raw_planes(operands[1], state, lane_mask, width)
            when_false = self._raw_planes(operands[2], state, lane_mask, width)
            return self._select(condition, when_true, when_false, lane_mask)
        if kind is OpKind.MOVE:
            return self._raw_planes(operands[0], state, lane_mask, width)
        raise SimulationError(f"batch interpreter does not support operation kind {kind}")


def simulate_batch(
    specification: Specification,
    vectors: Sequence[Mapping[str, int]],
    engine: Optional[str] = None,
) -> BatchSimulationResult:
    """One-shot convenience wrapper around :class:`BatchInterpreter`."""
    return BatchInterpreter(specification, engine=engine).run_batch(vectors)
