"""Stimulus generation for functional-equivalence checking.

Random and corner-case input vectors for a specification's input ports.  The
corner cases are the values most likely to expose carry-chain mistakes in the
fragmentation (all zeros, all ones, alternating patterns, single-bit values,
extreme signed values), which is exactly where a wrong carry threading between
fragments would show up.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..ir.spec import Specification
from ..ir.values import Variable


def _corner_values(variable: Variable) -> List[int]:
    """Deterministic boundary values for one port."""
    vector_type = variable.type
    width = vector_type.width
    values = {
        0,
        vector_type.max_value,
        vector_type.min_value,
        vector_type.wrap((1 << width) - 1),
        vector_type.wrap(0x5555555555555555 & ((1 << width) - 1)),
        vector_type.wrap(0xAAAAAAAAAAAAAAAA & ((1 << width) - 1)),
        1 if vector_type.contains(1) else 0,
    }
    if width > 1:
        values.add(vector_type.wrap(1 << (width - 1)))
        values.add(vector_type.wrap((1 << (width - 1)) - 1))
    return sorted(values)


def corner_vectors(specification: Specification, limit: int = 64) -> List[Dict[str, int]]:
    """Cross-product style corner vectors, truncated to *limit* entries.

    The full cross product over many ports explodes, so the generator pairs
    each port's corner list index-wise (cycling shorter lists) and additionally
    emits the all-corners-equal diagonal, which is enough to exercise the
    interesting carry patterns without blowing up test time.
    """
    ports = specification.inputs()
    if not ports:
        return [{}]
    per_port = {port.name: _corner_values(port) for port in ports}
    longest = max(len(values) for values in per_port.values())
    vectors: List[Dict[str, int]] = []
    for index in range(longest):
        vectors.append(
            {
                name: values[index % len(values)]
                for name, values in per_port.items()
            }
        )
    # Diagonal vectors: every port takes its k-th corner (index clamped).
    for k in range(longest):
        vectors.append(
            {
                name: values[min(k, len(values) - 1)]
                for name, values in per_port.items()
            }
        )
    unique: List[Dict[str, int]] = []
    seen = set()
    for vector in vectors:
        key = tuple(sorted(vector.items()))
        if key not in seen:
            seen.add(key)
            unique.append(vector)
        if len(unique) >= limit:
            break
    return unique


def random_vector(specification: Specification, rng: random.Random) -> Dict[str, int]:
    """One uniformly random input vector."""
    vector: Dict[str, int] = {}
    for port in specification.inputs():
        vector[port.name] = rng.randint(port.type.min_value, port.type.max_value)
    return vector


def random_vectors(
    specification: Specification, count: int, seed: int = 2005
) -> List[Dict[str, int]]:
    """A reproducible list of random input vectors."""
    rng = random.Random(seed)
    return [random_vector(specification, rng) for _ in range(count)]


def stimulus(
    specification: Specification,
    random_count: int = 100,
    seed: int = 2005,
    corner_limit: int = 64,
) -> List[Dict[str, int]]:
    """Corner vectors followed by random vectors -- the default stimulus set."""
    return corner_vectors(specification, corner_limit) + random_vectors(
        specification, random_count, seed
    )
