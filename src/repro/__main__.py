"""Module entry point: ``python -m repro`` runs the flow CLI."""

import sys

from .api.cli import main

if __name__ == "__main__":
    sys.exit(main())
