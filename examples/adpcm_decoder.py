"""Domain example: ADPCM (CCITT G.721) decoder modules.

Reproduces the paper's Table III experiment as an application scenario:
the Inverse Adaptive Quantizer, the Tone & Transition Detector and the
Output PCM Format Conversion + Synchronous Coding Adjustment modules are
transformed and synthesized at the latencies the paper used, the transformed
specifications are checked for functional equivalence against the originals,
and the resulting implementations are reported.

Run with::

    python examples/adpcm_decoder.py
"""

from repro.analysis import compare_flows, format_records
from repro.core import TransformOptions
from repro.simulation import check_equivalence
from repro.workloads import ADPCM_MODULES, TABLE3_LATENCIES


def main() -> None:
    rows = []
    for name, factory in ADPCM_MODULES.items():
        latency = TABLE3_LATENCIES[name]
        specification = factory()
        comparison = compare_flows(
            specification,
            latency,
            transform_options=TransformOptions(check_equivalence=False),
        )
        equivalence = check_equivalence(
            specification, comparison.transform_result.transformed, random_count=50
        )
        rows.append(
            {
                "module": name,
                "latency": latency,
                "original_cycle_ns": round(comparison.original.cycle_length_ns, 2),
                "optimized_cycle_ns": round(comparison.optimized.cycle_length_ns, 2),
                "saved_pct": round(100 * comparison.cycle_saving, 1),
                "area_change_pct": round(100 * comparison.area_increment, 1),
                "equivalent": equivalence.equivalent,
                "vectors": equivalence.vectors_checked,
            }
        )
        print(f"{name}: {comparison.summary()}")
        print(f"  functional equivalence: {'PASS' if equivalence.equivalent else 'FAIL'} "
              f"({equivalence.vectors_checked} vectors)")
    print()
    print(format_records(rows, title="Table III reproduction -- ADPCM decoder modules"))


if __name__ == "__main__":
    main()
