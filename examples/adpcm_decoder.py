"""Domain example: ADPCM (CCITT G.721) decoder modules.

Reproduces the paper's Table III experiment as an application scenario:
the Inverse Adaptive Quantizer, the Tone & Transition Detector and the
Output PCM Format Conversion + Synchronous Coding Adjustment modules run
through the :mod:`repro.api` pipeline at the latencies the paper used.  The
fragmented-flow configs request the built-in equivalence check: the
transform pass co-simulates every transformed specification against its
original and refuses to hand a non-equivalent one to the scheduler (the
run would abort with an error), so each reported row is a verified
implementation.

Run with::

    python examples/adpcm_decoder.py
"""

from repro.api import FlowConfig, Pipeline, ResultCache
from repro.analysis import format_records
from repro.workloads import TABLE3_LATENCIES


def main() -> None:
    pipeline = Pipeline(cache=ResultCache())
    rows = []
    for name, latency in TABLE3_LATENCIES.items():
        workload = f"adpcm_{name}"
        original = pipeline.run(
            FlowConfig(latency=latency, mode="conventional", workload=workload)
        )
        optimized = pipeline.run(
            FlowConfig(
                latency=latency,
                mode="fragmented",
                workload=workload,
                check_equivalence=True,
                equivalence_vectors=50,
            )
        )
        report = optimized.report
        saving = 1.0 - report["cycle_length_ns"] / original.report["cycle_length_ns"]
        area_change = (
            report["datapath_area"] / original.report["datapath_area"] - 1.0
        )
        rows.append(
            {
                "module": name,
                "latency": latency,
                "original_cycle_ns": round(original.report["cycle_length_ns"], 2),
                "optimized_cycle_ns": round(report["cycle_length_ns"], 2),
                "saved_pct": round(100 * saving, 1),
                "area_change_pct": round(100 * area_change, 1),
                "equivalent": report["equivalent"],
                "vectors": report["equivalence_vectors"],
            }
        )
        print(f"{workload}: {optimized.summary()}")
        print(
            f"  functional equivalence verified over "
            f"{report['equivalence_vectors']} vectors"
        )
    print()
    print(format_records(rows, title="Table III reproduction -- ADPCM decoder modules"))


if __name__ == "__main__":
    main()
