"""Domain example: time-constrained synthesis of digital filters.

The workloads of the paper's Table II are digital-filter kernels.  This
example takes the fifth-order elliptic wave filter and the second-order FIR
filter, sweeps a few latency constraints, and reports how the presynthesis
transformation trades clock period against datapath area -- the exploration a
designer would run when fitting a filter into a given sample-rate budget.

Run with::

    python examples/filter_pipeline.py
"""

from repro.analysis import compare_flows, format_records
from repro.workloads import elliptic, fir2


def explore(name, factory, latencies):
    rows = []
    for latency in latencies:
        comparison = compare_flows(factory(), latency)
        rows.append(
            {
                "benchmark": name,
                "latency": latency,
                "original_cycle_ns": round(comparison.original.cycle_length_ns, 2),
                "optimized_cycle_ns": round(comparison.optimized.cycle_length_ns, 2),
                "saved_pct": round(100 * comparison.cycle_saving, 1),
                "original_area": round(comparison.original.datapath_area),
                "optimized_area": round(comparison.optimized.datapath_area),
                "extra_operations_pct": round(100 * comparison.operation_growth, 1),
            }
        )
    return rows


def main() -> None:
    print("Latency exploration of the Table II filter benchmarks\n")
    rows = []
    rows += explore("elliptic", elliptic, (11, 6, 4))
    rows += explore("fir2", fir2, (5, 3))
    print(format_records(rows, title="cycle length and area vs latency"))

    print(
        "\nReading the table: the optimized specification keeps converting"
        "\nlatency into a shorter clock (the 'saved' column grows with the"
        "\nlatency), while the conventional schedule is stuck at the delay of"
        "\nits slowest chained operations -- the effect behind Fig. 4 of the"
        "\npaper."
    )


if __name__ == "__main__":
    main()
