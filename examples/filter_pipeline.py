"""Domain example: time-constrained synthesis of digital filters.

The workloads of the paper's Table II are digital-filter kernels.  This
example takes the fifth-order elliptic wave filter and the second-order FIR
filter, sweeps a few latency constraints, and reports how the presynthesis
transformation trades clock period against datapath area -- the exploration a
designer would run when fitting a filter into a given sample-rate budget.

Every (benchmark, latency, flow) point is one declarative
:class:`repro.api.FlowConfig`; the :class:`repro.api.SweepEngine` fans the
whole batch across worker threads and returns the reports in order.

Run with::

    python examples/filter_pipeline.py
"""

from repro.api import FlowConfig, Pipeline, ResultCache, SweepEngine
from repro.analysis import change_pct, format_records, paired_reports

#: The exploration grid: Table II filter benchmarks and latency budgets.
GRID = [
    ("elliptic", (11, 6, 4)),
    ("fir2", (5, 3)),
]


def main() -> None:
    configs = []
    for workload, latencies in GRID:
        for latency in latencies:
            for mode in ("conventional", "fragmented"):
                configs.append(
                    FlowConfig(latency=latency, mode=mode, workload=workload)
                )

    engine = SweepEngine(
        Pipeline(cache=ResultCache()), max_workers=4, executor="thread"
    )
    reports = engine.reports(configs)

    print("Latency exploration of the Table II filter benchmarks\n")
    rows = []
    for original, optimized in paired_reports(reports):
        rows.append(
            {
                "benchmark": original["workload"],
                "latency": original["latency"],
                "original_cycle_ns": round(original["cycle_length_ns"], 2),
                "optimized_cycle_ns": round(optimized["cycle_length_ns"], 2),
                "saved_pct": round(change_pct(original, optimized, "cycle_length_ns"), 1),
                "original_area": round(original["datapath_area"]),
                "optimized_area": round(optimized["datapath_area"]),
                "extra_operations_pct": round(optimized["operation_growth_pct"], 1),
            }
        )
    print(format_records(rows, title="cycle length and area vs latency"))

    print(
        "\nReading the table: the optimized specification keeps converting"
        "\nlatency into a shorter clock (the 'saved' column grows with the"
        "\nlatency), while the conventional schedule is stuck at the delay of"
        "\nits slowest chained operations -- the effect behind Fig. 4 of the"
        "\npaper."
    )


if __name__ == "__main__":
    main()
