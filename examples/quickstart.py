"""Quickstart: transform and synthesize the paper's motivational example.

Builds the three-chained-additions specification of Fig. 1 a, applies the
presynthesis transformation for a latency of three cycles, synthesizes the
original and the optimized specifications with the bundled HLS substrate, and
prints a Table I style comparison.

Run with::

    python examples/quickstart.py
"""

from repro import SpecBuilder, transform
from repro.analysis import format_table
from repro.hls import FlowMode, synthesize
from repro.techlib import default_library


def build_specification():
    """The behavioural description of Fig. 1 a: G = ((A + B) + D) + F."""
    builder = SpecBuilder("example")
    a = builder.input("A", 16)
    b = builder.input("B", 16)
    d = builder.input("D", 16)
    f = builder.input("F", 16)
    g = builder.output("G", 16)
    c = builder.add(a, b, name="add_C")
    e = builder.add(c, d, name="add_E")
    builder.add(e, f, dest=g, name="add_G")
    return builder.build()


def main() -> None:
    specification = build_specification()
    library = default_library()
    latency = 3

    # The paper's presynthesis optimization: kernel extraction, cycle
    # estimation, fragmentation.  The result carries the optimized
    # specification plus the per-cycle chained-bit budget.
    result = transform(specification, latency)
    print("Transformed specification (compare with Fig. 2 a of the paper):")
    print(result.transformed.describe())
    print()
    print(result.summary())
    print()

    original = synthesize(specification, latency, library, FlowMode.CONVENTIONAL)
    chained = synthesize(specification, 1, library, FlowMode.BLC)
    optimized = synthesize(
        result.transformed,
        latency,
        library,
        FlowMode.FRAGMENTED,
        chained_bits_per_cycle=result.chained_bits_per_cycle,
    )

    rows = []
    for label, synthesis in (
        ("original (Fig 1b)", original),
        ("bit-level chaining (Fig 1d)", chained),
        ("optimized (Fig 2a)", optimized),
    ):
        rows.append(
            [
                label,
                synthesis.latency,
                round(synthesis.cycle_length_ns, 2),
                round(synthesis.execution_time_ns, 2),
                round(synthesis.fu_area),
                round(synthesis.register_area),
                round(synthesis.routing_area),
                round(synthesis.total_area),
            ]
        )
    print(
        format_table(
            ["implementation", "latency", "cycle ns", "exec ns", "FU", "regs", "routing", "total"],
            rows,
            title="Table I reproduction",
        )
    )
    saving = 1 - optimized.cycle_length_ns / original.cycle_length_ns
    print(f"\ncycle length saved by the transformation: {100 * saving:.1f}%")


if __name__ == "__main__":
    main()
