"""Quickstart: transform and synthesize the paper's motivational example.

Builds the three-chained-additions specification of Fig. 1 a, then drives the
:mod:`repro.api` pipeline three times -- the conventional flow, the
bit-level-chaining baseline and the fragmented (optimized) flow -- and prints
a Table I style comparison.  The same experiment is one shell command::

    python -m repro table table1

Run with::

    python examples/quickstart.py
"""

from repro import FlowConfig, Pipeline, ResultCache, SpecBuilder
from repro.analysis import format_table


def build_specification():
    """The behavioural description of Fig. 1 a: G = ((A + B) + D) + F."""
    builder = SpecBuilder("example")
    a = builder.input("A", 16)
    b = builder.input("B", 16)
    d = builder.input("D", 16)
    f = builder.input("F", 16)
    g = builder.output("G", 16)
    c = builder.add(a, b, name="add_C")
    e = builder.add(c, d, name="add_E")
    builder.add(e, f, dest=g, name="add_G")
    return builder.build()


def main() -> None:
    specification = build_specification()
    latency = 3

    # One pipeline, three declarative configs.  The cache means repeated
    # runs of the same config (here: none) would be free.
    pipeline = Pipeline(cache=ResultCache())
    original = pipeline.run(
        FlowConfig(latency=latency, mode="conventional"), specification=specification
    )
    chained = pipeline.run(
        FlowConfig(latency=1, mode="blc"), specification=specification
    )
    optimized = pipeline.run(
        FlowConfig(latency=latency, mode="fragmented"), specification=specification
    )

    # The fragmented run carries the paper's presynthesis transformation:
    # kernel extraction, cycle estimation, fragmentation.
    result = optimized.transform_result
    print("Transformed specification (compare with Fig. 2 a of the paper):")
    print(result.transformed.describe())
    print()
    print(result.summary())
    print()
    print("pipeline passes:", " -> ".join(optimized.completed_passes()))
    print()

    rows = []
    for label, run in (
        ("original (Fig 1b)", original),
        ("bit-level chaining (Fig 1d)", chained),
        ("optimized (Fig 2a)", optimized),
    ):
        synthesis = run.synthesis
        rows.append(
            [
                label,
                synthesis.latency,
                round(synthesis.cycle_length_ns, 2),
                round(synthesis.execution_time_ns, 2),
                round(synthesis.fu_area),
                round(synthesis.register_area),
                round(synthesis.routing_area),
                round(synthesis.total_area),
            ]
        )
    print(
        format_table(
            ["implementation", "latency", "cycle ns", "exec ns", "FU", "regs", "routing", "total"],
            rows,
            title="Table I reproduction",
        )
    )
    saving = 1 - optimized.synthesis.cycle_length_ns / original.synthesis.cycle_length_ns
    print(f"\ncycle length saved by the transformation: {100 * saving:.1f}%")


if __name__ == "__main__":
    main()
