"""Synthesis as a service: boot a server, submit studies, share the cache.

Starts an in-process :mod:`repro.server` instance over a temporary
workspace, then walks the service contract from a client's point of view:

* submit the built-in ``table1`` study by name and poll it to completion;
* resubmit it -- the job is a pure dedup hit, every row *loads* from the
  content-addressed store and nothing recomputes;
* submit the same point matrix under a different study name -- row
  adoption still makes it zero-recompute (job identity is social, row
  identity is cryptographic);
* read the server's metrics: cache hits/misses, per-endpoint latency.

The same service runs standalone as::

    python -m repro serve --workspace ws --port 8321
    python -m repro submit table1 --wait
    python -m repro poll job-000001 --report

Run with::

    python examples/synthesis_service.py
"""

import json
import tempfile
import threading

from repro.api import builtin_study, study_from_dict
from repro.server import SynthesisClient, create_server


def main() -> None:
    with tempfile.TemporaryDirectory() as workspace_dir:
        server = create_server(workspace_dir, port=0, workers=2)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        client = SynthesisClient(f"http://{host}:{port}")
        try:
            # -- cold: every point computes ------------------------------
            submitted = client.submit("table1")
            final = client.wait(submitted["job_id"])
            print(f"cold run   : {final['summary']}")
            assert final["summary"]["ran"] == 2

            report = client.report(submitted["job_id"])
            print(f"report rows: {len(report['rows'])} ({report['row_kind']})")

            # -- warm: resubmission is pure dedup ------------------------
            final = client.wait(client.submit("table1")["job_id"])
            print(f"warm run   : {final['summary']}")
            assert final["summary"]["ran"] == 0

            # -- adoption: same points, different study name -------------
            twin = study_from_dict(
                {**builtin_study("table1").to_dict(), "name": "table1-twin"}
            )
            final = client.wait(client.submit(twin)["job_id"])
            print(f"twin study : {final['summary']}")
            assert final["summary"]["ran"] == 0

            metrics = client.metrics()
            print("counters   :", json.dumps(metrics["counters"], indent=2))
        finally:
            server.shutdown()
            server.manager.shutdown()
            server.server_close()
            thread.join(timeout=10)


if __name__ == "__main__":
    main()
