"""Domain example: latency / clock-period design-space exploration.

Declares the paper's Fig. 4 experiment as a :class:`repro.api.Study` (one
declarative matrix instead of a hand-built config list), runs it against an
on-disk :class:`repro.api.Workspace` -- so re-running the script resumes
from the persistent store and regenerates the table with **zero
recomputation** -- and then compares adder architectures by expanding a
second ad-hoc study grid across the parallel :class:`repro.api.SweepEngine`.
Everything is printed as plain text (no plotting dependencies); the ASCII
chart mirrors Fig. 4.

Run with::

    python examples/design_space_exploration.py

Run it twice: the second invocation loads every Fig. 4 point from the
workspace store under ``.repro-workspace/``.
"""

import time
from pathlib import Path

from repro.analysis import change_pct, format_records, latency_sweep, paired_reports
from repro.api import (
    Pipeline,
    ResultCache,
    Study,
    SweepEngine,
    Workspace,
    builtin_study,
)
from repro.techlib import AdderStyle

#: Workspace directory of this example (persists between invocations).
WORKSPACE_DIR = Path(__file__).resolve().parent / ".repro-workspace"


def main() -> None:
    # Fig. 4 as a named, persistent study: three chained 16-bit additions
    # over the 3..15 latency axis, conventional vs fragmented at each point.
    study = builtin_study("fig4-chain")
    workspace = Workspace(WORKSPACE_DIR)

    started = time.perf_counter()
    result = workspace.run_study(
        study,
        max_workers=4,
        progress=lambda point, done, total: print(
            f"  [{done:2d}/{total}] {point.point.point_id}: {point.source}"
        ),
    )
    elapsed = time.perf_counter() - started
    print(
        f"\nstudy {study.name}: {result.loaded} points loaded from "
        f"{workspace.root.name}/, {result.ran} computed, in {elapsed:.3f}s"
        + (" (re-run this script to see a zero-compute resume)" if result.ran else "")
    )

    rows = workspace.rows(study)
    print("\nFig. 4 reproduction: cycle length of the schedules obtained from the")
    print("original and the optimized specification, as the latency grows.\n")
    print(format_records(rows, title="cycle length vs latency"))

    # The study rows and the classic hand-driven sweep agree point for point.
    latencies = sorted({point.config.latency for point in study.points()})
    workload = study.points()[0].config.workload
    sweep = latency_sweep(workload, latencies)
    assert rows == sweep.as_rows()
    print()
    print(sweep.render_ascii(width=48))
    print(
        f"\ndivergence of the two curves over the sweep: "
        f"{sweep.divergence():.2f} ns (positive = curves separate, as in Fig. 4)"
    )

    # Secondary exploration: how the adder architecture moves both curves.
    # An ad-hoc study grid -- styles x flows at latency 6 -- fanned across
    # the streaming engine.
    print("\nAdder-architecture exploration at latency 6:")
    exploration = Study(
        "adder-exploration", base={"workload": workload, "latency": 6}
    ).grid(
        adder_style=[style.value for style in AdderStyle],
        mode=["conventional", "fragmented"],
    )
    engine = SweepEngine(
        Pipeline(cache=ResultCache()), max_workers=4, executor="thread"
    )
    reports = engine.reports(exploration.configs())
    rows = []
    for style, (original, optimized) in zip(AdderStyle, paired_reports(reports)):
        rows.append(
            {
                "adder": style.value,
                "original_cycle_ns": round(original["cycle_length_ns"], 2),
                "optimized_cycle_ns": round(optimized["cycle_length_ns"], 2),
                "saved_pct": round(change_pct(original, optimized, "cycle_length_ns"), 1),
                "optimized_area": round(optimized["total_area"]),
            }
        )
    print(format_records(rows))


if __name__ == "__main__":
    main()
