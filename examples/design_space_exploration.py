"""Domain example: latency / clock-period design-space exploration.

Sweeps the circuit latency of a behavioural description (the paper's Fig. 4
experiment) through the parallel :class:`repro.api.SweepEngine`, then
compares adder architectures by fanning one :class:`repro.api.FlowConfig`
per (style, flow) across the same engine -- the kind of latency-vs-clock
trade-off chart an RTL architect would use to pick an operating point.
Everything is printed as plain text (no plotting dependencies); the ASCII
chart mirrors Fig. 4.

Run with::

    python examples/design_space_exploration.py
"""

import time

from repro.analysis import change_pct, format_records, latency_sweep, paired_reports
from repro.api import FlowConfig, Pipeline, ResultCache, SweepEngine
from repro.techlib import AdderStyle

#: Fig. 4's subject as a serializable parametric workload: three chained
#: 16-bit additions.
WORKLOAD = "chain:3:16"


def main() -> None:
    latencies = range(3, 16)

    # The serial reference and the 4-worker parallel run must agree point
    # for point; only the wall-clock time may differ.
    started = time.perf_counter()
    sweep = latency_sweep(WORKLOAD, latencies)
    serial_s = time.perf_counter() - started
    started = time.perf_counter()
    parallel = latency_sweep(WORKLOAD, latencies, max_workers=4, executor="thread")
    parallel_s = time.perf_counter() - started
    assert parallel.points == sweep.points

    print("Fig. 4 reproduction: cycle length of the schedules obtained from the")
    print("original and the optimized specification, as the latency grows.\n")
    print(format_records(sweep.as_rows(), title="cycle length vs latency"))
    print()
    print(sweep.render_ascii(width=48))
    print(
        f"\ndivergence of the two curves over the sweep: "
        f"{sweep.divergence():.2f} ns (positive = curves separate, as in Fig. 4)"
    )
    print(
        f"sweep wall-clock: serial {serial_s:.3f}s, 4 workers {parallel_s:.3f}s "
        f"(speedup x{serial_s / max(parallel_s, 1e-9):.2f}, identical results)"
    )

    # Secondary exploration: how the adder architecture moves both curves.
    # One config per (style, flow); the engine fans them out together.
    print("\nAdder-architecture exploration at latency 6:")
    configs = []
    for style in AdderStyle:
        for mode in ("conventional", "fragmented"):
            configs.append(
                FlowConfig(
                    latency=6, mode=mode, workload=WORKLOAD, adder_style=style
                )
            )
    engine = SweepEngine(
        Pipeline(cache=ResultCache()), max_workers=4, executor="thread"
    )
    reports = engine.reports(configs)
    rows = []
    for style, (original, optimized) in zip(AdderStyle, paired_reports(reports)):
        rows.append(
            {
                "adder": style.value,
                "original_cycle_ns": round(original["cycle_length_ns"], 2),
                "optimized_cycle_ns": round(optimized["cycle_length_ns"], 2),
                "saved_pct": round(change_pct(original, optimized, "cycle_length_ns"), 1),
                "optimized_area": round(optimized["total_area"]),
            }
        )
    print(format_records(rows))


if __name__ == "__main__":
    main()
