"""Domain example: latency / clock-period design-space exploration.

Sweeps the circuit latency of a behavioural description (the paper's Fig. 4
experiment) and additionally compares adder architectures, producing the kind
of latency-vs-clock trade-off chart an RTL architect would use to pick an
operating point.  Everything is printed as plain text (no plotting
dependencies); the ASCII chart mirrors Fig. 4.

Run with::

    python examples/design_space_exploration.py
"""

from repro.analysis import format_records, latency_sweep
from repro.techlib import AdderStyle, default_library
from repro.workloads import addition_chain


def main() -> None:
    latencies = range(3, 16)
    sweep = latency_sweep(lambda: addition_chain(3, 16), latencies)

    print("Fig. 4 reproduction: cycle length of the schedules obtained from the")
    print("original and the optimized specification, as the latency grows.\n")
    print(format_records(sweep.as_rows(), title="cycle length vs latency"))
    print()
    print(sweep.render_ascii(width=48))
    print(
        f"\ndivergence of the two curves over the sweep: "
        f"{sweep.divergence():.2f} ns (positive = curves separate, as in Fig. 4)"
    )

    # Secondary exploration: how the adder architecture moves both curves.
    print("\nAdder-architecture exploration at latency 6:")
    rows = []
    for style in AdderStyle:
        library = default_library().with_adder_style(style)
        from repro.analysis import compare_flows

        comparison = compare_flows(addition_chain(3, 16), 6, library=library)
        rows.append(
            {
                "adder": style.value,
                "original_cycle_ns": round(comparison.original.cycle_length_ns, 2),
                "optimized_cycle_ns": round(comparison.optimized.cycle_length_ns, 2),
                "saved_pct": round(100 * comparison.cycle_saving, 1),
                "optimized_area": round(comparison.optimized.total_area),
            }
        )
    print(format_records(rows))


if __name__ == "__main__":
    main()
