"""RTL emission: from the paper's tables to a working hardware design.

Synthesizes the motivational example with the fragmented (optimized) flow,
lowers the allocated datapath to a structural sequential design -- the
functional units, the five allocated register bits, the FSM-decoded mux
trees -- then:

1. co-simulates the emitted design cycle-accurately against the
   batch-interpreter oracle on corner + random stimuli (bit-identical or
   the script fails),
2. runs one concrete computation through the design, clock edge by clock
   edge, and
3. writes the synthesizable Verilog next to this script.

The same experiment is one shell command::

    python -m repro emit motivational --check --verilog motivational.v

Run with::

    python examples/rtl_emission.py
"""

from pathlib import Path

from repro.api import FlowConfig, Pipeline
from repro.rtl.emit import emit_design, verify_emission
from repro.rtl.verilog import render_verilog


def main() -> None:
    artifact = Pipeline().run(
        FlowConfig(latency=3, mode="fragmented", workload="motivational"),
        use_cache=False,
    )
    emission = emit_design(artifact.schedule, artifact.library, artifact.datapath)
    stats = emission.stats
    print(
        f"emitted {emission.design.name}: {stats.gate_count} gates, "
        f"{stats.fsm_states} FSM states, {stats.register_bits} register bits "
        f"(the paper's five stored bits), {stats.mux_count} muxes"
    )

    # 1. The hardware must agree with the behavioural oracle, bit for bit.
    check = verify_emission(
        emission.design, artifact.working_specification, random_count=50
    )
    print(check.summary())
    if not check.equivalent:
        raise SystemExit(1)

    # 2. One concrete computation: G = ((A + B) + D) + F over 3 clock cycles.
    inputs = {"A": 1000, "B": 2000, "D": 3000, "F": 4000}
    outputs = emission.design.simulate(inputs)
    expected = (inputs["A"] + inputs["B"] + inputs["D"] + inputs["F"]) & 0xFFFF
    print(f"G = {outputs['G']} (expected {expected})")
    assert outputs["G"] == expected

    # 3. Synthesizable Verilog of the same structure.
    path = Path(__file__).with_name("motivational.v")
    path.write_text(render_verilog(emission.design))
    print(f"wrote {path} ({len(path.read_text().splitlines())} lines)")


if __name__ == "__main__":
    main()
